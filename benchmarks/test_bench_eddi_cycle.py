"""Bench: runtime cost of the full assurance loop.

The paper stresses that "UAVs are highly constrained devices with limited
battery capacity, requiring the use of lightweight technologies" (Sec. I).
This bench measures the onboard cost of one complete assurance cycle —
world step + full monitor stack (SafeDrones Markov update, spoof
detector, link monitor, ConSert evaluation) for a three-UAV fleet plus
the mission decider — the number that decides whether the stack fits a
companion computer's budget."""

from conftest import print_table

from repro.core.adapters import build_fleet_eddis
from repro.core.decider import MissionDecider
from repro.experiments.common import build_three_uav_world


def make_running_fleet():
    scenario = build_three_uav_world(seed=4, n_persons=0)
    world = scenario.world
    fleet = build_fleet_eddis(world)
    decider = MissionDecider()
    for eddi, stack in fleet.values():
        decider.add_uav(stack.network)
    for uav in world.uavs.values():
        uav.start_mission([(200.0, 250.0, 20.0), (100.0, 20.0, 20.0)] * 5)
    # Warm up the FULL measured cycle, decider included: decide() walks
    # every UAV's ConSert network and appends to the decision history, so
    # a warm-up that skips it would time first-call effects (lazy network
    # evaluation, list growth) inside the measured window.
    for _ in range(10):
        world.step()
        for eddi, _ in fleet.values():
            eddi.step(world.time)
        decider.decide()
    return world, fleet, decider


def test_full_assurance_cycle_cost(benchmark):
    world, fleet, decider = make_running_fleet()

    def cycle():
        world.step()
        for eddi, _ in fleet.values():
            eddi.step(world.time)
        return decider.decide()

    decision = benchmark(cycle)
    # The simulated step (2 Hz assurance rate) must be far faster than
    # real time even on one Python core.
    mean_s = benchmark.stats.stats.mean
    print(
        f"\nfull 3-UAV assurance cycle: {1e3 * mean_s:.2f} ms "
        f"({1.0 / mean_s:.0f} cycles/s; real-time budget at 2 Hz: 500 ms)"
    )
    print_table(
        "Per-cycle budget check",
        ["quantity", "value"],
        [
            ["mean cycle [ms]", f"{1e3 * mean_s:.2f}"],
            ["cycles per second", f"{1.0 / mean_s:.0f}"],
            ["fleet verdict", decision.verdict.value],
        ],
    )
    assert mean_s < 0.5  # comfortably real-time at the 2 Hz assurance rate
