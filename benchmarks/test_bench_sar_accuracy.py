"""Bench: regenerate the Sec. V-B SAR accuracy result (uncertainty >90% at
high altitude -> descend -> ~75% uncertainty, 99.8% accuracy)."""

from conftest import print_table, run_once

from repro.experiments import run_sar_accuracy_experiment


def test_sar_accuracy_altitude_adaptation(benchmark):
    result = run_once(benchmark, run_sar_accuracy_experiment)

    print_table(
        "Sec. V-B — descent profile (ensemble uncertainty per altitude)",
        ["altitude [m]", "SafeML u", "DeepKnowledge u", "ensemble u", "criticality"],
        [
            [f"{s.altitude_m:.0f}", f"{s.safeml_uncertainty:.3f}",
             f"{s.deepknowledge_uncertainty:.3f}",
             f"{s.ensemble_uncertainty:.3f}", s.criticality.value]
            for s in result.descent_profile
        ],
    )
    print_table(
        "SAR accuracy (paper: 99.8% with SESAME; uncertainty ~75% after descent)",
        ["metric", "value", "paper"],
        [
            ["uncertainty at high altitude", f"{result.uncertainty_high:.3f}", ">0.90"],
            ["uncertainty after descent", f"{result.uncertainty_final:.3f}", "~0.75"],
            ["accuracy with SESAME", f"{result.accuracy_with_sesame:.4f}", "0.998"],
            ["accuracy without SESAME", f"{result.accuracy_without_sesame:.4f}", "lower"],
            ["operating altitude [m]", f"{result.final_altitude_m:.0f}", "-"],
        ],
    )
    benchmark.extra_info["accuracy_with"] = result.accuracy_with_sesame
    benchmark.extra_info["uncertainty_final"] = result.uncertainty_final

    assert result.uncertainty_high > 0.9
    assert result.accuracy_with_sesame > result.accuracy_without_sesame
