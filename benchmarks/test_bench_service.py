"""Campaign service benchmark: scheduler overhead and concurrency.

The acceptance bars for running campaigns *as jobs* instead of direct
``run_campaign`` calls:

- pushing N=8 campaigns through the scheduler one-at-a-time costs less
  than 10% over running the same campaigns directly (the job machinery —
  child process, stream, durable records — is cheap);
- with 4 job slots the same 8 campaigns overlap for a real speedup;
- resubmitting a finished job is a pure cache replay and lands terminal
  in under a second.

Fingerprints are compared at every phase: a faster-but-different sweep
would be worthless.
"""

from __future__ import annotations

import asyncio
import time

import repro.harness.synthetic  # noqa: F401  (registers "synthetic")
from repro.harness.campaign import run_campaign
from repro.service.scheduler import CampaignScheduler

from conftest import print_table, run_once

N_JOBS = 8
#: Each job: 8 wall-time-bound samples, ~1 s of sleep per campaign.
JOB_GRID = [{"n": 64, "loc": 0.0, "sleep_s": 0.12} for _ in range(8)]
ROOT_SEEDS = [100 + i for i in range(N_JOBS)]


def submit_all(scheduler: CampaignScheduler, tenant: str) -> list[str]:
    ids = []
    for seed in ROOT_SEEDS:
        job, errors = scheduler.submit({
            "experiment": "synthetic", "grid": JOB_GRID,
            "root_seed": seed, "tenant": tenant,
        })
        assert errors == [], errors
        ids.append(job.id)
    return ids


def run_jobs(scheduler: CampaignScheduler, tenant: str) -> tuple[float, list]:
    """Submit the 8 campaigns and drive the scheduler dry; returns wall."""
    start = time.perf_counter()
    ids = submit_all(scheduler, tenant)
    asyncio.run(scheduler.run_until_idle())
    wall = time.perf_counter() - start
    jobs = [scheduler.store.load(job_id) for job_id in ids]
    assert all(j.state == "done" for j in jobs), [j.state for j in jobs]
    return wall, jobs


def test_bench_service_scheduler(benchmark, tmp_path):
    # Baseline: the same 8 campaigns, called directly, back to back.
    start = time.perf_counter()
    direct = [
        run_campaign("synthetic", grid=JOB_GRID, root_seed=seed, workers=1)
        for seed in ROOT_SEEDS
    ]
    direct_s = time.perf_counter() - start
    fingerprints = [r.fingerprint for r in direct]

    # Serial through the scheduler: measures pure job-machinery overhead.
    serial_sched = CampaignScheduler(
        tmp_path / "jobs-serial", tmp_path / "cache", max_jobs=1
    )
    serial_s, serial_jobs = run_jobs(serial_sched, "serial")
    overhead = (serial_s - direct_s) / direct_s

    # Concurrent: 4 job slots over the same 8 campaigns.
    concurrent_sched = CampaignScheduler(
        tmp_path / "jobs-concurrent", tmp_path / "cache", max_jobs=4
    )
    concurrent_s, concurrent_jobs = run_once(
        benchmark, run_jobs, concurrent_sched, "concurrent"
    )
    speedup = serial_s / concurrent_s

    # Cached resubmission: same tenant, same payload — pure cache replay.
    start = time.perf_counter()
    job, _ = concurrent_sched.submit({
        "experiment": "synthetic", "grid": JOB_GRID,
        "root_seed": ROOT_SEEDS[0], "tenant": "concurrent",
    })
    asyncio.run(concurrent_sched.run_until_idle())
    cached_s = time.perf_counter() - start
    cached_job = concurrent_sched.store.load(job.id)

    print_table(
        f"Campaign service: {N_JOBS} jobs x {len(JOB_GRID)} samples",
        ["mode", "wall_s", "note"],
        [
            ["direct serial", f"{direct_s:.2f}", "run_campaign back to back"],
            ["scheduler serial", f"{serial_s:.2f}",
             f"overhead {100 * overhead:.1f}%"],
            ["scheduler x4", f"{concurrent_s:.2f}", f"speedup {speedup:.2f}x"],
            ["cached resubmit", f"{cached_s:.2f}",
             f"{cached_job.totals['cached']}/{len(JOB_GRID)} cache hits"],
        ],
    )
    benchmark.extra_info["direct_s"] = round(direct_s, 3)
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["concurrent_s"] = round(concurrent_s, 3)
    benchmark.extra_info["overhead_pct"] = round(100 * overhead, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cached_s"] = round(cached_s, 3)

    # Equivalence before speed: every path agrees with the direct runs.
    assert [j.fingerprint for j in serial_jobs] == fingerprints
    assert [j.fingerprint for j in concurrent_jobs] == fingerprints
    assert cached_job.fingerprint == fingerprints[0]
    assert cached_job.totals["cached"] == len(JOB_GRID)

    assert overhead < 0.10, f"scheduler overhead {100 * overhead:.1f}% >= 10%"
    assert speedup >= 2.0, f"4-slot scheduler only {speedup:.2f}x faster"
    assert cached_s < 1.0, f"cached resubmission took {cached_s:.2f}s"
