"""Batched assurance plane benchmarks: cycle scaling and MC batching.

Two acceptance bars from the vectorized-assurance work:

- **Assurance cycle at 50 UAVs**: one full cycle (every UAV's EDDI —
  SafeDrones Markov update, spoof/link monitors, SafeML, ConSert
  evaluation — plus the mission decider) must run at least 5x faster on
  the batched plane (:mod:`repro.core.batch`) than on the scalar
  reference. The world step is excluded from the timed window (the fleet
  physics bench owns that number); only the assurance ops are measured,
  with the simulation advanced untimed between cycles so the monitors
  see real trajectories.
- **Fig. 5 Monte-Carlo campaign**: the default 18-sample grid run with
  ``batch=True`` (all samples as one stacked simulation per policy) must
  beat the per-sample serial path by at least 3x, with a bit-identical
  campaign fingerprint — a faster-but-different sweep would be
  worthless.

Both planes produce bit-identical outputs (see
``tests/test_assurance_equivalence.py``), so the comparison is pure
cost, not accuracy trade-off. GC is disabled around the timed loops as
pytest-benchmark itself does.
"""

from __future__ import annotations

import gc
import time

from repro.core.batch import build_assurance
from repro.experiments.common import build_three_uav_world
from repro.experiments.monte_carlo import MONTE_CARLO_CAMPAIGN
from repro.harness.campaign import run_campaign

from conftest import print_table, run_once

FLEET_SIZES = (3, 10, 50)
CYCLES = 20
WARMUP_CYCLES = 5
REPEATS = 3
TARGET_CYCLE_SPEEDUP_AT_50 = 5.0
TARGET_MC_SPEEDUP = 3.0


def _cycle_cost_ms(n_uavs: int, engine: str) -> float:
    """Best-of-REPEATS mean assurance-cycle cost in milliseconds."""
    best = float("inf")
    for _ in range(REPEATS):
        scenario = build_three_uav_world(
            seed=11, n_persons=0, n_uavs=n_uavs, engine=engine
        )
        world = scenario.world
        for i, uav in enumerate(world.uavs.values()):
            # Keep the fleet cruising so monitors see moving state.
            uav.start_mission(
                [(5000.0 + 10.0 * i, 4000.0, 30.0),
                 (5000.0 + 10.0 * i, 8000.0, 30.0)]
            )
        plane = build_assurance(world)
        for _ in range(WARMUP_CYCLES):
            world.step()
            plane.step(world.time)
            plane.decide()
        gc.disable()
        total = 0.0
        try:
            for _ in range(CYCLES):
                world.step()
                start = time.perf_counter()
                plane.step(world.time)
                plane.decide()
                total += time.perf_counter() - start
        finally:
            gc.enable()
        best = min(best, total / CYCLES)
    return best * 1e3


def test_bench_assurance_cycle_scaling(benchmark):
    rows = []
    results = {}
    for n_uavs in FLEET_SIZES:
        scalar_ms = _cycle_cost_ms(n_uavs, "scalar")
        batched_ms = _cycle_cost_ms(n_uavs, "vectorized")
        results[n_uavs] = (scalar_ms, batched_ms)
        rows.append(
            [
                n_uavs,
                f"{scalar_ms:.3f}",
                f"{batched_ms:.3f}",
                f"{scalar_ms / batched_ms:.1f}x",
            ]
        )
    print_table(
        "Assurance cycle: scalar vs batched plane (ms per cycle)",
        ["uavs", "scalar", "batched", "speedup"],
        rows,
    )

    # Timed artifact for the benchmark JSON: the 50-UAV batched cycle.
    scenario = build_three_uav_world(
        seed=11, n_persons=0, n_uavs=50, engine="vectorized"
    )
    world = scenario.world
    for i, uav in enumerate(world.uavs.values()):
        uav.start_mission([(5000.0 + 10.0 * i, 4000.0, 30.0)])
    plane = build_assurance(world)
    for _ in range(WARMUP_CYCLES):
        world.step()
        plane.step(world.time)
        plane.decide()
    benchmark.pedantic(
        lambda: (plane.step(world.time), plane.decide()),
        rounds=1,
        iterations=CYCLES,
    )

    scalar_ms, batched_ms = results[50]
    speedup = scalar_ms / batched_ms
    benchmark.extra_info["cycle_ms_scalar_50"] = round(scalar_ms, 3)
    benchmark.extra_info["cycle_ms_batched_50"] = round(batched_ms, 3)
    benchmark.extra_info["assurance_speedup_50"] = round(speedup, 2)
    assert speedup >= TARGET_CYCLE_SPEEDUP_AT_50, (
        f"50-UAV assurance cycle speedup {speedup:.2f}x is below the "
        f"{TARGET_CYCLE_SPEEDUP_AT_50}x acceptance bar "
        f"(scalar {scalar_ms:.3f} ms vs batched {batched_ms:.3f} ms)"
    )


def test_bench_mc_campaign_batching(benchmark):
    start = time.perf_counter()
    serial = run_campaign(MONTE_CARLO_CAMPAIGN, grid="default", root_seed=0)
    serial_s = time.perf_counter() - start

    batched = run_once(
        benchmark,
        run_campaign,
        MONTE_CARLO_CAMPAIGN,
        grid="default",
        root_seed=0,
        batch=True,
    )
    batched_s = batched.manifest["totals"]["wall_s"]
    speedup = serial_s / batched_s

    print_table(
        "Fig. 5 Monte-Carlo campaign: per-sample vs sample-axis batched",
        ["mode", "wall_s", "samples"],
        [
            ["per-sample", f"{serial_s:.2f}", len(serial.records)],
            ["batched", f"{batched_s:.2f}", len(batched.records)],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["batched_s"] = round(batched_s, 3)
    benchmark.extra_info["mc_batching_speedup"] = round(speedup, 2)

    # Equivalence first: the batched sweep must be the same sweep.
    assert batched.fingerprint == serial.fingerprint
    assert batched.results == serial.results
    assert speedup >= TARGET_MC_SPEEDUP, (
        f"batched MC campaign only {speedup:.2f}x faster than per-sample "
        f"({serial_s:.2f} s vs {batched_s:.2f} s)"
    )
