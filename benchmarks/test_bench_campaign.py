"""Campaign harness benchmark: pool speedup and overhead.

The acceptance bar for the parallel campaign runner: a 64-sample
campaign on 4 workers must run at least 2x faster than the same campaign
serial, while producing sample-for-sample identical results. The
workload is the synthetic experiment's ``sleepy`` grid (64 samples, 50 ms
each), which measures what the pool actually provides — overlap of
wall-time-bound samples — independently of how many cores the CI box
happens to have.
"""

from __future__ import annotations

import time

import repro.harness.synthetic  # noqa: F401  (registers "synthetic")
from repro.harness.campaign import run_campaign

from conftest import print_table, run_once

GRID = "sleepy"  # 64 samples x 50 ms
ROOT_SEED = 99


def test_bench_campaign_parallel_speedup(benchmark):
    start = time.perf_counter()
    serial = run_campaign("synthetic", grid=GRID, root_seed=ROOT_SEED, workers=1)
    serial_s = time.perf_counter() - start

    parallel = run_once(
        benchmark,
        run_campaign,
        "synthetic",
        grid=GRID,
        root_seed=ROOT_SEED,
        workers=4,
    )
    parallel_s = parallel.manifest["totals"]["wall_s"]
    speedup = serial_s / parallel_s

    print_table(
        "Campaign runner: 64-sample sweep, serial vs 4 workers",
        ["mode", "wall_s", "samples"],
        [
            ["serial", f"{serial_s:.2f}", len(serial.records)],
            ["4 workers", f"{parallel_s:.2f}", len(parallel.records)],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # Equivalence first: a fast-but-different sweep would be worthless.
    assert parallel.fingerprint == serial.fingerprint
    assert parallel.results == serial.results
    assert len(parallel.records) == 64
    assert speedup >= 2.0, f"4-worker campaign only {speedup:.2f}x faster"


def test_bench_campaign_cache_rerun(benchmark, tmp_path):
    run_campaign(
        "synthetic", grid="default", root_seed=ROOT_SEED, cache_dir=tmp_path
    )
    cached = run_once(
        benchmark,
        run_campaign,
        "synthetic",
        grid="default",
        root_seed=ROOT_SEED,
        cache_dir=tmp_path,
    )
    totals = cached.manifest["totals"]
    print_table(
        "Campaign runner: warm-cache re-run (64 samples)",
        ["samples", "cached", "wall_s"],
        [[totals["samples"], totals["cached"], f"{totals['wall_s']:.4f}"]],
    )
    benchmark.extra_info.update(totals)
    assert totals["cached"] == totals["samples"] == 64
