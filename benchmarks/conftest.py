"""Shared helpers for the benchmark harness.

Each bench regenerates one paper table/figure: it runs the experiment
driver once under pytest-benchmark timing (pedantic, single round — the
experiments are deterministic simulations, not microbenchmarks), prints
the same rows/series the paper reports, and attaches the headline numbers
to ``benchmark.extra_info`` so they land in the JSON output.
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print one paper-style table to the bench log."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
