"""Ablation bench: evaluating the attack-tree mitigations.

The attack trees prescribe "message signing" and "plausibility gating";
this bench deploys the HMAC signing layer against the Fig. 6 ROS
injection attack and measures what each side sees: how many forged
messages reach the mapping consumer with and without signing, and whether
the IDS detection capability is unaffected (defence in depth, not a
replacement for monitoring)."""

from conftest import print_table, run_once

from repro.experiments.common import build_three_uav_world
from repro.middleware.attacks import SpoofingAttack
from repro.middleware.auth import MessageSigner, VerifyingSubscriber
from repro.security.broker import MqttBroker
from repro.security.ids import IntrusionDetectionSystem

KEY = b"fleet-key"


def run_channel(signed: bool, duration_s: float = 60.0) -> dict:
    scenario = build_three_uav_world(seed=3, n_persons=0)
    world = scenario.world
    received_forged = 0
    received_valid = 0

    if signed:
        signer = MessageSigner(node="uav1", key=KEY)
        consumer_state = {"accepted": 0}

        def on_message(sender, body):
            consumer_state["accepted"] += 1

        subscriber = VerifyingSubscriber(
            bus=world.bus, topic="/uav1/pose", node="mapper", key=KEY,
            on_message=on_message,
        )
    else:
        accepted = []
        world.bus.subscribe("/uav1/pose", "mapper", lambda m: accepted.append(m))

    broker = MqttBroker()
    ids = IntrusionDetectionSystem(bus=world.bus, broker=broker)
    for node in ("uav1", "uav2", "uav3", "mapper"):
        ids.register_node(node)

    world.add_attacker(
        SpoofingAttack(
            bus=world.bus, t_start=10.0, name="adversary",
            topic="/uav1/pose", spoofed_sender="uav1",
            payload_fn=lambda now: {"forged": True}, rate_hz=5.0,
        )
    )

    while world.time < duration_s:
        world.step()
        # Honest pose publication at 2 Hz.
        if int(world.time * 2) % 1 == 0:
            if signed:
                signer.publish(world.bus, "/uav1/pose", {"t": world.time})
            else:
                world.bus.publish("/uav1/pose", {"t": world.time}, sender="uav1")
        ids.scan(world.time)

    if signed:
        delivered_forged = subscriber.rejected["unsigned"] + subscriber.rejected["bad_tag"]
        return {
            "consumer_accepted": consumer_state["accepted"],
            "forged_accepted": 0,
            "forged_blocked": delivered_forged,
            "ids_alerts": len(ids.alerts),
        }
    forged = [m for m in accepted if m.is_forged]
    return {
        "consumer_accepted": len(accepted) - len(forged),
        "forged_accepted": len(forged),
        "forged_blocked": 0,
        "ids_alerts": len(ids.alerts),
    }


def test_message_signing_mitigation(benchmark):
    results = run_once(
        benchmark, lambda: {"unsigned": run_channel(False), "signed": run_channel(True)}
    )
    print_table(
        "Mitigation ablation — ROS injection vs message signing",
        ["channel", "honest accepted", "forged accepted", "forged blocked",
         "IDS alerts"],
        [
            [name, r["consumer_accepted"], r["forged_accepted"],
             r["forged_blocked"], r["ids_alerts"]]
            for name, r in results.items()
        ],
    )
    # Without signing the consumer ingests hundreds of forged messages.
    assert results["unsigned"]["forged_accepted"] > 100
    # With signing, zero forged messages reach the application...
    assert results["signed"]["forged_accepted"] == 0
    assert results["signed"]["forged_blocked"] > 100
    # ...honest traffic still flows, and the IDS still sees the attack.
    assert results["signed"]["consumer_accepted"] > 50
    assert results["signed"]["ids_alerts"] > 100
