"""Fleet engine scaling benchmark: vectorized vs scalar step loop.

The acceptance bar for the vectorized fleet engine: at 50 UAVs the
batched step loop must run at least 5x faster than the scalar reference
on the same mission. Two configurations are timed at every fleet size:

- **step loop** (telemetry gated off): the per-step physics the engine
  batches — kinematics, battery electro-thermal, wind, sensor noise.
  This is where the 5x bar applies.
- **full pipeline** (default 2 Hz telemetry, which at dt=0.5 s fires
  every step): adds telemetry object construction and bus delivery.
  Those messages are the *product* — identical frozen dataclasses in
  both engines — so construction cost is a shared floor and the
  end-to-end ratio sits lower (roughly 4x at 50 UAVs). The table
  reports both so the headline is honest about what vectorization can
  and cannot remove.

GC is disabled around the timed loops (as pytest-benchmark itself does
by default): both engines allocate the same telemetry object graphs, and
collection pauses would otherwise add identical noise to both columns.
"""

from __future__ import annotations

import gc
import time

from repro.experiments.common import build_three_uav_world

from conftest import print_table

FLEET_SIZES = (3, 10, 50, 100)
STEPS = 120
WARMUP_STEPS = 10
REPEATS = 3
TARGET_SPEEDUP_AT_50 = 5.0


def _build_world(n_uavs: int, engine: str, telemetry: bool):
    scenario = build_three_uav_world(
        seed=11, n_persons=0, n_uavs=n_uavs, engine=engine
    )
    world = scenario.world
    for i, uav in enumerate(world.uavs.values()):
        # Far-off waypoints keep the whole fleet cruising for the full
        # timed window (a landed UAV is cheap and would flatter the loop).
        uav.start_mission(
            [(5000.0 + 10.0 * i, 4000.0, 30.0), (5000.0 + 10.0 * i, 8000.0, 30.0)]
        )
        if not telemetry:
            # Interval of ~1e9 s: fires once on the first step, then
            # never again inside the timed window — on both engines.
            uav.telemetry_rate_hz = 1e-9
    return world


def _time_steps(world, steps: int) -> float:
    """Median-free best-effort timing: one contiguous stepped window."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(steps):
            world.step()
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def _per_step_us(n_uavs: int, engine: str, telemetry: bool) -> float:
    """Best-of-REPEATS per-step cost in microseconds."""
    best = float("inf")
    for _ in range(REPEATS):
        world = _build_world(n_uavs, engine, telemetry)
        _time_steps(world, WARMUP_STEPS)
        best = min(best, _time_steps(world, STEPS) / STEPS)
    return best * 1e6


def test_bench_fleet_scaling(benchmark):
    rows = []
    results = {}
    for n_uavs in FLEET_SIZES:
        scalar_step = _per_step_us(n_uavs, "scalar", telemetry=False)
        vector_step = _per_step_us(n_uavs, "vectorized", telemetry=False)
        scalar_full = _per_step_us(n_uavs, "scalar", telemetry=True)
        vector_full = _per_step_us(n_uavs, "vectorized", telemetry=True)
        results[n_uavs] = (scalar_step, vector_step, scalar_full, vector_full)
        rows.append(
            [
                n_uavs,
                f"{scalar_step:.0f}",
                f"{vector_step:.0f}",
                f"{scalar_step / vector_step:.1f}x",
                f"{scalar_full:.0f}",
                f"{vector_full:.0f}",
                f"{scalar_full / vector_full:.1f}x",
            ]
        )
    print_table(
        "Fleet scaling: per-step cost, scalar vs vectorized (us)",
        [
            "uavs",
            "step scalar", "step vector", "step speedup",
            "full scalar", "full vector", "full speedup",
        ],
        rows,
    )

    # Timed artifact for the benchmark JSON: the 50-UAV vectorized loop.
    world = _build_world(50, "vectorized", telemetry=False)
    _time_steps(world, WARMUP_STEPS)
    gc.disable()
    try:
        benchmark.pedantic(
            lambda: [world.step() for _ in range(STEPS)],
            rounds=1,
            iterations=1,
        )
    finally:
        gc.enable()

    scalar_step, vector_step, scalar_full, vector_full = results[50]
    speedup_step = scalar_step / vector_step
    speedup_full = scalar_full / vector_full
    benchmark.extra_info["per_step_us_scalar_50"] = round(scalar_step, 1)
    benchmark.extra_info["per_step_us_vectorized_50"] = round(vector_step, 1)
    benchmark.extra_info["step_loop_speedup_50"] = round(speedup_step, 2)
    benchmark.extra_info["full_pipeline_speedup_50"] = round(speedup_full, 2)

    assert speedup_step >= TARGET_SPEEDUP_AT_50, (
        f"50-UAV step loop speedup {speedup_step:.2f}x is below the "
        f"{TARGET_SPEEDUP_AT_50}x acceptance bar "
        f"(scalar {scalar_step:.0f} us vs vectorized {vector_step:.0f} us)"
    )
    # The full pipeline shares the telemetry-construction floor; it must
    # still be clearly faster, just not 5x (see module docstring).
    assert speedup_full >= 2.0, (
        f"50-UAV full-pipeline speedup {speedup_full:.2f}x regressed"
    )
