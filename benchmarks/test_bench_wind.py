"""Ablation bench: wind severity vs mission cost.

The DJI simulator workflow the paper describes lets operators "adjust
wind speed" before field trials; this sweep shows why: unrejected drift
stretches the flown path and the gust-fighting power draw eats the pack,
quantifying the wind envelope within which the Fig. 5 energy budget
holds."""

import numpy as np
from conftest import print_table, run_once

from repro.experiments.common import build_three_uav_world
from repro.sar.mission import SarMission
from repro.uav.environment import Environment, GustProcess


def run_windy_mission(wind_mps: float, seed: int = 12) -> dict:
    scenario = build_three_uav_world(seed=seed, n_persons=6)
    world = scenario.world
    if wind_mps > 0.0:
        world.environment = Environment(
            rng=np.random.default_rng(seed + 1),
            wind_direction_deg=250.0,
            gusts=GustProcess(rng=np.random.default_rng(seed + 2), mean_mps=wind_mps),
        )
    mission = SarMission(world=world, altitude_m=20.0)
    mission.assign_paths()
    start_soc = {u: world.uavs[u].battery.soc for u in world.uavs}
    metrics = mission.run(max_time_s=2500.0)
    energy = float(
        np.mean(
            [start_soc[u] - world.uavs[u].battery.soc for u in world.uavs]
        )
    )
    return {
        "completion_s": metrics.completed_at or float("nan"),
        "coverage": metrics.coverage_fraction,
        "found": metrics.persons_found,
        "energy_fraction": energy,
    }


def test_wind_severity_sweep(benchmark):
    winds = (0.0, 4.0, 8.0, 12.0)
    results = run_once(benchmark, lambda: {w: run_windy_mission(w) for w in winds})
    print_table(
        "Wind ablation — mean wind vs mission cost (3-UAV coverage)",
        ["wind [m/s]", "completion [s]", "coverage", "persons found",
         "mean energy used"],
        [
            [f"{w:.0f}", f"{r['completion_s']:.0f}", f"{100 * r['coverage']:.0f}%",
             r["found"], f"{100 * r['energy_fraction']:.1f}%"]
            for w, r in results.items()
        ],
    )
    # Wind costs energy monotonically across the sweep extremes.
    assert results[12.0]["energy_fraction"] > results[0.0]["energy_fraction"]
    # The mission still completes and covers the area in the envelope.
    for r in results.values():
        assert r["coverage"] > 0.85
