"""Ablation bench: SafeML distance-measure choice.

Sweeps the measure family (KS, Kuiper, CVM, AD, Wasserstein, DTS) over a
graded distribution shift, reporting each measure's response curve
(normalised to its null level) and its evaluation cost — the trade-off a
deployment must make when picking the runtime measure.
"""

import numpy as np
from conftest import print_table

from repro.safeml.distances import ALL_MEASURES


RNG = np.random.default_rng(0)
REFERENCE = RNG.normal(0.0, 1.0, 600)
WINDOWS = {
    shift: RNG.normal(shift, 1.0, 60) for shift in (0.0, 0.25, 0.5, 1.0, 2.0)
}


def test_measure_response_curves(benchmark):
    def compute():
        out = {}
        for name, fn in sorted(ALL_MEASURES.items()):
            null = fn(REFERENCE[:60], REFERENCE[60:]) + 1e-12
            out[name] = [fn(WINDOWS[s], REFERENCE) / null for s in sorted(WINDOWS)]
        return out

    from conftest import run_once

    responses_by_measure = run_once(benchmark, compute)
    rows = []
    for name in sorted(ALL_MEASURES):
        rows.append([name] + [f"{r:.2f}" for r in responses_by_measure[name]])
    print_table(
        "SafeML ablation — distance response vs mean shift (x null level)",
        ["measure"] + [f"shift={s}" for s in sorted(WINDOWS)],
        rows,
    )
    # Every measure must respond monotonically to growing shift at the
    # scales that matter (>= 0.5 sigma).
    for name, fn in ALL_MEASURES.items():
        d_half = fn(WINDOWS[0.5], REFERENCE)
        d_one = fn(WINDOWS[1.0], REFERENCE)
        d_two = fn(WINDOWS[2.0], REFERENCE)
        assert d_half < d_one < d_two, name


def test_dts_evaluation_cost(benchmark):
    """Per-report cost of the default (DTS) measure at deployment sizes."""
    fn = ALL_MEASURES["dts"]
    result = benchmark(fn, WINDOWS[1.0], REFERENCE)
    assert result > 0.0


def test_ks_evaluation_cost(benchmark):
    """The cheapest measure, for comparison with DTS."""
    fn = ALL_MEASURES["kolmogorov_smirnov"]
    result = benchmark(fn, WINDOWS[1.0], REFERENCE)
    assert result > 0.0
