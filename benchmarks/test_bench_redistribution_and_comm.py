"""Ablation benches: task redistribution vs mission response time, and the
communication channel's effect on link guarantees.

The paper's intro motivates multi-UAV systems by "task-sharing and
redundancy" that "reduce response times"; the redistribution bench
quantifies exactly that on the Fig. 1 response path.
"""

import numpy as np
from conftest import print_table, run_once

from repro.experiments.common import build_three_uav_world
from repro.safedrones.communication import CommLinkMonitor, GilbertElliottChannel
from repro.sar.mission import SarMission
from repro.sar.redistribution import TaskRedistributor
from repro.uav.battery import BatteryFault
from repro.uav.uav import FlightMode


def run_mission(redistribute: bool, seed: int = 21) -> dict:
    """A coverage mission where uav1 drops out at t=60 s."""
    scenario = build_three_uav_world(seed=seed, n_persons=6)
    world = scenario.world
    mission = SarMission(world=world, altitude_m=20.0)
    mission.assign_paths()
    uav1 = world.uavs["uav1"]
    uav1.battery.inject_fault(BatteryFault(at_time=60.0, soc_drop_to=0.2))
    handled = False
    while not mission.mission_complete and world.time < 3000.0:
        mission.step()
        if not handled and world.time >= 62.0:
            handled = True
            dropped_waypoints = uav1.plan.waypoints[uav1.plan.index :]
            uav1.command_mode(FlightMode.RETURN_TO_BASE)
            if redistribute:
                TaskRedistributor().execute(
                    uav1, [world.uavs["uav2"], world.uavs["uav3"]]
                )
            else:
                # Nobody picks up the dropped coverage; record the loss.
                pass
    return {
        "completion_s": world.time,
        "coverage": mission.metrics.coverage_fraction,
        "found": mission.metrics.persons_found,
        "total": mission.metrics.persons_total,
    }


def test_redistribution_vs_abandonment(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "with": run_mission(redistribute=True),
            "without": run_mission(redistribute=False),
        },
    )
    print_table(
        "Task redistribution ablation — uav1 drops at t=60 s",
        ["policy", "coverage complete [s]", "area coverage", "persons found"],
        [
            [name, f"{r['completion_s']:.0f}", f"{100 * r['coverage']:.0f}%",
             f"{r['found']}/{r['total']}"]
            for name, r in results.items()
        ],
    )
    # Redistribution recovers the dropped strip's coverage.
    assert results["with"]["coverage"] > results["without"]["coverage"] + 0.1


def test_comm_channel_link_guarantee_sweep(benchmark):
    """Burstiness sweep: when does the comm-link ConSert guarantee hold?"""

    def sweep():
        rows = []
        for p_bad in (0.005, 0.02, 0.08, 0.3):
            channel = GilbertElliottChannel(
                rng=np.random.default_rng(11), p_good_to_bad=p_bad,
                p_bad_to_good=0.2,
            )
            monitor = CommLinkMonitor()
            ok_time = 0
            steps = 4000
            for _ in range(steps):
                channel.step(0.5)
                monitor.record(channel.deliver())
                if monitor.assess(0.0).link_ok:
                    ok_time += 1
            rows.append(
                (p_bad, channel.expected_delivery_ratio(), ok_time / steps)
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Comm channel ablation — burstiness vs link-OK availability",
        ["P(good->bad) [1/s]", "expected delivery", "link-OK fraction"],
        [[f"{r[0]:.3f}", f"{r[1]:.3f}", f"{r[2]:.3f}"] for r in rows],
    )
    # Link availability degrades monotonically with burst pressure.
    fractions = [r[2] for r in rows]
    assert fractions[0] > fractions[-1]
    assert fractions[0] > 0.9
