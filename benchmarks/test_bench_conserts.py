"""Bench: evaluate the Fig. 1 hierarchical ConSert network over the
scenario matrix, and measure the runtime cost of one full fleet
evaluation (the per-cycle overhead the EDDI loop pays)."""

from conftest import print_table, run_once

from repro.core.decider import MissionDecider
from repro.core.uav_network import UavConSertNetwork
from repro.experiments import run_conserts_scenario_matrix
from repro.experiments.conserts_network import UavCondition, apply_condition


def test_conserts_scenario_matrix(benchmark):
    results = run_once(benchmark, run_conserts_scenario_matrix)

    rows = []
    for result in results:
        degraded = result.conditions[0]
        rows.append(
            [degraded.reliability,
             "ok" if degraded.gps_ok else "LOST",
             "yes" if degraded.attack else "no",
             "ok" if degraded.camera_ok else "DEAD",
             result.guarantees[0].value,
             result.navigation[0],
             result.verdict.value]
        )
    print_table(
        "Fig. 1 — single-UAV degradation matrix (other two UAVs healthy)",
        ["reliability", "gps", "attack", "camera", "uav guarantee",
         "navigation", "mission verdict"],
        rows,
    )
    benchmark.extra_info["n_scenarios"] = len(results)
    assert len(results) == 24


def test_fleet_evaluation_speed(benchmark):
    """Per-cycle cost of a full 3-UAV ConSert + decider evaluation."""
    decider = MissionDecider()
    networks = []
    for i in range(3):
        network = UavConSertNetwork(uav_id=f"uav{i + 1}")
        apply_condition(network, UavCondition())
        decider.add_uav(network)
        networks.append(network)

    def evaluate_cycle():
        networks[0].set_reliability_level("medium")
        networks[0].set_reliability_level("high")
        return decider.decide()

    decision = benchmark(evaluate_cycle)
    assert decision.verdict.value == "mission_completed_as_planned"
