"""Ablation bench: spoof ramp rate vs detection latency and stealth floor.

The paper claims "precise detection of spoofing attacks"; this sweep
characterises the sensor-level detector across attack aggressiveness —
from abrupt jumps to slow carry-off ramps — reporting detection latency
and the residual position error accumulated before detection.
"""

import numpy as np
from conftest import print_table, run_once

from repro.security.spoofing import GpsSpoofingDetector


def detection_latency_for_ramp(ramp_mps: float, seed: int = 0, dt: float = 0.5):
    """Simulate a straight flight with a spoof ramp; return latency/error."""
    rng = np.random.default_rng(seed)
    detector = GpsSpoofingDetector()
    truth = np.zeros(3)
    velocity = np.array([2.0, 0.0, 0.0])
    onset = 20.0
    for k in range(1200):
        now = k * dt
        truth = truth + velocity * dt
        offset = np.array([max(0.0, ramp_mps * (now - onset)), 0.0, 0.0])
        gps = truth + offset + rng.normal(0.0, 0.3, 3)
        imu = velocity + rng.normal(0.0, 0.05, 3)
        detector.update(now, tuple(gps), tuple(imu), dt)
        if detector.spoof_detected:
            latency = detector.detection_time - onset
            return latency, ramp_mps * latency
    return None, None


def test_spoof_detection_ramp_sweep(benchmark):
    ramps = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 5.0, 20.0]

    def sweep():
        return {ramp: detection_latency_for_ramp(ramp) for ramp in ramps}

    results = run_once(benchmark, sweep)

    rows = []
    for ramp in ramps:
        latency, drift = results[ramp]
        rows.append(
            [f"{ramp:.2f}",
             f"{latency:.1f}" if latency is not None else "undetected",
             f"{drift:.1f}" if drift is not None else "-"]
        )
    print_table(
        "Spoof detection ablation — ramp rate vs latency",
        ["ramp [m/s]", "detection latency [s]", "drift before detection [m]"],
        rows,
    )
    print(
        "\nstealth floor: ramps below cumulative_threshold / window "
        "(2.5 m / 10 s = 0.25 m/s) stay inside the noise budget and are "
        "undetectable by the sensor channel alone — the network-level "
        "Security EDDI covers that regime."
    )
    # Every ramp at or above the Fig. 6 rate (0.8 m/s) must be caught fast.
    for ramp in (0.8, 1.6, 5.0, 20.0):
        latency, _ = results[ramp]
        assert latency is not None and latency < 15.0
    # Moderate carry-off attacks are still caught...
    latency_moderate, _ = results[0.2]
    assert latency_moderate is not None
    # ...while sub-floor ramps are the documented stealth regime.
    assert results[0.05][0] is None
