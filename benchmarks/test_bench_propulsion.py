"""Ablation bench: SafeDrones propulsion reconfiguration.

Sweeps airframe (quad / hexa / octa) x reconfiguration success rate and
reports mission-horizon failure probability and MTTF — the design-space
view behind the paper's "reconfiguration in the propulsion system"
capability (Sec. III-A1)."""

from conftest import print_table, run_once

from repro.safedrones.propulsion import PropulsionModel


def sweep():
    rows = []
    for rotors in (4, 6, 8):
        for reconfig in (0.5, 0.9, 0.99, 1.0):
            model = PropulsionModel(rotor_count=rotors, reconfig_success=reconfig)
            rows.append(
                (rotors, reconfig,
                 model.failure_probability(1800.0),
                 model.failure_probability(4 * 3600.0),
                 model.mttf_hours())
            )
    return rows


def test_propulsion_reconfiguration_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        "Propulsion ablation — airframe x reconfiguration success",
        ["rotors", "reconfig", "PoF @ 30 min", "PoF @ 4 h", "MTTF [h]"],
        [
            [r[0], f"{r[1]:.2f}", f"{r[2]:.2e}", f"{r[3]:.2e}", f"{r[4]:.0f}"]
            for r in rows
        ],
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # With perfect reconfiguration, redundancy strictly helps at 4 h.
    assert by_key[(8, 1.0)][3] < by_key[(6, 1.0)][3] < by_key[(4, 1.0)][3]
    # MTTF grows with redundancy for high reconfig success.
    assert by_key[(8, 0.99)][4] > by_key[(4, 0.99)][4]


def test_markov_transient_solve_cost(benchmark):
    """Cost of one reliability query (the per-cycle SafeDrones load)."""
    model = PropulsionModel(rotor_count=8)
    pof = benchmark(model.failure_probability, 3600.0)
    assert 0.0 <= pof <= 1.0
