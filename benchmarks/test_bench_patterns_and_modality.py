"""Ablation benches: SAR search-pattern choice and detection modality.

Pattern bench: when a survivor's last known position (datum) is known,
how fast does each pattern put the camera over them? Modality bench: the
day/night/ambient sweep showing why the paper's airframes carry thermal
imaging alongside RGB.
"""

import math

import numpy as np
from conftest import print_table, run_once

from repro.sar.coverage import boustrophedon_path
from repro.sar.patterns import expanding_square, pattern_length_m, sector_search
from repro.sar.thermal import LightCondition, fused_accuracy, rgb_accuracy, thermal_accuracy

DATUM = (150.0, 150.0)
ALTITUDE = 20.0
SPEED = 10.0


def time_to_reach(path, target, swath_half=11.0):
    """Flight time until the path first passes within the swath of target."""
    elapsed = 0.0
    for (x1, y1, _), (x2, y2, _) in zip(path, path[1:]):
        seg = math.dist((x1, y1), (x2, y2))
        dx, dy = x2 - x1, y2 - y1
        norm = dx * dx + dy * dy
        px, py = target
        if norm > 0.0:
            t = max(0.0, min(1.0, ((px - x1) * dx + (py - y1) * dy) / norm))
        else:
            t = 0.0
        closest = math.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
        if closest <= swath_half:
            return (elapsed + t * seg) / SPEED
        elapsed += seg
    return None


def test_search_pattern_time_to_find(benchmark):
    """Survivors scattered around the datum; which pattern reaches them first?"""

    def sweep():
        rng = np.random.default_rng(17)
        # Survivors near the datum (Rayleigh-distributed drift).
        survivors = [
            (
                DATUM[0] + r * math.sin(theta),
                DATUM[1] + r * math.cos(theta),
            )
            for r, theta in zip(
                rng.rayleigh(35.0, 60), rng.uniform(0, 2 * math.pi, 60)
            )
        ]
        patterns = {
            "expanding_square": expanding_square(DATUM, ALTITUDE, max_radius_m=120.0),
            "sector_search": sector_search(DATUM, ALTITUDE, radius_m=120.0),
            "boustrophedon": boustrophedon_path(
                ((DATUM[0] - 120.0, DATUM[0] + 120.0),
                 (DATUM[1] - 120.0, DATUM[1] + 120.0)),
                ALTITUDE,
            ),
        }
        rows = []
        for name, path in patterns.items():
            times = [time_to_reach(path, s) for s in survivors]
            found = [t for t in times if t is not None]
            rows.append(
                (name,
                 pattern_length_m(path),
                 np.mean(found) if found else float("nan"),
                 np.median(found) if found else float("nan"),
                 len(found) / len(survivors))
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Search-pattern ablation — datum-centred survivors",
        ["pattern", "path length [m]", "mean time-to-find [s]",
         "median [s]", "found fraction"],
        [
            [r[0], f"{r[1]:.0f}", f"{r[2]:.0f}", f"{r[3]:.0f}", f"{r[4]:.2f}"]
            for r in rows
        ],
    )
    by_name = {r[0]: r for r in rows}
    # Datum-centred prior: the expanding square finds survivors sooner
    # (median) than the uniform sweep.
    assert by_name["expanding_square"][3] < by_name["boustrophedon"][3]


def test_detection_modality_sweep(benchmark):
    """RGB / thermal / fused accuracy over the operating envelope."""

    def sweep():
        rows = []
        for light in LightCondition:
            for ambient in (10.0, 25.0, 35.0):
                rows.append(
                    (light.value, ambient,
                     rgb_accuracy(ALTITUDE, light),
                     thermal_accuracy(ALTITUDE, ambient),
                     fused_accuracy(ALTITUDE, light, ambient))
                )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Detection modality ablation — light x ambient temperature",
        ["light", "ambient [C]", "RGB acc", "thermal acc", "fused acc"],
        [
            [r[0], f"{r[1]:.0f}", f"{r[2]:.3f}", f"{r[3]:.3f}", f"{r[4]:.3f}"]
            for r in rows
        ],
    )
    for row in rows:
        assert row[4] >= max(row[2], row[3]) - 1e-9
