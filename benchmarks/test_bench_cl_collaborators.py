"""Ablation bench: collaborative localization precision vs collaborator
count.

The Fig. 1 ConSert promises "Collaborative Navigation with accuracy
<0.75 m"; this sweep shows how the fused estimate precision and the final
landing error scale from one to two assisting UAVs."""

from conftest import print_table, run_once

from repro.experiments import run_fig7_collaborative_landing


def sweep():
    results = {}
    for n in (1, 2):
        results[n] = run_fig7_collaborative_landing(n_assistants=n)
    return results


def test_collaborator_count_sweep(benchmark):
    results = run_once(benchmark, sweep)

    rows = []
    for n, result in sorted(results.items()):
        rows.append(
            [n,
             f"{result.cl_report.mean_cl_sigma_m:.2f}",
             f"{result.mean_estimate_error_m:.2f}",
             f"{result.cl_report.final_error_m:.2f}",
             result.cl_report.landed,
             result.n_sightings]
        )
    print_table(
        "CL ablation — collaborators vs precision (baseline landing error: "
        f"{results[2].baseline_error_m:.1f} m)",
        ["collaborators", "mean sigma [m]", "mean est err [m]",
         "landing err [m]", "landed", "sightings"],
        rows,
    )
    # Both configurations land and beat the dead-reckoning baseline.
    for result in results.values():
        assert result.cl_report.landed
        assert result.cl_report.final_error_m < result.baseline_error_m
    # Two collaborators tighten the fused estimate.
    assert (
        results[2].cl_report.mean_cl_sigma_m
        <= results[1].cl_report.mean_cl_sigma_m + 0.05
    )
