"""Degraded-comm bench: link loss vs fleet mission availability.

The comm-dimension analogue of the Fig. 5 availability study: sweep the
Gilbert–Elliott link loss under the night-ops/GPS-denied scenario where
collaborative localization carries the mission, and report how much
mission availability the ConSert network can still offer.
"""

from conftest import print_table, run_once

from repro.experiments.comm_availability import run_comm_availability_experiment

LOSS_RATES = (0.0, 0.2, 0.45, 0.7, 0.85)


def test_loss_rate_vs_mission_availability(benchmark):
    result = run_once(
        benchmark,
        run_comm_availability_experiment,
        loss_rates=LOSS_RATES,
        seed=7,
        duration_s=240.0,
    )
    print_table(
        "Degraded comm — link loss vs mission availability",
        ["loss", "delivery (expected)", "delivery (measured)", "availability",
         "demotions"],
        [
            [f"{loss:.2f}", f"{expected:.3f}", f"{measured:.3f}",
             f"{availability:.3f}", demotions]
            for loss, expected, measured, availability, demotions
            in result.summary_rows()
        ],
    )
    benchmark.extra_info["availability_by_loss"] = {
        str(p.loss_rate): round(p.availability, 4) for p in result.points
    }
    availabilities = [p.availability for p in result.points]
    # A clean mesh sustains the mission; a collapsed one cannot.
    assert availabilities[0] > 0.95
    assert availabilities[-1] < 0.2
    # Availability never improves as loss climbs.
    assert all(a >= b - 1e-9 for a, b in zip(availabilities, availabilities[1:]))
    # The bus's measured delivery tracks the channel's analytic ratio.
    for point in result.points:
        assert abs(point.measured_delivery - point.expected_delivery) < 0.1
