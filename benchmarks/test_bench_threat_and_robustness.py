"""Ablation benches: threat-landscape quantification, FTA importance
analysis, and the Fig. 5 Monte Carlo robustness sweep."""

from conftest import print_table, run_once

from repro.experiments.monte_carlo import run_monte_carlo_fig5
from repro.safedrones.battery import BatteryReliabilityModel
from repro.safedrones.fta import AndGate, BasicEvent, ComplexBasicEvent, FaultTree, OrGate
from repro.safedrones.importance import importance_analysis
from repro.security.analysis import threat_landscape, uav_threat_library


def test_threat_landscape_quantification(benchmark):
    summaries = run_once(benchmark, lambda: threat_landscape(uav_threat_library()))
    print_table(
        "UAV threat landscape — attack trees ranked by risk",
        ["attack tree", "root likelihood", "severity", "risk", "dominant path"],
        [
            [s.tree, f"{s.root_likelihood:.3f}", f"{s.severity:.0f}",
             f"{s.risk:.3f}", " -> ".join(s.dominant_path)]
            for s in summaries
        ],
    )
    assert summaries[0].risk >= summaries[-1].risk


def test_uav_loss_importance_analysis(benchmark):
    """Design-time importance ranking over the UAV-loss fault tree."""
    battery_model = BatteryReliabilityModel()
    battery_model.update(0.0, 0.4, 70.0)
    battery_model.update(300.0, 0.4, 70.0)
    tree = FaultTree(
        name="uav_loss",
        top=OrGate(
            "loss",
            [
                ComplexBasicEvent("battery", battery_model),
                AndGate(
                    "nav_loss",
                    [BasicEvent("gps", 0.02), BasicEvent("vision", 0.05)],
                ),
                BasicEvent("processor", 0.001),
            ],
        ),
    )
    reports = run_once(benchmark, importance_analysis, tree)
    print_table(
        "UAV-loss fault tree — basic event importance",
        ["event", "P", "Birnbaum", "criticality", "Fussell-Vesely", "RAW", "RRW"],
        [
            [r.event, f"{r.probability:.4f}", f"{r.birnbaum:.4f}",
             f"{r.criticality:.4f}", f"{r.fussell_vesely:.4f}",
             f"{r.raw:.2f}", f"{r.rrw:.2f}" if r.rrw != float("inf") else "inf"]
            for r in reports
        ],
    )
    assert reports[0].event == "battery"  # stressed pack dominates


def test_fig5_monte_carlo_robustness(benchmark):
    """Does the Fig. 5 conclusion survive scenario perturbation?"""
    result = run_once(
        benchmark,
        run_monte_carlo_fig5,
        fault_times=(150.0, 250.0, 350.0),
        soc_levels=(0.40,),
        seeds=(3,),
    )
    print_table(
        "Fig. 5 Monte Carlo — availability across fault scenarios",
        ["fault t [s]", "SoC after", "seed", "avail with", "avail without", "one pass"],
        [
            [f"{s.fault_time_s:.0f}", f"{s.soc_after_fault:.2f}", s.seed,
             f"{s.availability_with:.3f}", f"{s.availability_without:.3f}",
             s.completed_one_pass]
            for s in result.samples
        ],
    )
    print(
        f"\nmean advantage: {result.mean_advantage:.3f}; "
        f"win rate: {result.win_rate:.2f}; "
        f"one-pass rate: {result.one_pass_rate:.2f}"
    )
    assert result.mean_advantage > 0.0
    assert result.win_rate >= 0.5
