"""Planner bench: a 200-point inspection mission on a 64^3 voxel grid.

The tentpole planning stack end to end — build the occupancy grid from
primitives, inflate it, lay a 200-point inspection lattice, partition it
across a three-UAV fleet, order each part with nearest-neighbour + 2-opt,
and route every tour around the obstacles with A* — all inside a fixed
wall-clock budget. The budget is deliberately generous (CI machines vary)
but still catches an accidental complexity regression: a planner that
re-inflates per leg or A*-searches open terrain blows straight through
it.
"""

import time

import numpy as np
from conftest import print_table, run_once

from repro.plan import (
    ObstacleField,
    inspection_points,
    nearest_neighbor_tour,
    partition_points,
    route_waypoints,
    tour_length,
    two_opt,
)

AREA_M = 256.0
CELL_M = 4.0          # 256 m / 4 m = 64 cells per axis
ALTITUDE = 30.0
N_POINTS = 200
STARTS = [(8.0, 8.0, ALTITUDE), (128.0, 8.0, ALTITUDE), (248.0, 8.0, ALTITUDE)]
#: Wall-clock ceiling for the whole mission plan (build + tours + A*).
#: ~0.25 s on a dev box — 20x headroom for slow CI runners, yet tight
#: enough to catch a complexity regression in the planner stack.
BUDGET_S = 5.0


def _urban_field() -> ObstacleField:
    """A seeded city block: 12 buildings and 6 masts, clear margins.

    Primitive footprints stay >= 20 m from the area edges so the fleet
    bases are in free space even after inflation.
    """
    rng = np.random.default_rng(64)
    boxes = []
    for _ in range(12):
        cx, cy = rng.uniform(40.0, AREA_M - 40.0, size=2)
        hx, hy = rng.uniform(8.0, 20.0, size=2)
        height = float(rng.uniform(20.0, 60.0))
        boxes.append(
            (
                (float(cx - hx), float(cy - hy), 0.0),
                (float(cx + hx), float(cy + hy), height),
            )
        )
    cylinders = []
    for _ in range(6):
        cx, cy = rng.uniform(40.0, AREA_M - 40.0, size=2)
        cylinders.append(
            (
                (float(cx), float(cy)),
                float(rng.uniform(4.0, 10.0)),
                float(rng.uniform(15.0, 50.0)),
            )
        )
    return ObstacleField.build(
        size_m=(AREA_M, AREA_M, AREA_M),
        cell_m=CELL_M,
        boxes=boxes,
        cylinders=cylinders,
        inflation_m=3.0,
    )


def test_planner_200_point_mission(benchmark):
    """A* + 2-opt plans the full 200-point mission under BUDGET_S."""

    def plan_mission():
        t0 = time.perf_counter()
        field = _urban_field()
        build_s = time.perf_counter() - t0

        candidates = inspection_points(AREA_M, 14.0, ALTITUDE, field)
        assert len(candidates) >= N_POINTS, (
            f"lattice only yielded {len(candidates)} free points"
        )
        points = candidates[:N_POINTS]

        t1 = time.perf_counter()
        parts = partition_points(points, len(STARTS))
        rows = []
        tours = []
        for start, part in zip(STARTS, parts):
            pts = [points[i] for i in part]
            nn = nearest_neighbor_tour(start, pts)
            nn_m = tour_length([start] + [pts[i] for i in nn])
            order = two_opt(start, pts, nn)
            opt_m = tour_length([start] + [pts[i] for i in order])
            tour = route_waypoints(field, start, [pts[i] for i in order])
            routed_m = tour_length([start] + tour)
            tours.append((start, tour))
            rows.append((len(pts), nn_m, opt_m, routed_m, len(tour)))
        plan_s = time.perf_counter() - t1
        return {
            "field": field,
            "points": points,
            "rows": rows,
            "tours": tours,
            "build_s": build_s,
            "plan_s": plan_s,
            "total_s": build_s + plan_s,
        }

    result = run_once(benchmark, plan_mission)
    field = result["field"]
    assert field.grid.shape == (64, 64, 64)

    print_table(
        "Planner bench — 200 inspection points, 64^3 grid, 3 UAVs",
        ["UAV", "points", "NN tour [m]", "2-opt tour [m]",
         "routed [m]", "waypoints"],
        [
            [f"uav{i + 1}", r[0], f"{r[1]:.0f}", f"{r[2]:.0f}",
             f"{r[3]:.0f}", r[4]]
            for i, r in enumerate(result["rows"])
        ],
    )
    print(
        f"grid build {result['build_s']:.2f} s + tours {result['plan_s']:.2f} s"
        f" = {result['total_s']:.2f} s (budget {BUDGET_S:.0f} s)"
    )
    benchmark.extra_info["build_s"] = result["build_s"]
    benchmark.extra_info["plan_s"] = result["plan_s"]

    # The budget is the headline assertion: the whole mission plan, grid
    # build included, lands inside the fixed wall-clock ceiling.
    assert result["total_s"] < BUDGET_S

    # 2-opt never lengthens the tour it was handed.
    for n_pts, nn_m, opt_m, _, _ in result["rows"]:
        assert opt_m <= nn_m + 1e-9

    # Every routed tour is collision-free on the RAW grid and the fleet
    # visits all 200 points between them.
    visited = set()
    for start, tour in result["tours"]:
        assert field.grid.path_free([start] + tour)
        visited.update(tour)
    assert visited >= set(result["points"])
