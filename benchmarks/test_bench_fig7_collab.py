"""Bench: regenerate Fig. 7 (collaborative localization guiding the
GPS-denied spoofed UAV to a high-precision safe landing)."""

from conftest import print_table, run_once

from repro.experiments import run_fig7_collaborative_landing


def test_fig7_collaborative_safe_landing(benchmark):
    result = run_once(benchmark, run_fig7_collaborative_landing)

    # Trajectory samples of spoofed + assisting UAV (the Fig. 7 tracks).
    n = len(result.spoofed_trajectory)
    rows = []
    for frac in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        idx = min(n - 1, int(frac * (n - 1)))
        spoofed = result.spoofed_trajectory[idx]
        assistant = result.assist_trajectory[idx]
        rows.append(
            [f"{frac:.1f}",
             f"({spoofed[0]:.1f}, {spoofed[1]:.1f}, {spoofed[2]:.1f})",
             f"({assistant[0]:.1f}, {assistant[1]:.1f}, {assistant[2]:.1f})"]
        )
    print_table(
        "Fig. 7 — spoofed UAV (GPS-denied) and assisting UAV tracks",
        ["mission fraction", "spoofed UAV (E,N,U)", "assisting UAV (E,N,U)"],
        rows,
    )
    print_table(
        "Landing outcome (paper: high-precision landing without GPS)",
        ["metric", "value"],
        [
            ["landed", result.cl_report.landed],
            ["landing error [m]", f"{result.cl_report.final_error_m:.2f}"],
            ["dead-reckoning baseline error [m]", f"{result.baseline_error_m:.2f}"],
            ["mean CL estimate error [m]", f"{result.mean_estimate_error_m:.2f}"],
            ["mean CL sigma [m] (< 0.75 ConSert bound)",
             f"{result.cl_report.mean_cl_sigma_m:.2f}"],
            ["sightings", result.n_sightings],
            ["duration [s]", f"{result.cl_report.duration_s:.1f}"],
        ],
    )
    benchmark.extra_info["landing_error_m"] = result.cl_report.final_error_m
    benchmark.extra_info["baseline_error_m"] = result.baseline_error_m

    assert result.cl_report.landed
    assert result.cl_report.final_error_m < result.baseline_error_m
