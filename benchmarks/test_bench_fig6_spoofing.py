"""Bench: regenerate Fig. 6 (trajectory deviation under ROS message
spoofing, with immediate Security EDDI detection)."""

from conftest import print_table, run_once

from repro.experiments import run_fig6_spoofing_experiment


def test_fig6_spoofing_trajectory_deviation(benchmark):
    result = run_once(benchmark, run_fig6_spoofing_experiment)

    rows = []
    for target in (30, 60, 90, 120, 150, 180, 210, 235):
        idx = min(range(len(result.times)), key=lambda i: abs(result.times[i] - target))
        clean = result.clean_trajectory[idx]
        attacked = result.attacked_trajectory[idx]
        rows.append(
            [f"{result.times[idx]:.0f}",
             f"({clean[0]:.0f}, {clean[1]:.0f})",
             f"({attacked[0]:.0f}, {attacked[1]:.0f})",
             f"{result.deviation_m[idx]:.1f}"]
        )
    print_table(
        "Fig. 6 — mapping trajectory, clean vs under spoofing attack",
        ["t [s]", "clean (E,N)", "attacked (E,N)", "deviation [m]"],
        rows,
    )
    print_table(
        "Detection",
        ["channel", "latency after onset [s]"],
        [
            ["Security EDDI (attack-tree root)", f"{result.eddi_latency_s:.1f}"],
            ["IMU cross-check (cumulative divergence)", f"{result.sensor_latency_s:.1f}"],
        ],
    )
    print(f"\nIDS alerts: {result.ids_alert_count}; "
          f"attack path: {' -> '.join(result.attack_path)}")
    benchmark.extra_info["max_deviation_m"] = result.max_deviation_m
    benchmark.extra_info["eddi_latency_s"] = result.eddi_latency_s

    assert result.max_deviation_m > 30.0
    assert result.eddi_latency_s <= 2.0
