"""Bench: observability overhead on the Fig. 5 battery experiment.

Three variants of the same deterministic run:

``baseline``
    Obs call sites stripped (a bare ``RosBus.publish`` without the
    metric hooks is monkeypatched in — the hottest instrumented path).
``disabled``
    The shipped code with the global obs session off (the default).
``enabled``
    Full tracing: spans, events, and metrics recorded in an isolated
    session.

The contract asserted here is the one the instrumentation was designed
around: disabled-mode cost must be within 5% of the uninstrumented
baseline. The enabled-mode cost is reported (not asserted) so regressions
are visible in the bench log.
"""

import time

from conftest import print_table, run_once

from repro import obs
from repro.experiments import run_fig5_battery_experiment
from repro.middleware.rosbus import Message, RosBus

REPEATS = 3


def _bare_publish(self, topic, data, sender, origin=None, stamp=None):
    """``RosBus.publish`` with every observability call site stripped."""
    message = Message(
        topic=topic,
        data=data,
        sender=sender,
        origin=origin if origin is not None else sender,
        seq=next(self._seq),
        stamp=stamp if stamp is not None else self.clock,
    )
    for interceptor in self._interceptors:
        replaced = interceptor(message)
        if replaced is None:
            return None
        message = replaced
    self.traffic.record(message)
    for sub in list(self._subs.get(topic, ())):
        if sub.active:
            sub.callback(message)
    return message


def _best_of(fn, repeats=REPEATS):
    """Minimum wall time over ``repeats`` runs (noise-resistant)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_obs_overhead_fig5(benchmark, monkeypatch):
    obs.reset()
    run_fig5_battery_experiment()  # warm-up: imports and allocator caches

    def enabled_run():
        with obs.isolated(enabled=True):
            run_fig5_battery_experiment()

    disabled_s = _best_of(run_fig5_battery_experiment)
    enabled_s = _best_of(enabled_run)
    with monkeypatch.context() as patch:
        patch.setattr(RosBus, "publish", _bare_publish)
        baseline_s = _best_of(run_fig5_battery_experiment)

    disabled_pct = 100.0 * (disabled_s / baseline_s - 1.0)
    enabled_pct = 100.0 * (enabled_s / baseline_s - 1.0)
    print_table(
        "Observability overhead — Fig. 5 run (best of "
        f"{REPEATS})",
        ["variant", "wall [s]", "vs baseline"],
        [
            ["uninstrumented baseline", f"{baseline_s:.3f}", "--"],
            ["obs disabled (default)", f"{disabled_s:.3f}",
             f"{disabled_pct:+.1f}%"],
            ["obs enabled (tracing)", f"{enabled_s:.3f}",
             f"{enabled_pct:+.1f}%"],
        ],
    )
    benchmark.extra_info["baseline_s"] = round(baseline_s, 4)
    benchmark.extra_info["disabled_s"] = round(disabled_s, 4)
    benchmark.extra_info["enabled_s"] = round(enabled_s, 4)
    benchmark.extra_info["disabled_overhead_pct"] = round(disabled_pct, 2)
    benchmark.extra_info["enabled_overhead_pct"] = round(enabled_pct, 2)

    run_once(benchmark, run_fig5_battery_experiment)

    # The tentpole contract: instrumentation costs ~nothing when off.
    assert disabled_s <= baseline_s * 1.05, (
        f"obs-disabled run {disabled_s:.3f}s exceeds 5% over "
        f"uninstrumented baseline {baseline_s:.3f}s"
    )
