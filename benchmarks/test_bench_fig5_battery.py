"""Bench: regenerate Fig. 5 (battery-fault probability of failure) and the
availability headline (91% with SESAME vs 80% without, ~11% completion
improvement)."""

from conftest import print_table, run_once

from repro.experiments import run_fig5_battery_experiment


def test_fig5_probability_of_failure(benchmark):
    result = run_once(benchmark, run_fig5_battery_experiment)

    # The Fig. 5 curve: PoF over time for the SESAME-monitored UAV.
    trace = result.with_sesame
    rows = []
    for target in (100, 200, 250, 300, 350, 400, 450, 500, 510):
        idx = min(range(len(trace.times)), key=lambda i: abs(trace.times[i] - target))
        rows.append(
            [f"{trace.times[idx]:.0f}", f"{trace.pof[idx]:.3f}", f"{trace.soc[idx]:.2f}",
             f"{trace.temp_c[idx]:.0f}", trace.mode[idx]]
        )
    print_table(
        "Fig. 5 — probability of failure (with SESAME)",
        ["t [s]", "PoF", "SoC", "temp [C]", "mode"],
        rows,
    )
    print_table(
        "Availability (paper: 91% vs 80%, ~11% completion improvement)",
        ["metric", "with SESAME", "without"],
        [
            ["availability", f"{result.availability_with:.3f}",
             f"{result.availability_without:.3f}"],
            ["mission complete [s]",
             f"{result.with_sesame.mission_complete_time:.0f}",
             f"{result.without_sesame.mission_complete_time:.0f}"],
            ["available again [s]",
             f"{result.with_sesame.available_again_time:.0f}",
             f"{result.without_sesame.available_again_time:.0f}"],
        ],
    )
    print(
        f"\nPoF threshold 0.9 crossed at "
        f"{result.with_sesame.threshold_crossing_time:.0f} s (paper: ~510 s); "
        f"completion improvement {100 * result.completion_improvement:.1f}%"
    )
    benchmark.extra_info["availability_with"] = result.availability_with
    benchmark.extra_info["availability_without"] = result.availability_without
    benchmark.extra_info["completion_improvement"] = result.completion_improvement

    assert result.availability_with > result.availability_without
    assert result.with_sesame.threshold_crossing_time is not None
