"""Fig. 5 scenario: battery fault, SafeDrones monitoring, availability.

Reproduces the paper's Sec. V-A experiment: one UAV's battery collapses
from 80% to 40% SoC at t=250 s due to a thermal fault. Without SESAME the
UAV aborts immediately and pays return / swap / transit overhead; with
SESAME the SafeDrones Markov monitor lets it finish the mission first.
Prints the probability-of-failure curve (ASCII) and the availability
comparison.

Run:  python examples/battery_failure_availability.py
"""

from repro.experiments import run_fig5_battery_experiment


def ascii_curve(times, values, width=72, height=12, threshold=0.9):
    """Render a single series as a crude ASCII plot with a threshold line."""
    if not times:
        return "(no data)"
    t_max = times[-1]
    grid = [[" "] * width for _ in range(height)]
    for t, v in zip(times, values):
        col = min(width - 1, int(t / t_max * (width - 1)))
        row = min(height - 1, int((1.0 - v) * (height - 1)))
        grid[row][col] = "*"
    threshold_row = min(height - 1, int((1.0 - threshold) * (height - 1)))
    for col in range(width):
        if grid[threshold_row][col] == " ":
            grid[threshold_row][col] = "-"
    lines = ["".join(row) for row in grid]
    lines.append(f"0s{' ' * (width - 8)}{t_max:.0f}s")
    return "\n".join(lines)


def main() -> None:
    result = run_fig5_battery_experiment()
    trace = result.with_sesame

    print("Probability of failure (with SESAME), '-' marks the 0.9 threshold:")
    print(ascii_curve(trace.times, trace.pof))
    print()
    print(f"nominal mission duration:     {result.nominal_mission_s:.0f} s")
    print(f"battery fault injected at:    250 s (SoC 80% -> 40%)")
    crossing = trace.threshold_crossing_time
    print(f"PoF threshold (0.9) crossed:  {crossing:.0f} s" if crossing else "never")
    print()
    header = f"{'metric':<28} {'with SESAME':>14} {'without':>14}"
    print(header)
    print("-" * len(header))
    for name, with_value, without_value in result.summary_rows():
        print(f"{name:<28} {with_value:>14.3f} {without_value:>14.3f}")
    print()
    print(
        f"availability improvement:     "
        f"{100 * result.availability_improvement:.1f} percentage points "
        f"(paper: ~11)"
    )
    print(
        f"completion time improvement:  {100 * result.completion_improvement:.1f}% "
        f"(paper: ~11%)"
    )


if __name__ == "__main__":
    main()
