"""Quickstart: a three-UAV SAR mission through the public API.

Builds the simulated world, connects the fleet to the multi-UAV control
platform, launches the built-in SAR coverage service, and prints the
mission metrics plus the platform status panels — the minimal end-to-end
tour of the library.

Run:  python examples/quickstart.py
"""

from repro.experiments.common import build_three_uav_world
from repro.platform.database import DatabaseManager
from repro.platform.gui import render_fleet_status
from repro.platform.task_manager import TaskManager
from repro.platform.uav_manager import UavManager
from repro.sar.mission import SarMission


def main() -> None:
    # 1. A world with three UAVs and eight persons awaiting rescue.
    scenario = build_three_uav_world(seed=42, n_persons=8)
    world = scenario.world

    # 2. Wire the control platform: database, UAV manager, task manager.
    database = DatabaseManager()
    uav_manager = UavManager(bus=world.bus, database=database)
    for uav in world.uavs.values():
        uav_manager.connect(uav)
    task_manager = TaskManager(uav_manager=uav_manager)
    print("Available platform services:", task_manager.available_services())

    # 3. Launch the SAR coverage task at 20 m survey altitude.
    assignment = task_manager.execute(
        "sar_coverage", {"area_size_m": world.area_size_m, "altitude_m": 20.0}
    )
    for uav_id, info in sorted(assignment["assignments"].items()):
        print(f"  {uav_id}: strip {info['bounds'][0]}, {info['waypoints']} waypoints")

    # 4. Step the mission to completion.
    mission = SarMission(world=world, altitude_m=20.0)
    mission.metrics.started_at = world.time
    while not mission.mission_complete and world.time < 1500.0:
        mission.step()

    # 5. Report.
    metrics = mission.metrics
    print()
    print(render_fleet_status(uav_manager.fleet_status()))
    print()
    print(f"mission time:        {metrics.completed_at:.0f} s")
    print(f"persons found:       {metrics.persons_found}/{metrics.persons_total}")
    print(f"area coverage:       {100 * metrics.coverage_fraction:.0f}%")
    print(f"detection accuracy:  {100 * metrics.detection_accuracy:.1f}%")


if __name__ == "__main__":
    main()
