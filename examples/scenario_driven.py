"""Scenario-driven experiment: declarative config + standard EDDI wiring.

Shows the adoption-path API: describe the whole experiment (fleet,
environment, faults, attack) as one JSON document, load it with
``load_scenario``, attach the full Fig. 1 assurance stack to every UAV
with one ``build_fleet_eddis`` call, and read the guarantee timelines
afterwards.

Run:  python examples/scenario_driven.py
"""

import json

from repro.core.adapters import build_fleet_eddis
from repro.core.decider import MissionDecider
from repro.platform.gui import render_guarantee_timeline, render_mission_panel
from repro.sar.coverage import boustrophedon_path, partition_area
from repro.scenario import load_scenario_json

SCENARIO = """
{
  "seed": 11,
  "area_size_m": [360, 240],
  "persons": 5,
  "environment": {"wind_mean_mps": 4.0, "wind_direction_deg": 250,
                  "ambient_c": 28, "visibility": "good"},
  "uavs": [
    {"id": "uav1", "base": [30, -20, 0], "rotors": 4},
    {"id": "uav2", "base": [180, -20, 0], "rotors": 6},
    {"id": "uav3", "base": [330, -20, 0], "rotors": 4}
  ],
  "faults": [
    {"type": "gps_denial", "uav": "uav2", "at": 60, "duration": 40},
    {"type": "battery_collapse", "uav": "uav1", "at": 90, "soc_drop_to": 0.25},
    {"type": "camera_degradation", "uav": "uav3", "at": 50, "rate": 0.01}
  ],
  "attacks": [
    {"type": "ros_spoofing", "topic": "/uav3/pose", "sender": "uav3",
     "start": 120, "stop": 160, "rate_hz": 4}
  ]
}
"""


def main() -> None:
    scenario = load_scenario_json(SCENARIO)
    world = scenario.world
    print(
        f"scenario loaded: {len(world.uavs)} UAVs, "
        f"{len(world.persons)} persons, {len(scenario.faults.faults)} faults, "
        f"{len(world.attackers)} attack(s)\n"
    )

    # One call wires the whole Fig. 1 monitor stack per UAV.
    fleet = build_fleet_eddis(world, cl_range_m=200.0)
    decider = MissionDecider()
    for eddi, stack in fleet.values():
        decider.add_uav(stack.network)

    # Launch the coverage mission.
    strips = partition_area(world.area_size_m, len(world.uavs))
    for (uav_id, uav), bounds in zip(sorted(world.uavs.items()), strips):
        uav.start_mission(boustrophedon_path(bounds, 20.0))

    while world.time < 240.0:
        scenario.step()
        for eddi, _ in fleet.values():
            eddi.step(world.time)

    print("fault campaign log:")
    for stamp, name, state in scenario.faults.log:
        print(f"  t={stamp:6.1f}s  {name} {state}")
    print()

    for uav_id in sorted(fleet):
        eddi, _ = fleet[uav_id]
        print(render_guarantee_timeline(eddi))
        print()

    print(render_mission_panel(decider.decide()))


if __name__ == "__main__":
    main()
