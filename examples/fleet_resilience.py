"""Fleet resilience: battery failure, redistribution, holistic assessment.

The full mission-level story of the paper's Fig. 1: a three-UAV coverage
mission in wind; one UAV's battery degrades; SafeDrones demotes its
reliability; the mission decider rules "task redistribution needed"; the
task redistributor hands the dropped UAV's remaining coverage to the
peers with spare capacity; the mission completes. Along the way, the
safety-security co-engineering monitor fuses the Safety and Security EDDI
views, the flight recorder captures KPIs, and the web API renders the
dashboard payload.

Run:  python examples/fleet_resilience.py
"""

import numpy as np

from repro.core.coengineering import CoEngineeringMonitor
from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.uav_network import UavConSertNetwork
from repro.experiments.common import build_three_uav_world
from repro.platform.api import WebApi
from repro.platform.database import DatabaseManager
from repro.platform.gui import render_mission_panel
from repro.platform.recorder import FlightRecorder
from repro.platform.uav_manager import UavManager
from repro.safedrones.monitor import SafeDronesMonitor
from repro.sar.mission import SarMission
from repro.sar.redistribution import TaskRedistributor
from repro.security.attack_trees import ros_spoofing_attack_tree
from repro.security.broker import MqttBroker
from repro.security.eddi import SecurityEddi
from repro.uav.battery import BatteryFault
from repro.uav.environment import Environment
from repro.uav.uav import FlightMode


def main() -> None:
    scenario = build_three_uav_world(seed=21, n_persons=6)
    world = scenario.world
    world.environment = Environment(
        rng=np.random.default_rng(99), wind_direction_deg=250.0
    )

    # Platform services.
    manager = UavManager(bus=world.bus, database=DatabaseManager())
    recorder = FlightRecorder(bus=world.bus)
    for uav in world.uavs.values():
        manager.connect(uav)
        recorder.watch(uav.spec.uav_id)
    api = WebApi(uav_manager=manager, recorder=recorder)

    # Assurance layer: ConSert networks + monitors per UAV.
    decider = MissionDecider()
    networks, monitors, co_monitors = {}, {}, {}
    broker = MqttBroker()
    for uav_id in world.uavs:
        network = UavConSertNetwork(uav_id=uav_id)
        network.set_reliability_level("high")
        decider.add_uav(network)
        networks[uav_id] = network
        monitors[uav_id] = SafeDronesMonitor(uav_id=uav_id)
        co_monitors[uav_id] = CoEngineeringMonitor(
            safety=monitors[uav_id],
            security=SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker),
        )

    # The mission, with a battery fault scheduled on uav1.
    mission = SarMission(world=world, altitude_m=20.0)
    mission.assign_paths()
    world.uavs["uav1"].battery.inject_fault(
        BatteryFault(at_time=60.0, soc_drop_to=0.20)
    )
    print("mission launched; battery fault scheduled on uav1 at t=60 s\n")

    redistributed = False
    while not mission.mission_complete and world.time < 2500.0:
        mission.step()
        now = world.time
        for uav_id, uav in world.uavs.items():
            assessment = monitors[uav_id].update(
                now, uav.battery.soc, uav.battery.temp_c
            )
            networks[uav_id].set_reliability_level(assessment.level.value)
        if int(now * 2) % 20 == 0:  # decide every ~10 s
            decision = decider.decide()
            if decision.verdict is MissionVerdict.REDISTRIBUTE and not redistributed:
                redistributed = True
                dropped_id = decision.dropped_uavs[0]
                dropped = world.uavs[dropped_id]
                takeover = [world.uavs[u] for u in decision.takeover_uavs]
                print(f"t={now:.0f}s  decider: {decision.verdict.value}")
                print(render_mission_panel(decision))
                dropped.command_mode(FlightMode.RETURN_TO_BASE)
                assignments = TaskRedistributor().execute(dropped, takeover)
                for assignment in assignments:
                    print(
                        f"  {assignment.from_uav} -> {assignment.to_uav}: "
                        f"{len(assignment.waypoints)} waypoints "
                        f"(+{assignment.added_path_length_m:.0f} m)"
                    )
                print()

    print(f"mission complete at t={world.time:.0f}s")
    print(f"persons found: {mission.metrics.persons_found}/{mission.metrics.persons_total}")
    print(f"coverage: {100 * mission.metrics.coverage_fraction:.0f}%\n")

    print("holistic dependability (safety-security co-engineering):")
    for uav_id, monitor in sorted(co_monitors.items()):
        assessment = monitor.assess(world.time)
        print(
            f"  {uav_id}: {assessment.level.value} "
            f"(reliability {assessment.reliability_level.value}, "
            f"combined PoF {assessment.combined_failure_probability:.3f})"
        )

    print("\npost-flight KPIs:")
    for uav_id in sorted(world.uavs):
        kpis = recorder.kpis(uav_id)
        print(
            f"  {uav_id}: {kpis.flight_time_s:.0f} s, {kpis.distance_m:.0f} m, "
            f"energy {100 * kpis.energy_used_fraction:.0f}%, "
            f"min SoC {100 * kpis.min_battery_soc:.0f}%"
        )

    dashboard = api.dashboard()
    print(f"\nweb dashboard payload: {len(dashboard)} bytes of JSON")


if __name__ == "__main__":
    main()
