"""Sec. V-B scenario: uncertainty-aware altitude adaptation for SAR accuracy.

Shows the SafeML + DeepKnowledge + SINADRA ensemble driving the descend
decision: scanning from 40 m the ensemble uncertainty exceeds the 90%
threshold, ConSerts command a descent, and the uncertainty settles near
75% where detection accuracy reaches ~99.8%.

Run:  python examples/sar_accuracy_adaptation.py
"""

from repro.experiments import run_sar_accuracy_experiment
from repro.experiments.sar_accuracy import theoretical_accuracy_curve


def main() -> None:
    result = run_sar_accuracy_experiment()

    print("descent profile (ensemble uncertainty per altitude):")
    print(f"{'altitude':>9} {'SafeML':>8} {'DeepKnow':>9} {'ensemble':>9} {'criticality':>12}")
    for sample in result.descent_profile:
        print(
            f"{sample.altitude_m:>8.0f}m "
            f"{sample.safeml_uncertainty:>8.3f} "
            f"{sample.deepknowledge_uncertainty:>9.3f} "
            f"{sample.ensemble_uncertainty:>9.3f} "
            f"{sample.criticality.value:>12}"
        )
    print()
    print(f"uncertainty at high altitude:  {100 * result.uncertainty_high:.1f}%  (paper: >90%)")
    print(f"uncertainty after descent:     {100 * result.uncertainty_final:.1f}%  (paper: ~75%)")
    print(f"operating altitude chosen:     {result.final_altitude_m:.0f} m")
    print()
    print(f"SAR accuracy with SESAME:      {100 * result.accuracy_with_sesame:.2f}%  (paper: 99.8%)")
    print(f"SAR accuracy without SESAME:   {100 * result.accuracy_without_sesame:.2f}%")
    print()
    print(f"DeepKnowledge coverage score:  {result.dk_coverage_score:.3f}")
    print(
        "person classifier accuracy:    "
        f"{100 * result.classifier_accuracy_low:.1f}% at 20 m, "
        f"{100 * result.classifier_accuracy_high:.1f}% at 40 m"
    )
    print()
    print("theoretical detection accuracy vs altitude:")
    for altitude, accuracy in theoretical_accuracy_curve([20, 25, 30, 40, 50, 60]):
        bar = "#" * int((accuracy - 0.95) * 800) if accuracy > 0.95 else ""
        print(f"  {altitude:>3.0f} m: {100 * accuracy:6.2f}%  {bar}")


if __name__ == "__main__":
    main()
