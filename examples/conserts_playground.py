"""Interactive tour of the Fig. 1 hierarchical ConSert network.

Walks a fleet of three UAVs through a storyline of degradations —
reliability drops, a cyber attack, camera loss — and shows how each UAV's
top-level guarantee and the mission-level verdict respond. Also
demonstrates the ODE design-time/runtime round trip (DDI -> EDDI).

Run:  python examples/conserts_playground.py
"""

from repro.core.decider import MissionDecider
from repro.core.ode import OdePackage
from repro.core.uav_network import UavConSertNetwork
from repro.platform.gui import render_mission_panel
from repro.security.attack_trees import ros_spoofing_attack_tree


def show(decider: MissionDecider, title: str) -> None:
    print(f"--- {title} ---")
    print(render_mission_panel(decider.decide()))
    print()


def main() -> None:
    decider = MissionDecider()
    networks = {}
    for i in range(3):
        network = UavConSertNetwork(uav_id=f"uav{i + 1}")
        network.set_reliability_level("high")
        decider.add_uav(network)
        networks[network.uav_id] = network

    show(decider, "all UAVs healthy")

    networks["uav1"].set_reliability_level("medium")
    show(decider, "uav1 reliability degrades to MEDIUM (SafeDrones)")

    networks["uav1"].set_reliability_level("low")
    show(decider, "uav1 reliability drops to LOW -> return to base")
    print("redistribution plan:", decider.redistribution_plan())
    print()

    networks["uav1"].set_reliability_level("high")
    networks["uav2"].set_attack_detected(True)
    print(
        "uav2 under attack; its navigation ConSert now offers:",
        networks["uav2"].navigation_guarantee(),
    )
    show(decider, "uav2 under cyber attack (Security EDDI) -> collaborative nav")

    networks["uav2"].set_nearby_uavs_available(False)
    networks["uav2"].set_camera_healthy(False)
    show(decider, "uav2 attacked + isolated + camera dead -> emergency land")

    # Design-time export / runtime import (the DDI -> EDDI generation step).
    package = OdePackage(system_name="sar-fleet", metadata={"tool": "playground"})
    network = networks["uav3"]
    for consert in (
        network.security,
        network.gps_localization,
        network.vision_health,
        network.vision_localization,
        network.comm_localization,
        network.drone_detection,
        network.reliability,
        network.navigation,
        network.uav,
    ):
        package.add_consert(consert)
    package.add_attack_tree(ros_spoofing_attack_tree())
    blob = package.to_json()
    print(f"ODE package serialised: {len(blob)} bytes, "
          f"{len(package.conserts)} ConSerts, {len(package.attack_trees)} attack tree(s)")
    rebuilt = OdePackage.from_json(blob).instantiate_conserts()
    print(f"rebuilt executable ConSerts: {sorted(rebuilt)}")


if __name__ == "__main__":
    main()
