"""The full security response chain: Fig. 6 detection + Fig. 7 mitigation.

Flies the area-mapping mission under a ROS message spoofing attack,
shows the trajectory deviation and both detection channels (Security EDDI
over IDS alerts; IMU cross-check), then runs the Collaborative
Localization guided landing that brings the GPS-denied UAV down on the
designated point.

Run:  python examples/spoofing_attack_response.py
"""

from repro.experiments import (
    run_fig6_spoofing_experiment,
    run_fig7_collaborative_landing,
)


def main() -> None:
    print("=== Fig. 6: spoofing attack on area mapping ===")
    fig6 = run_fig6_spoofing_experiment()
    print(f"attack starts:                 t={fig6.attack_start_s:.0f} s")
    print(f"max trajectory deviation:      {fig6.max_deviation_m:.1f} m")
    print(f"IDS alerts raised:             {fig6.ids_alert_count}")
    print(f"Security EDDI detection:       +{fig6.eddi_latency_s:.1f} s after onset")
    print(f"IMU cross-check detection:     +{fig6.sensor_latency_s:.1f} s after onset")
    print(f"attack path traced:            {' -> '.join(fig6.attack_path)}")

    # Deviation profile at a few checkpoints.
    print("\ntrajectory deviation over time:")
    for target in (30.0, 60.0, 90.0, 120.0, 180.0, 230.0):
        idx = min(range(len(fig6.times)), key=lambda i: abs(fig6.times[i] - target))
        bar = "#" * int(fig6.deviation_m[idx] / 2.0)
        print(f"  t={fig6.times[idx]:6.1f}s  {fig6.deviation_m[idx]:6.1f} m  {bar}")

    print("\n=== Fig. 7: collaborative localization safe landing ===")
    fig7 = run_fig7_collaborative_landing()
    report = fig7.cl_report
    print(f"GPS available to spoofed UAV:  none (denied)")
    print(f"collaborator sightings:        {fig7.n_sightings}")
    print(f"mean CL estimate error:        {fig7.mean_estimate_error_m:.2f} m")
    print(f"mean CL sigma:                 {report.mean_cl_sigma_m:.2f} m "
          f"(ConSert bound: < 0.75 m)")
    print(f"landed:                        {report.landed}")
    print(f"landing error vs target:       {report.final_error_m:.2f} m")
    print(f"dead-reckoning baseline error: {fig7.baseline_error_m:.2f} m")
    print(f"landing duration:              {report.duration_s:.1f} s")


if __name__ == "__main__":
    main()
