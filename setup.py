"""Setuptools shim.

Allows ``python setup.py develop`` / legacy editable installs in offline
environments without the ``wheel`` package; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
