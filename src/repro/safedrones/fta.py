"""Fault-tree analysis with complex basic events.

SafeDrones "introduces the concept of complex basic event in Fault Tree
Analysis" (Sec. III-A1, citing Kabir et al., IMBSA 2019): a fault-tree
leaf whose probability is not a constant but the output of a dynamic model
(here: a Markov chain or any object exposing ``failure_probability``).
The tree is evaluated bottom-up under the usual independence assumption,
with exact k-out-of-n combination via dynamic programming.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Protocol, Union


class FailureModel(Protocol):
    """Anything exposing a current probability of failure."""

    @property
    def failure_probability(self) -> float: ...


Node = Union["BasicEvent", "ComplexBasicEvent", "AndGate", "OrGate", "KooNGate"]


@dataclass
class BasicEvent:
    """A leaf with a fixed (or externally updated) failure probability."""

    name: str
    probability: float = 0.0

    def evaluate(self) -> float:
        """Return the leaf probability, validating its range."""
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"{self.name}: probability {self.probability} out of range")
        return self.probability


@dataclass
class ComplexBasicEvent:
    """A leaf backed by a dynamic failure model (Markov chain, hazard model).

    The probability is read lazily from ``model.failure_probability`` each
    evaluation, so the tree always reflects the latest runtime update.
    """

    name: str
    model: FailureModel

    def evaluate(self) -> float:
        """Read the current probability from the backing model."""
        p = float(self.model.failure_probability)
        if not 0.0 <= p <= 1.0 + 1e-9:
            raise ValueError(f"{self.name}: model probability {p} out of range")
        return min(p, 1.0)


@dataclass
class AndGate:
    """Output fails only if *all* children fail (independence assumed)."""

    name: str
    children: list[Node] = field(default_factory=list)

    def evaluate(self) -> float:
        """Product of child probabilities."""
        p = 1.0
        for child in self.children:
            p *= child.evaluate()
        return p


@dataclass
class OrGate:
    """Output fails if *any* child fails (independence assumed)."""

    name: str
    children: list[Node] = field(default_factory=list)

    def evaluate(self) -> float:
        """Complement-product of child survival probabilities."""
        survive = 1.0
        for child in self.children:
            survive *= 1.0 - child.evaluate()
        return 1.0 - survive


@dataclass
class KooNGate:
    """Fails when at least ``k`` of the ``n`` children have failed.

    Exact evaluation by dynamic programming over the distribution of the
    number of failed children (children independent, possibly heterogeneous
    probabilities) — O(n^2), no 2^n enumeration.
    """

    name: str
    k: int
    children: list[Node] = field(default_factory=list)

    def evaluate(self) -> float:
        """P[at least k children failed]."""
        n = len(self.children)
        if not 1 <= self.k <= n:
            raise ValueError(f"{self.name}: k={self.k} invalid for n={n}")
        probs = [child.evaluate() for child in self.children]
        # dist[j] = P[exactly j failures among children processed so far]
        dist = [1.0] + [0.0] * n
        for p in probs:
            new = [0.0] * (n + 1)
            for j, mass in enumerate(dist):
                if mass == 0.0:
                    continue
                new[j] += mass * (1.0 - p)
                new[j + 1] += mass * p
            dist = new
        return float(sum(dist[self.k :]))


@dataclass
class FaultTree:
    """A named fault tree with a single top event."""

    name: str
    top: Node

    def top_event_probability(self) -> float:
        """Evaluate the tree bottom-up and return the top-event probability."""
        return self.top.evaluate()

    def leaves(self) -> list[Node]:
        """All basic / complex basic events in the tree, in traversal order."""
        found: list[Node] = []

        def walk(node: Node) -> None:
            children = getattr(node, "children", None)
            if children is None:
                found.append(node)
            else:
                for child in children:
                    walk(child)

        walk(self.top)
        return found

    def minimal_cut_sets(self) -> list[frozenset[str]]:
        """Minimal cut sets by qualitative expansion (small trees only).

        KooN gates expand to the OR of all k-subsets ANDed. Intended for
        design-time inspection of the UAV tree, not for large industrial
        models.
        """

        def expand(node: Node) -> list[frozenset[str]]:
            if isinstance(node, (BasicEvent, ComplexBasicEvent)):
                return [frozenset({node.name})]
            if isinstance(node, OrGate):
                out: list[frozenset[str]] = []
                for child in node.children:
                    out.extend(expand(child))
                return out
            if isinstance(node, AndGate):
                parts = [expand(child) for child in node.children]
                out = [frozenset()]
                for part in parts:
                    out = [a | b for a in out for b in part]
                return out
            if isinstance(node, KooNGate):
                out = []
                for combo in itertools.combinations(node.children, node.k):
                    parts = [expand(child) for child in combo]
                    sets = [frozenset()]
                    for part in parts:
                        sets = [a | b for a in sets for b in part]
                    out.extend(sets)
                return out
            raise TypeError(f"unknown node type {type(node)!r}")

        cut_sets = expand(self.top)
        minimal: list[frozenset[str]] = []
        for cs in sorted(set(cut_sets), key=len):
            if not any(existing <= cs for existing in minimal):
                minimal.append(cs)
        return minimal
