"""SafeDrones runtime monitor: telemetry in, reliability guarantees out.

Composes the propulsion, battery, and processor models under a UAV-loss
fault tree and maps the live probability of failure to the three-level
guarantee vocabulary the Fig. 1 ConSert consumes (High / Medium / Low
reliability). Also detects the battery cell-fault signature (sharp SoC
collapse) that the Fig. 5 scenario injects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.safedrones.battery import BatteryReliabilityModel
from repro.safedrones.fta import ComplexBasicEvent, FaultTree, OrGate
from repro.safedrones.processor import ProcessorReliabilityModel
from repro.safedrones.propulsion import PropulsionModel


class ReliabilityLevel(enum.Enum):
    """Guarantee levels offered to the ConSert layer (Fig. 1)."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @classmethod
    def from_failure_probability(
        cls, pof: float, medium_at: float = 0.2, low_at: float = 0.6
    ) -> "ReliabilityLevel":
        """Map a probability of failure to a guarantee level."""
        if not 0.0 <= pof <= 1.0:
            raise ValueError(f"probability of failure out of range: {pof}")
        if pof < medium_at:
            return cls.HIGH
        if pof < low_at:
            return cls.MEDIUM
        return cls.LOW


@dataclass(frozen=True)
class ReliabilityAssessment:
    """One SafeDrones output sample."""

    stamp: float
    failure_probability: float
    battery_pof: float
    propulsion_pof: float
    processor_pof: float
    level: ReliabilityLevel
    battery_fault_detected: bool
    abort_recommended: bool


@dataclass
class SafeDronesMonitor:
    """Per-UAV runtime reliability monitor.

    ``pof_abort_threshold`` is the paper's predefined failure-probability
    threshold (0.9 in the Fig. 5 experiment): below it, SafeDrones lets the
    mission continue even after a diagnosed battery fault; at or above it,
    it recommends aborting (emergency landing).
    """

    uav_id: str
    rotor_count: int = 4
    pof_abort_threshold: float = 0.9
    mission_horizon_s: float = 600.0
    soc_collapse_threshold: float = 0.15
    battery: BatteryReliabilityModel = field(default_factory=BatteryReliabilityModel)
    processor: ProcessorReliabilityModel = field(
        default_factory=ProcessorReliabilityModel
    )
    propulsion: PropulsionModel = None  # type: ignore[assignment]
    _last_soc: float | None = field(default=None, repr=False)
    battery_fault_detected: bool = False
    history: list[ReliabilityAssessment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.propulsion is None:
            self.propulsion = PropulsionModel(rotor_count=self.rotor_count)
        loss_tree = OrGate(
            name="uav_loss",
            children=[
                ComplexBasicEvent("battery_failure", self.battery),
                ComplexBasicEvent("processor_failure", _SnapshotModel(self)),
            ],
        )
        self.fault_tree = FaultTree(name=f"{self.uav_id}_loss", top=loss_tree)

    # -------------------------------------------------------------- update
    def update(
        self,
        now: float,
        soc: float,
        battery_temp_c: float,
        motors_failed: int | None = None,
    ) -> ReliabilityAssessment:
        """Feed one telemetry sample; returns the current assessment.

        ``motors_failed`` (when reported) syncs the propulsion Markov
        model with the flight controller's observed motor state.
        """
        if motors_failed is not None:
            while self.propulsion.motors_failed < motors_failed:
                self.propulsion.record_motor_failure()
        if (
            self._last_soc is not None
            and not self.battery_fault_detected
            and self._last_soc - soc >= self.soc_collapse_threshold
        ):
            # Sharp SoC collapse between consecutive samples: diagnosed
            # cell-group fault (the Fig. 5 80% -> 40% drop).
            self.battery_fault_detected = True
            self.battery.register_cell_fault()
        self._last_soc = soc

        battery_pof = self.battery.update(now, soc, battery_temp_c)
        # Junction temperature tracks battery bay temperature plus load rise.
        processor_pof = self.processor.update(now, battery_temp_c + 15.0)
        propulsion_pof = self.propulsion.failure_probability(self.mission_horizon_s)
        self._propulsion_snapshot = propulsion_pof

        total_pof = self.fault_tree.top_event_probability()
        # Fold the propulsion mission-horizon risk in as an OR term.
        total_pof = 1.0 - (1.0 - total_pof) * (1.0 - propulsion_pof)
        assessment = ReliabilityAssessment(
            stamp=now,
            failure_probability=total_pof,
            battery_pof=battery_pof,
            propulsion_pof=propulsion_pof,
            processor_pof=processor_pof,
            level=ReliabilityLevel.from_failure_probability(total_pof),
            battery_fault_detected=self.battery_fault_detected,
            abort_recommended=total_pof >= self.pof_abort_threshold,
        )
        self.history.append(assessment)
        return assessment

    @property
    def latest(self) -> ReliabilityAssessment | None:
        """The most recent assessment, or None before the first update."""
        return self.history[-1] if self.history else None


@dataclass
class _SnapshotModel:
    """Adapter exposing the monitor's processor PoF to the fault tree."""

    monitor: "SafeDronesMonitor"

    @property
    def failure_probability(self) -> float:
        return self.monitor.processor.failure_probability
