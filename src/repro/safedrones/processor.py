"""Companion-computer (processor) reliability model.

SafeDrones "includes the estimation of the probability of failure, taking
into account various components such as the battery, processor, and UAV
rotors" (Sec. III-A1), citing the nanoscale-dependability survey [31] for
the processor part. We model the onboard Jetson-class SoC with a
soft-error (SER) component and a temperature-accelerated permanent-fault
component, both exponential, combined in series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.safedrones.battery import BOLTZMANN_EV


@dataclass
class ProcessorReliabilityModel:
    """Exponential SoC failure model with thermal acceleration.

    ``ser_rate_per_hour`` covers transient upsets that crash the autonomy
    stack (requiring reboot mid-flight); ``wearout_rate_per_hour`` covers
    permanent faults, accelerated by junction temperature via Arrhenius.
    """

    ser_rate_per_hour: float = 2e-4
    wearout_rate_per_hour: float = 5e-5
    activation_energy_ev: float = 0.5
    reference_temp_c: float = 45.0
    accumulated_hazard: float = 0.0
    last_time: float | None = None

    def thermal_factor(self, junction_temp_c: float) -> float:
        """Arrhenius acceleration of the wear-out rate."""
        t_ref = self.reference_temp_c + 273.15
        t = junction_temp_c + 273.15
        return math.exp(
            (self.activation_energy_ev / BOLTZMANN_EV) * (1.0 / t_ref - 1.0 / t)
        )

    def hazard_rate_per_s(self, junction_temp_c: float) -> float:
        """Total instantaneous failure rate at the given junction temp."""
        wearout = self.wearout_rate_per_hour * self.thermal_factor(junction_temp_c)
        return (self.ser_rate_per_hour + wearout) / 3600.0

    def update(self, now: float, junction_temp_c: float) -> float:
        """Accumulate hazard up to ``now``; returns failure probability."""
        if self.last_time is None:
            self.last_time = now
            return self.failure_probability
        dt = now - self.last_time
        if dt < 0.0:
            raise ValueError("time went backwards")
        self.last_time = now
        self.accumulated_hazard += self.hazard_rate_per_s(junction_temp_c) * dt
        return self.failure_probability

    @property
    def failure_probability(self) -> float:
        """PoF under the accumulated (non-homogeneous) exponential hazard."""
        return 1.0 - math.exp(-self.accumulated_hazard)

    @property
    def reliability(self) -> float:
        """1 - probability of failure."""
        return math.exp(-self.accumulated_hazard)

    def mission_reliability(self, duration_s: float, junction_temp_c: float) -> float:
        """Predicted reliability over a mission at constant temperature."""
        return math.exp(-self.hazard_rate_per_s(junction_temp_c) * duration_s)
