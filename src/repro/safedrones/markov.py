"""Continuous-time Markov chain engine for reliability models.

SafeDrones expresses component degradation as CTMCs whose absorbing states
are failures. This module provides the generic machinery: generator-matrix
validation, transient probability via the matrix exponential, absorbing
failure probability, and mean time to failure via the fundamental matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import expm


class MarkovModelError(ValueError):
    """Raised when a chain definition is structurally invalid."""


@dataclass
class ContinuousMarkovChain:
    """A CTMC over named states with generator matrix ``q``.

    ``q[i, j]`` (i != j) is the transition rate from state i to state j in
    events per second; diagonal entries are set so each row sums to zero.
    ``absorbing`` names the failure states.
    """

    states: list[str]
    q: np.ndarray
    absorbing: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=float)
        n = len(self.states)
        if self.q.shape != (n, n):
            raise MarkovModelError(
                f"generator is {self.q.shape}, expected ({n}, {n})"
            )
        if len(set(self.states)) != n:
            raise MarkovModelError("state names must be unique")
        off_diag = self.q - np.diag(np.diag(self.q))
        if (off_diag < -1e-12).any():
            raise MarkovModelError("off-diagonal rates must be non-negative")
        # Normalise the diagonal so rows sum to zero exactly.
        np.fill_diagonal(self.q, 0.0)
        np.fill_diagonal(self.q, -self.q.sum(axis=1))
        unknown = self.absorbing - set(self.states)
        if unknown:
            raise MarkovModelError(f"unknown absorbing states: {sorted(unknown)}")
        for name in self.absorbing:
            i = self.index(name)
            if np.abs(self.q[i]).max() > 1e-12:
                raise MarkovModelError(f"absorbing state {name!r} has outgoing rate")

    def index(self, state: str) -> int:
        """Index of a state name."""
        return self.states.index(state)

    def transient(self, p0: np.ndarray, t: float) -> np.ndarray:
        """State distribution after ``t`` seconds from distribution ``p0``."""
        p0 = np.asarray(p0, dtype=float)
        if p0.shape != (len(self.states),):
            raise MarkovModelError("p0 has wrong length")
        if not np.isclose(p0.sum(), 1.0, atol=1e-9):
            raise MarkovModelError("p0 must sum to 1")
        if t < 0.0:
            raise MarkovModelError("t must be non-negative")
        pt = p0 @ expm(self.q * t)
        # expm loses precision on nearly-defective generators (two stage
        # rates almost equal -> near-Jordan structure). The result must
        # still be a distribution: clip tiny negatives and renormalise,
        # refusing only genuinely broken results.
        pt = np.clip(pt, 0.0, None)
        total = pt.sum()
        if not 0.97 <= total <= 1.03:
            raise MarkovModelError(
                f"transient solve lost normalisation (sum={total:.6f})"
            )
        return pt / total

    def transient_from(self, state: str, t: float) -> np.ndarray:
        """State distribution after ``t`` seconds starting surely in ``state``."""
        p0 = np.zeros(len(self.states))
        p0[self.index(state)] = 1.0
        return self.transient(p0, t)

    def failure_probability(self, p0: np.ndarray, t: float) -> float:
        """Total probability mass in absorbing states after ``t`` seconds."""
        pt = self.transient(p0, t)
        return float(sum(pt[self.index(s)] for s in self.absorbing))

    def reliability(self, p0: np.ndarray, t: float) -> float:
        """1 - failure probability at time ``t``."""
        return 1.0 - self.failure_probability(p0, t)

    def mttf(self, start: str) -> float:
        """Mean time to absorption starting from ``start``.

        Uses the fundamental matrix of the transient sub-generator:
        ``MTTF = -1 * (Q_tt^{-1} @ 1)`` restricted to transient states.
        """
        transient_idx = [i for i, s in enumerate(self.states) if s not in self.absorbing]
        if self.index(start) not in transient_idx:
            return 0.0
        q_tt = self.q[np.ix_(transient_idx, transient_idx)]
        ones = np.ones(len(transient_idx))
        times = np.linalg.solve(q_tt, -ones)
        return float(times[transient_idx.index(self.index(start))])

    def scaled(self, factor: float) -> "ContinuousMarkovChain":
        """A copy of this chain with all rates multiplied by ``factor``.

        Used for stress acceleration: e.g. thermal stress multiplies battery
        degradation rates by an Arrhenius factor.
        """
        if factor < 0.0:
            raise MarkovModelError("rate factor must be non-negative")
        return ContinuousMarkovChain(
            states=list(self.states), q=self.q * factor, absorbing=self.absorbing
        )


def series_reliability(reliabilities: list[float]) -> float:
    """Reliability of independent components in series (all must survive)."""
    out = 1.0
    for r in reliabilities:
        if not 0.0 <= r <= 1.0 + 1e-12:
            raise ValueError(f"reliability out of range: {r}")
        out *= min(r, 1.0)
    return out


def parallel_reliability(reliabilities: list[float]) -> float:
    """Reliability of independent components in parallel (any may survive)."""
    out = 1.0
    for r in reliabilities:
        if not 0.0 <= r <= 1.0 + 1e-12:
            raise ValueError(f"reliability out of range: {r}")
        out *= 1.0 - min(r, 1.0)
    return 1.0 - out
