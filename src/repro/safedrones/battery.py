"""Markov battery reliability model with thermal stress acceleration.

Drives the paper's Fig. 5 experiment. The pack is modelled as a
degradation chain ``healthy -> degraded -> critical -> failed`` whose
transition rates are accelerated by an Arrhenius factor in cell
temperature and a state-of-charge stress factor. The runtime monitor
integrates the chain forward with the *live* stress observed in telemetry
("dynamic Markov-based models ... and real-time monitoring", Sec. III-A1),
so the probability-of-failure curve responds to the injected thermal fault
exactly as the paper's blue curve does.

Calibration: with the paper's scenario (fault at t=250 s collapsing SoC to
40% and sustaining ~84 C cell temperature) the PoF crosses the 0.9
threshold near the 510 s mission end, matching Fig. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.safedrones.markov import ContinuousMarkovChain

BOLTZMANN_EV = 8.617333e-5
"""Boltzmann constant in eV/K for the Arrhenius acceleration factor."""

STATES = ["healthy", "degraded", "critical", "failed"]


def battery_chain(base_rate_per_s: float) -> ContinuousMarkovChain:
    """Degradation chain with uniform stage rate ``base_rate_per_s``."""
    lam = base_rate_per_s
    q = np.array(
        [
            [0.0, lam, 0.0, 0.0],
            [0.0, 0.0, lam, 0.0],
            [0.0, 0.0, 0.0, lam],
            [0.0, 0.0, 0.0, 0.0],
        ]
    )
    return ContinuousMarkovChain(states=list(STATES), q=q, absorbing=frozenset({"failed"}))


@dataclass
class BatteryReliabilityModel:
    """Runtime battery probability-of-failure estimator.

    Call :meth:`update` with each telemetry sample; read
    :attr:`failure_probability`. The chain distribution is integrated with
    the instantaneous stress-accelerated generator, so both sustained
    thermal faults and recoveries are reflected.
    """

    base_rate_per_s: float = 6.4e-5
    activation_energy_ev: float = 0.7
    reference_temp_c: float = 25.0
    soc_stress_gamma: float = 6.0
    soc_stress_knee: float = 0.5
    distribution: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    last_time: float | None = None

    def __post_init__(self) -> None:
        self.chain = battery_chain(self.base_rate_per_s)
        if self.distribution is None:
            self.distribution = np.array([1.0, 0.0, 0.0, 0.0])

    # ------------------------------------------------------------- stress
    def arrhenius_factor(self, temp_c: float) -> float:
        """Thermal acceleration relative to the reference temperature."""
        t_ref = self.reference_temp_c + 273.15
        t = max(temp_c, -200.0) + 273.15
        exponent = (self.activation_energy_ev / BOLTZMANN_EV) * (1.0 / t_ref - 1.0 / t)
        return math.exp(exponent)

    def soc_factor(self, soc: float) -> float:
        """Deep-discharge stress: grows below the ``soc_stress_knee``."""
        soc = min(max(soc, 0.0), 1.0)
        if soc >= self.soc_stress_knee:
            return 1.0
        return math.exp(self.soc_stress_gamma * (self.soc_stress_knee - soc))

    def stress_factor(self, soc: float, temp_c: float) -> float:
        """Combined rate multiplier for the current operating condition."""
        return self.arrhenius_factor(temp_c) * self.soc_factor(soc)

    # -------------------------------------------------------------- update
    def update(self, now: float, soc: float, temp_c: float) -> float:
        """Integrate the chain to ``now`` under the observed condition.

        Returns the updated probability of failure. An abrupt SoC collapse
        (cell-group failure) additionally shifts surviving probability mass
        one degradation stage forward, reflecting the diagnosed damage.
        """
        if self.last_time is None:
            self.last_time = now
            return self.failure_probability
        dt = now - self.last_time
        if dt < 0.0:
            raise ValueError("time went backwards")
        self.last_time = now
        if dt == 0.0:
            return self.failure_probability
        factor = self.stress_factor(soc, temp_c)
        stressed = self.chain.scaled(factor)
        self.distribution = stressed.transient(self.distribution, dt)
        return self.failure_probability

    def register_cell_fault(self) -> None:
        """Shift surviving mass one stage forward after a diagnosed cell fault."""
        p = self.distribution
        self.distribution = np.array(
            [0.0, p[0], p[1], p[2] + p[3]], dtype=float
        )

    @property
    def failure_probability(self) -> float:
        """Probability the pack has failed (mass in the absorbing state)."""
        return float(self.distribution[self.chain.index("failed")])

    @property
    def reliability(self) -> float:
        """1 - probability of failure."""
        return 1.0 - self.failure_probability

    def most_likely_state(self) -> str:
        """The degradation stage with the largest probability mass."""
        return STATES[int(np.argmax(self.distribution))]

    def predict_failure_probability(
        self, horizon_s: float, soc: float, temp_c: float
    ) -> float:
        """PoF ``horizon_s`` seconds ahead if the condition persists."""
        factor = self.stress_factor(soc, temp_c)
        stressed = self.chain.scaled(factor)
        future = stressed.transient(self.distribution, horizon_s)
        return float(future[self.chain.index("failed")])
