"""Markov propulsion reliability with reconfiguration.

After Aslansefat et al., "A Markov process-based approach for reliability
evaluation of the propulsion system in multi-rotor drones" (DoCEIS 2019),
which the paper cites as the SafeDrones propulsion model: the chain counts
failed motors; airframes with redundant rotors (hexa/octa) can
*reconfigure* (remap thrust allocation) to tolerate failures, while a
quadrotor is lost on its first motor-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.safedrones.markov import ContinuousMarkovChain

#: Motors that may fail before the airframe becomes uncontrollable, by
#: rotor count, assuming optimal reconfiguration of the thrust mixer.
TOLERABLE_FAILURES = {4: 0, 6: 1, 8: 2}


def motor_chain(
    rotor_count: int,
    failure_rate_per_hour: float = 1e-3,
    reconfig_success: float = 0.9,
) -> ContinuousMarkovChain:
    """Build the motor-failure CTMC for an airframe.

    States ``ok_k`` (k motors healthy, controllable) plus absorbing
    ``failed``. From ``ok_k`` the aggregate motor failure rate is
    ``k * lambda``; when the airframe can still tolerate the loss, the
    transition splits between successful reconfiguration (to ``ok_{k-1}``)
    and loss of control (to ``failed``) with probability
    ``reconfig_success`` / ``1 - reconfig_success``.
    """
    if rotor_count not in TOLERABLE_FAILURES:
        raise ValueError(f"unsupported rotor count {rotor_count}; pick from 4/6/8")
    if not 0.0 <= reconfig_success <= 1.0:
        raise ValueError("reconfig_success must be in [0, 1]")
    lam = failure_rate_per_hour / 3600.0  # per second
    tolerable = TOLERABLE_FAILURES[rotor_count]
    healthy_counts = [rotor_count - i for i in range(tolerable + 1)]
    states = [f"ok_{k}" for k in healthy_counts] + ["failed"]
    n = len(states)
    q = np.zeros((n, n))
    for i, k in enumerate(healthy_counts):
        total = k * lam
        if i < len(healthy_counts) - 1:
            q[i, i + 1] = total * reconfig_success
            q[i, n - 1] = total * (1.0 - reconfig_success)
        else:
            q[i, n - 1] = total
    return ContinuousMarkovChain(states=states, q=q, absorbing=frozenset({"failed"}))


def motor_chain_from_survival(
    rotor_count: int,
    survival_by_count: dict[int, float],
    failure_rate_per_hour: float = 1e-3,
) -> ContinuousMarkovChain:
    """Build the motor CTMC from an arrangement's exact survival table.

    ``survival_by_count[k]`` is the fraction of k-failure combinations
    that remain controllable (from
    :class:`repro.safedrones.arrangement.ArrangementAnalysis`). Each
    tolerated stage's split between "reconfigure successfully" and "lose
    control" is the conditional survival of the next failure.
    """
    lam = failure_rate_per_hour / 3600.0
    max_tolerable = max(
        (k for k, p in survival_by_count.items() if p > 0.0), default=0
    )
    healthy_counts = [rotor_count - i for i in range(max_tolerable + 1)]
    states = [f"ok_{k}" for k in healthy_counts] + ["failed"]
    n = len(states)
    q = np.zeros((n, n))
    for i, k in enumerate(healthy_counts):
        failures_so_far = rotor_count - k
        total = k * lam
        current = survival_by_count.get(failures_so_far, 0.0)
        nxt = survival_by_count.get(failures_so_far + 1, 0.0)
        success = min(1.0, nxt / current) if current > 0.0 else 0.0
        if i < len(healthy_counts) - 1:
            q[i, i + 1] = total * success
            q[i, n - 1] = total * (1.0 - success)
        else:
            q[i, n - 1] = total
    return ContinuousMarkovChain(states=states, q=q, absorbing=frozenset({"failed"}))


@dataclass
class PropulsionModel:
    """Runtime propulsion reliability estimator for one airframe.

    Tracks how many motors have already failed (reported by the flight
    controller) and answers "probability the propulsion system fails within
    the next ``horizon_s`` seconds".
    """

    rotor_count: int = 4
    failure_rate_per_hour: float = 1e-3
    reconfig_success: float = 0.9
    motors_failed: int = 0

    def __post_init__(self) -> None:
        self.chain = motor_chain(
            self.rotor_count, self.failure_rate_per_hour, self.reconfig_success
        )

    @classmethod
    def from_arrangement(
        cls, analysis, failure_rate_per_hour: float = 1e-3
    ) -> "PropulsionModel":
        """Calibrate the Markov model from an arrangement analysis.

        The chain is rebuilt from the arrangement's exact per-count
        survival table, so a PNPNPN hexarotor's combination-dependent
        second-failure survivability (see
        :class:`repro.safedrones.arrangement.ArrangementAnalysis`) flows
        into the runtime reliability numbers.
        """
        model = cls(
            rotor_count=analysis.rotor_count,
            failure_rate_per_hour=failure_rate_per_hour,
            reconfig_success=analysis.effective_reconfig_success(0),
        )
        model.chain = motor_chain_from_survival(
            analysis.rotor_count, analysis.survival_by_count, failure_rate_per_hour
        )
        return model

    def record_motor_failure(self) -> None:
        """Register one additional failed motor."""
        self.motors_failed += 1

    @property
    def controllable(self) -> bool:
        """Whether the airframe remains controllable after observed failures.

        Derived from the chain's state space, so arrangement-calibrated
        models (which may tolerate more failures than the default table)
        answer consistently.
        """
        return f"ok_{self.rotor_count - self.motors_failed}" in self.chain.states

    def _current_state(self) -> str:
        if not self.controllable:
            return "failed"
        return f"ok_{self.rotor_count - self.motors_failed}"

    def failure_probability(self, horizon_s: float) -> float:
        """Probability of propulsion loss within ``horizon_s`` seconds."""
        state = self._current_state()
        if state == "failed":
            return 1.0
        p0 = np.zeros(len(self.chain.states))
        p0[self.chain.index(state)] = 1.0
        return self.chain.failure_probability(p0, horizon_s)

    def mttf_hours(self) -> float:
        """Mean time to propulsion failure from the current state, hours."""
        state = self._current_state()
        if state == "failed":
            return 0.0
        return self.chain.mttf(state) / 3600.0
