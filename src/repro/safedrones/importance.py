"""Importance measures for fault-tree basic events.

Design-time companions to the runtime SafeDrones monitor: given a fault
tree, rank the basic events by how much they matter to the top event —
the analysis an engineer runs to decide where redundancy or monitoring
effort buys the most mission reliability.

Implemented measures (standard definitions):

* **Birnbaum** — ``I_B(e) = P(top | e fails) - P(top | e works)``: the
  sensitivity of the top event to the event's state.
* **Criticality** — Birnbaum scaled by the event's own probability over
  the top probability: the chance that the event is the cause.
* **Fussell–Vesely** — the fraction of top-event probability flowing
  through cut sets containing the event (approximated via conditional
  evaluation, exact for coherent trees evaluated with independence).
* **Risk Achievement Worth (RAW)** and **Risk Reduction Worth (RRW)** —
  the classic what-if ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.safedrones.fta import BasicEvent, ComplexBasicEvent, FaultTree


@dataclass(frozen=True)
class ImportanceReport:
    """All importance measures for one basic event."""

    event: str
    probability: float
    birnbaum: float
    criticality: float
    fussell_vesely: float
    raw: float
    rrw: float


def _with_probability(event, value: float, fn):
    """Evaluate ``fn()`` with the event's probability pinned to ``value``."""
    if isinstance(event, BasicEvent):
        original = event.probability
        event.probability = value
        try:
            return fn()
        finally:
            event.probability = original
    if isinstance(event, ComplexBasicEvent):
        original_model = event.model

        class _Pinned:
            failure_probability = value

        event.model = _Pinned()
        try:
            return fn()
        finally:
            event.model = original_model
    raise TypeError(f"not a basic event: {event!r}")


def importance_analysis(tree: FaultTree) -> list[ImportanceReport]:
    """Compute all measures for every basic event, sorted by Birnbaum."""
    top = tree.top_event_probability()
    reports = []
    for event in tree.leaves():
        p_event = event.evaluate()
        p_fail = _with_probability(event, 1.0, tree.top_event_probability)
        p_work = _with_probability(event, 0.0, tree.top_event_probability)
        birnbaum = p_fail - p_work
        criticality = birnbaum * p_event / top if top > 0.0 else 0.0
        fussell_vesely = (top - p_work) / top if top > 0.0 else 0.0
        raw = p_fail / top if top > 0.0 else float("inf")
        rrw = top / p_work if p_work > 0.0 else float("inf")
        reports.append(
            ImportanceReport(
                event=event.name,
                probability=p_event,
                birnbaum=birnbaum,
                criticality=criticality,
                fussell_vesely=fussell_vesely,
                raw=raw,
                rrw=rrw,
            )
        )
    return sorted(reports, key=lambda r: r.birnbaum, reverse=True)


def most_critical_event(tree: FaultTree) -> str:
    """Name of the basic event with the highest Birnbaum importance."""
    reports = importance_analysis(tree)
    if not reports:
        raise ValueError("tree has no basic events")
    return reports[0].event
