"""Motor-arrangement-aware controllability analysis.

The Markov propulsion chain in :mod:`repro.safedrones.propulsion` counts
failed motors; the underlying DoCEIS-2019 model is finer: *which* motors
fail matters. A hexarotor (PNPNPN) survives losing one motor, and
survives losing two only when the pair leaves balanced torque — e.g.
opposite motors with matching spin budgets — while an adjacent same-spin
pair is fatal.

This module models the airframe geometry explicitly: motors sit on a
regular polygon with alternating spin, and a failure combination is
controllable iff the remaining motors can still produce (a) enough total
thrust, (b) zero net yaw torque, and (c) a centre of thrust at the hub
(roll/pitch balance). From the exact combination table it derives the
effective per-count survival probabilities that calibrate the Markov
chain's reconfiguration success.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Motor:
    """One rotor: hub-frame position and spin direction."""

    index: int
    x: float
    y: float
    spin: int  # +1 CW, -1 CCW


def regular_airframe(rotor_count: int, radius_m: float = 0.5) -> list[Motor]:
    """Motors on a regular polygon with alternating spin (PNPN...)."""
    if rotor_count < 3 or rotor_count % 2 != 0:
        raise ValueError("rotor_count must be even and >= 4")
    motors = []
    for i in range(rotor_count):
        theta = 2.0 * math.pi * i / rotor_count
        motors.append(
            Motor(
                index=i,
                x=radius_m * math.cos(theta),
                y=radius_m * math.sin(theta),
                spin=1 if i % 2 == 0 else -1,
            )
        )
    return motors


def is_controllable(
    motors: list[Motor],
    failed: frozenset[int],
    thrust_margin: float = 0.6,
) -> bool:
    """Whether the airframe hovers with ``failed`` motors out.

    Solves for non-negative per-motor thrusts t_i satisfying:
    sum t_i >= thrust_margin * n (enough lift at <=1.0 per motor),
    sum t_i * x_i = 0, sum t_i * y_i = 0 (roll/pitch balance),
    sum t_i * spin_i = 0 (yaw balance). Feasibility is checked with a
    small linear program solved by scipy.
    """
    from scipy.optimize import linprog

    alive = [m for m in motors if m.index not in failed]
    if len(alive) < 3:
        return False
    n = len(motors)
    k = len(alive)
    # Equality constraints: roll, pitch, yaw balance.
    a_eq = np.array(
        [
            [m.x for m in alive],
            [m.y for m in alive],
            [float(m.spin) for m in alive],
        ]
    )
    b_eq = np.zeros(3)
    # Inequality: total thrust >= margin (negate for <=).
    a_ub = np.array([[-1.0] * k])
    b_ub = np.array([-thrust_margin * n])
    result = linprog(
        c=np.zeros(k),
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, 1.0)] * k,
        method="highs",
    )
    return bool(result.success)


@dataclass
class ArrangementAnalysis:
    """Exhaustive controllability analysis of one airframe."""

    rotor_count: int
    radius_m: float = 0.5
    thrust_margin: float = 0.6
    motors: list[Motor] = field(init=False)
    survival_by_count: dict[int, float] = field(init=False)

    def __post_init__(self) -> None:
        self.motors = regular_airframe(self.rotor_count, self.radius_m)
        self.survival_by_count = {}
        for n_failed in range(0, self.rotor_count + 1):
            combos = list(
                itertools.combinations(range(self.rotor_count), n_failed)
            )
            survivable = sum(
                1
                for combo in combos
                if is_controllable(
                    self.motors, frozenset(combo), self.thrust_margin
                )
            )
            self.survival_by_count[n_failed] = survivable / len(combos)

    def max_tolerable_failures(self) -> int:
        """Largest count for which *some* combination is survivable."""
        return max(
            (n for n, p in self.survival_by_count.items() if p > 0.0),
            default=0,
        )

    def guaranteed_tolerable_failures(self) -> int:
        """Largest count for which *every* combination is survivable."""
        out = 0
        for n in range(self.rotor_count + 1):
            if self.survival_by_count.get(n, 0.0) == 1.0:
                out = n
            else:
                break
        return out

    def effective_reconfig_success(self, after_failures: int = 0) -> float:
        """Probability a random next failure remains survivable.

        Conditional survival: P(survivable at k+1) / P(survivable at k),
        the arrangement-derived calibration for the Markov chain's
        ``reconfig_success`` at that stage.
        """
        current = self.survival_by_count.get(after_failures, 0.0)
        nxt = self.survival_by_count.get(after_failures + 1, 0.0)
        if current == 0.0:
            return 0.0
        return min(1.0, nxt / current)
