"""SafeDrones: runtime reliability evaluation of UAVs (paper Sec. III-A1).

SafeDrones "integrates fault tree analysis (FTA) combined with dynamic
Markov-based models (as complex basic events) and real-time monitoring" to
provide "continuous reliability assessments during UAV operations",
covering "the battery, processor, and UAV rotors".

This subpackage implements that stack from scratch:

- :mod:`repro.safedrones.markov` — continuous-time Markov chain engine
  (transient solve, absorbing failure probability, MTTF).
- :mod:`repro.safedrones.propulsion` — k-out-of-n motor reliability with
  reconfiguration, after Aslansefat et al. (DoCEIS 2019).
- :mod:`repro.safedrones.battery` — battery degradation chain whose rates
  scale with thermal stress (Arrhenius), driving the Fig. 5 experiment.
- :mod:`repro.safedrones.processor` — companion-computer SER/ageing model.
- :mod:`repro.safedrones.fta` — fault trees with *complex basic events*
  (time-dependent, Markov-backed leaves).
- :mod:`repro.safedrones.monitor` — the runtime monitor mapping live
  telemetry to {HIGH, MEDIUM, LOW} reliability guarantees.
"""

from repro.safedrones.markov import ContinuousMarkovChain
from repro.safedrones.propulsion import PropulsionModel, motor_chain
from repro.safedrones.battery import BatteryReliabilityModel
from repro.safedrones.processor import ProcessorReliabilityModel
from repro.safedrones.fta import (
    AndGate,
    BasicEvent,
    ComplexBasicEvent,
    FaultTree,
    KooNGate,
    OrGate,
)
from repro.safedrones.monitor import ReliabilityLevel, SafeDronesMonitor
from repro.safedrones.arrangement import ArrangementAnalysis, regular_airframe
from repro.safedrones.communication import (
    CommLinkMonitor,
    GilbertElliottChannel,
    LinkAssessment,
)
from repro.safedrones.importance import (
    ImportanceReport,
    importance_analysis,
    most_critical_event,
)

__all__ = [
    "ContinuousMarkovChain",
    "PropulsionModel",
    "motor_chain",
    "BatteryReliabilityModel",
    "ProcessorReliabilityModel",
    "AndGate",
    "BasicEvent",
    "ComplexBasicEvent",
    "FaultTree",
    "KooNGate",
    "OrGate",
    "ReliabilityLevel",
    "SafeDronesMonitor",
    "ImportanceReport",
    "importance_analysis",
    "most_critical_event",
    "CommLinkMonitor",
    "GilbertElliottChannel",
    "LinkAssessment",
    "ArrangementAnalysis",
    "regular_airframe",
]
