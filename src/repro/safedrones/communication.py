"""Communication-link reliability: Gilbert–Elliott channel model.

SafeDrones' reliability estimation covers "Reliable Propulsion,
Communication, Energy Control" (paper Fig. 1). This module supplies the
communication third: the classic two-state Gilbert–Elliott Markov channel
(GOOD/BAD burst states with per-state packet loss), plus a runtime link
monitor that estimates the current state from observed delivery outcomes
and produces the link-quality guarantee the comm-localization ConSert
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.safedrones.markov import ContinuousMarkovChain


@dataclass
class GilbertElliottChannel:
    """Two-state burst-loss channel.

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-second transition rates;
    ``loss_good`` / ``loss_bad`` are packet-loss probabilities in each
    state. Step the channel, then ask it whether a packet survives.
    """

    rng: np.random.Generator
    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.2
    loss_good: float = 0.01
    loss_bad: float = 0.6
    in_bad_state: bool = False

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def step(self, dt: float) -> None:
        """Advance the channel state by ``dt`` seconds."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if self.in_bad_state:
            if self.rng.random() < 1.0 - np.exp(-self.p_bad_to_good * dt):
                self.in_bad_state = False
        else:
            if self.rng.random() < 1.0 - np.exp(-self.p_good_to_bad * dt):
                self.in_bad_state = True

    def deliver(self) -> bool:
        """Whether one packet sent now gets through."""
        loss = self.loss_bad if self.in_bad_state else self.loss_good
        return bool(self.rng.random() >= loss)

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the BAD state."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return 1.0 if self.in_bad_state else 0.0
        return self.p_good_to_bad / total

    def expected_delivery_ratio(self) -> float:
        """Long-run packet delivery ratio."""
        bad = self.stationary_bad_fraction
        return (1.0 - bad) * (1.0 - self.loss_good) + bad * (1.0 - self.loss_bad)

    def as_markov_chain(self) -> ContinuousMarkovChain:
        """The underlying CTMC (no absorbing state; for analysis)."""
        return ContinuousMarkovChain(
            states=["good", "bad"],
            q=np.array(
                [
                    [0.0, self.p_good_to_bad],
                    [self.p_bad_to_good, 0.0],
                ]
            ),
        )


@dataclass(frozen=True)
class LinkAssessment:
    """One link-monitor output."""

    stamp: float
    delivery_ratio: float
    estimated_bad: bool
    link_ok: bool


@dataclass
class CommLinkMonitor:
    """Runtime link-quality estimator over observed delivery outcomes.

    Maintains a sliding window of packet outcomes; the link is OK while
    the windowed delivery ratio stays at or above ``ok_threshold``. This
    is the evidence source for the ``comm_links_ok`` ConSert input.
    """

    window_size: int = 50
    ok_threshold: float = 0.85
    outcomes: list[bool] = field(default_factory=list)
    history: list[LinkAssessment] = field(default_factory=list)

    def record(self, delivered: bool) -> None:
        """Record one packet outcome."""
        self.outcomes.append(delivered)
        if len(self.outcomes) > self.window_size:
            del self.outcomes[: -self.window_size]

    def assess(self, now: float) -> LinkAssessment:
        """Current link verdict; optimistic before any traffic."""
        if not self.outcomes:
            ratio = 1.0
        else:
            ratio = sum(self.outcomes) / len(self.outcomes)
        assessment = LinkAssessment(
            stamp=now,
            delivery_ratio=ratio,
            estimated_bad=ratio < self.ok_threshold,
            link_ok=ratio >= self.ok_threshold,
        )
        self.history.append(assessment)
        return assessment
