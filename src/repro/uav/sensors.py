"""Sensor suite for the simulated UAV.

Each sensor samples the true world/vehicle state and returns a noisy,
possibly faulted or attacked measurement. The GPS sensor is the attack
surface for the spoofing experiments (Fig. 6/7): an attacker can bias its
output or deny it entirely, while quality indicators (satellite count,
dilution of precision) degrade in ways the GPS-localization ConSert
monitors.

Noise-stream contract (load-bearing for :mod:`repro.uav.fleet`): every
sensor draws from its *own* spawned generator and each draw is a
fixed-width call of a single distribution — GPS noise is one
``standard_normal(3)`` per measure, GPS quality one ``random(2)`` per
measure, IMU one ``standard_normal(3)``, temperature and wind one scalar
``standard_normal()`` each. Homogeneous per-channel streams are what lets
the vectorized fleet engine prefetch noise in chunks while remaining
bit-identical to this scalar reference (chunked draws from a numpy
``Generator`` consume the bit stream exactly like sequential ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import EnuFrame, GeoPoint


@dataclass(frozen=True)
class GpsFix:
    """One GPS measurement: geodetic point plus quality indicators."""

    point: GeoPoint
    num_satellites: int
    hdop: float
    valid: bool
    stamp: float

    @property
    def quality_ok(self) -> bool:
        """True when the fix meets the nominal navigation quality bar."""
        return self.valid and self.num_satellites >= 6 and self.hdop <= 2.5


@dataclass
class GpsSensor:
    """GPS receiver with Gaussian noise, spoof bias, and denial.

    ``spoof_offset_m`` shifts the reported position in the ENU frame —
    the physical effect of a GPS spoofing attack. ``denied`` models
    jamming/loss: fixes come back invalid with zero satellites.
    """

    frame: EnuFrame
    rng: np.random.Generator
    quality_rng: np.random.Generator = None  # type: ignore[assignment]
    noise_std_m: float = 0.35
    spoof_offset_m: tuple[float, float, float] = (0.0, 0.0, 0.0)
    denied: bool = False
    healthy: bool = True

    def __post_init__(self) -> None:
        if self.quality_rng is None:
            self.quality_rng = self.rng.spawn(1)[0]

    def measure(self, true_enu: tuple[float, float, float], now: float) -> GpsFix:
        """Produce a fix for the vehicle at ``true_enu`` metres.

        Stream contract: a valid measure consumes exactly one
        ``standard_normal(3)`` from ``rng`` and one ``random(2)`` from
        ``quality_rng``; a denied/unhealthy measure consumes nothing.
        """
        if self.denied or not self.healthy:
            return GpsFix(
                point=self.frame.to_geo(*true_enu),
                num_satellites=0,
                hdop=99.0,
                valid=False,
                stamp=now,
            )
        z = self.rng.standard_normal(3)
        noisy = tuple(
            (t + o) + self.noise_std_m * float(zi)
            for t, o, zi in zip(true_enu, self.spoof_offset_m, z)
        )
        spoofed = any(abs(o) > 1e-9 for o in self.spoof_offset_m)
        # A spoofer replays consistent ephemeris, so quality indicators stay
        # plausible; mild degradation reflects the repeater geometry.
        u = self.quality_rng.random(2)
        if spoofed:
            sats = 6 + int(float(u[0]) * 3.0)
            hdop = 1.2 + 1.0 * float(u[1])
        else:
            sats = 7 + int(float(u[0]) * 6.0)
            hdop = 0.7 + 0.7 * float(u[1])
        return GpsFix(
            point=self.frame.to_geo(*noisy),
            num_satellites=sats,
            hdop=hdop,
            valid=True,
            stamp=now,
        )


@dataclass
class ImuSensor:
    """Inertial sensor producing noisy velocity (odometry proxy).

    The spoofing detector cross-checks GPS displacement against IMU-derived
    displacement; the IMU is assumed unspoofable (it is self-contained).
    """

    rng: np.random.Generator
    noise_std_mps: float = 0.08
    healthy: bool = True

    def measure(self, true_velocity: tuple[float, float, float]) -> tuple[float, float, float]:
        """Return a noisy copy of the true velocity vector.

        Stream contract: one ``standard_normal(3)`` per healthy measure,
        nothing when unhealthy.
        """
        if not self.healthy:
            return (0.0, 0.0, 0.0)
        z = self.rng.standard_normal(3)
        return tuple(
            v + self.noise_std_mps * float(zi) for v, zi in zip(true_velocity, z)
        )


@dataclass
class Camera:
    """RGB camera health model.

    The vision-based sensor-health ConSert consumes ``health`` in [0, 1];
    degradations model lens obstruction, vibration blur, or low light.
    """

    rng: np.random.Generator
    health: float = 1.0
    degradation_rate: float = 0.0

    def step(self, dt: float) -> None:
        """Apply any configured gradual degradation."""
        if self.degradation_rate > 0.0:
            self.health = max(0.0, self.health - self.degradation_rate * dt)

    @property
    def operational(self) -> bool:
        """True while the camera can support vision-based navigation."""
        return self.health >= 0.5


@dataclass
class TemperatureSensor:
    """Battery/ambient temperature sensor with small Gaussian noise."""

    rng: np.random.Generator
    noise_std_c: float = 0.5

    def measure(self, true_temp_c: float) -> float:
        """Return a noisy temperature reading in Celsius.

        Stream contract: exactly one scalar ``standard_normal()``.
        """
        return true_temp_c + self.noise_std_c * float(self.rng.standard_normal())


@dataclass
class WindSensor:
    """Wind speed estimate from attitude compensation, noisy."""

    rng: np.random.Generator
    noise_std_mps: float = 0.4

    def measure(self, true_wind_mps: float) -> float:
        """Return a noisy non-negative wind speed reading.

        Stream contract: exactly one scalar ``standard_normal()``.
        """
        return max(
            0.0, true_wind_mps + self.noise_std_mps * float(self.rng.standard_normal())
        )


@dataclass
class SensorSuite:
    """The full sensor complement of one UAV."""

    gps: GpsSensor
    imu: ImuSensor
    camera: Camera
    temperature: TemperatureSensor
    wind: WindSensor

    @classmethod
    def create(cls, frame: EnuFrame, rng: np.random.Generator) -> "SensorSuite":
        """Build a nominal suite with one spawned stream per noise channel.

        Spawning (rather than sharing ``rng``) keeps every channel's draw
        sequence independent of how often the other sensors sample — the
        property the vectorized fleet engine relies on to prefetch each
        channel in chunks. Spawning does not consume from ``rng`` itself.
        """
        gps_noise, gps_quality, imu_rng, temp_rng, wind_rng = rng.spawn(5)
        return cls(
            gps=GpsSensor(frame=frame, rng=gps_noise, quality_rng=gps_quality),
            imu=ImuSensor(rng=imu_rng),
            camera=Camera(rng=rng),
            temperature=TemperatureSensor(rng=temp_rng),
            wind=WindSensor(rng=wind_rng),
        )
