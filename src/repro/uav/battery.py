"""Electro-thermal battery model with fault injection.

Reproduces the substrate of the paper's Fig. 5 experiment: "the battery of
one UAV out of three became faulty due to high temperature, causing a sharp
drop from 80% to 40% at the 250th second". The model tracks state of
charge (SoC), cell temperature, and an injected fault schedule; SafeDrones
(``repro.safedrones.battery``) converts these observables into a Markov
failure probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import event


@dataclass(frozen=True)
class BatterySpec:
    """Static parameters of a flight battery.

    ``capacity_wh`` and draw figures approximate a DJI Matrice 300 with
    its dual TB60 packs (~35 min cruise endurance); the experiments only
    depend on the *relative* SoC trajectory.
    """

    capacity_wh: float = 548.0
    hover_draw_w: float = 850.0
    cruise_draw_w: float = 950.0
    idle_draw_w: float = 60.0
    nominal_temp_c: float = 25.0
    # Above this cell temperature the pack is considered thermally stressed.
    stress_temp_c: float = 60.0
    thermal_time_constant_s: float = 120.0


@dataclass
class BatteryFault:
    """A scheduled battery fault.

    ``at_time`` — simulation second at which the fault manifests.
    ``soc_drop_to`` — SoC fraction the pack collapses to (paper: 0.40).
    ``temp_rise_c`` — immediate cell temperature excursion at onset.
    ``sustained_heat_c`` — ongoing self-heating above ambient while the
    fault persists (thermal-runaway behaviour of a failed cell group).
    """

    at_time: float
    soc_drop_to: float = 0.40
    temp_rise_c: float = 45.0
    sustained_heat_c: float = 45.0
    triggered: bool = False


@dataclass
class Battery:
    """Dynamic battery state stepped by the simulation.

    SoC depletes according to the commanded power draw; cell temperature
    relaxes toward ambient plus a load-dependent rise. Injected faults
    collapse SoC instantaneously (cell-group failure) and raise temperature.
    """

    spec: BatterySpec = field(default_factory=BatterySpec)
    soc: float = 1.0
    temp_c: float = 25.0
    faults: list[BatteryFault] = field(default_factory=list)
    faulted: bool = False

    def inject_fault(self, fault: BatteryFault) -> None:
        """Schedule a fault to manifest at ``fault.at_time``."""
        self.faults.append(fault)

    def step(self, dt: float, now: float, draw_w: float, ambient_c: float = 25.0) -> None:
        """Advance the pack by ``dt`` seconds under ``draw_w`` watts of load."""
        energy_wh = draw_w * dt / 3600.0
        self.soc = max(0.0, self.soc - energy_wh / self.spec.capacity_wh)
        # First-order thermal model: relax toward ambient + load-induced rise.
        load_rise = 12.0 * draw_w / max(self.spec.hover_draw_w, 1.0)
        target = ambient_c + load_rise
        # A triggered fault keeps self-heating the pack (thermal runaway).
        target += sum(f.sustained_heat_c for f in self.faults if f.triggered)
        alpha = min(1.0, dt / self.spec.thermal_time_constant_s)
        self.temp_c += alpha * (target - self.temp_c)
        for fault in self.faults:
            if not fault.triggered and now >= fault.at_time:
                fault.triggered = True
                self.faulted = True
                self.soc = min(self.soc, fault.soc_drop_to)
                self.temp_c += fault.temp_rise_c
                event(
                    "warning", "uav.battery", "fault_activated",
                    sim_time=now, soc_drop_to=fault.soc_drop_to,
                    temp_c=round(self.temp_c, 2),
                )

    @property
    def soc_percent(self) -> float:
        """State of charge as a percentage in [0, 100]."""
        return 100.0 * self.soc

    @property
    def thermally_stressed(self) -> bool:
        """True when cell temperature exceeds the spec stress threshold."""
        return self.temp_c > self.spec.stress_temp_c

    def endurance_estimate_s(self, draw_w: float) -> float:
        """Remaining flight time in seconds at a constant ``draw_w`` load."""
        if draw_w <= 0.0:
            return float("inf")
        return self.soc * self.spec.capacity_wh * 3600.0 / draw_w
