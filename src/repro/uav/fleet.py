"""Vectorized structure-of-arrays fleet engine.

The scalar reference path steps one :class:`~repro.uav.uav.Uav` at a time
(``World.step`` → ``Uav.step``), which is trustworthy but linear in fleet
size — 50+-UAV campaigns spend nearly all their wall-clock in per-UAV
Python. This module batches the per-step physics across the whole fleet as
NumPy array operations while keeping every per-UAV Python object alive as
a *thin view* over the shared arrays, so the EDDI/ConSert/bus layers (and
fault injection, which mutates per-UAV objects) are untouched.

Bit-exactness contract
----------------------
``World(engine="vectorized")`` must agree with ``engine="scalar"`` to the
last bit, not just to a tolerance — the trajectories feed discrete
branches (waypoint capture, touchdown, battery thresholds) where any ULP
difference would compound into divergence. Three rules make this hold:

* Every arithmetic expression mirrors the scalar code's operation order
  exactly (IEEE-754 elementwise ops are identical between Python floats
  and NumPy float64).
* Trigonometric constants (``cos(lat0)``) are computed once with
  :mod:`math` and reused, never recomputed with NumPy; knife-edge
  comparisons that scalar code makes with :func:`math.dist` (waypoint
  capture, near-base) are made with :func:`math.dist` here too, guarded
  by a conservative vectorized prefilter.
* Sensor noise comes from the *same* per-channel generators the scalar
  sensors own (:class:`~repro.uav.sensors.SensorSuite` spawns one stream
  per channel), prefetched in chunks — chunked draws from a numpy
  ``Generator`` consume the bit stream exactly like sequential scalar
  draws. The sensors' ``rng`` attributes are replaced with
  :class:`ChannelRng` proxies served from the same chunks, so even code
  that samples a sensor directly (collaborative localization, tests)
  stays on the shared stream.

Known, documented deviation: under the vectorized engine a telemetry
subscriber callback observes the *whole* fleet post-dynamics, whereas the
scalar loop publishes UAV ``i``'s telemetry before UAV ``i+1`` has moved.
Worlds built from ``scenarios/*.json`` have no mid-step subscribers, so
the differential suite is unaffected.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo import EARTH_RADIUS_M, GeoPoint
from repro.obs import event
from repro.uav.battery import Battery
from repro.uav.dynamics import UavDynamics
from repro.uav.sensors import GpsFix
from repro.uav.uav import FlightMode, Telemetry, Uav

#: Noise events prefetched per refill, per UAV, per channel.
CHUNK = 64

_IDLE, _MISSION, _HOLD, _RTB, _EMERGENCY, _GUIDED, _LANDED = range(7)
_MODE_CODE = {
    FlightMode.IDLE: _IDLE,
    FlightMode.MISSION: _MISSION,
    FlightMode.HOLD: _HOLD,
    FlightMode.RETURN_TO_BASE: _RTB,
    FlightMode.EMERGENCY_LAND: _EMERGENCY,
    FlightMode.GUIDED: _GUIDED,
    FlightMode.LANDED: _LANDED,
}


class NoiseChannel:
    """Chunk-prefetched noise streams, one generator per fleet row.

    ``kind`` selects the distribution (``"normal"`` → ``standard_normal``,
    ``"uniform"`` → ``random``); ``width`` is the fixed event width. A
    refill draws ``(CHUNK, width)`` values in one call, which is
    bit-identical to CHUNK sequential scalar events on the same generator.

    While every consumer takes one event for *all* rows at once (the
    common case — every UAV measures every step) the channel stays in a
    "uniform" regime with a single shared cursor, so a take is one basic
    slice. The first partial take (GPS denial, a staggered telemetry
    schedule, a direct ``sensor.measure()`` call) permanently drops the
    channel to per-row cursors, which cost a few fancy-indexing ops.
    """

    def __init__(self, width: int, kind: str) -> None:
        if kind not in ("normal", "uniform"):
            raise ValueError(f"unknown channel kind {kind!r}")
        self.width = width
        self.kind = kind
        self._gens: list[np.random.Generator] = []
        self._buf = np.empty((0, CHUNK, width))
        self._cur = np.empty(0, dtype=np.int64)
        self._uniform = True
        self._shared = 0

    def __len__(self) -> int:
        return len(self._gens)

    def _draw_chunk(self, row: int) -> None:
        gen = self._gens[row]
        if self.kind == "normal":
            self._buf[row] = gen.standard_normal((CHUNK, self.width))
        else:
            self._buf[row] = gen.random((CHUNK, self.width))
        self._cur[row] = 0

    def _desync(self) -> None:
        """Materialize per-row cursors; entered on the first partial take."""
        if self._uniform:
            self._cur[: len(self._gens)] = self._shared
            self._uniform = False

    def add_row(self, gen: np.random.Generator) -> int:
        """Register one generator; returns its row index."""
        if self._uniform and self._shared:
            # Adopting mid-run: existing rows are mid-chunk, the new row
            # starts at zero — cursors can no longer be shared.
            self._desync()
        row = len(self._gens)
        self._gens.append(gen)
        if row >= self._buf.shape[0]:
            grown = np.empty((max(4, 2 * self._buf.shape[0]), CHUNK, self.width))
            grown[: self._buf.shape[0]] = self._buf
            self._buf = grown
            cur = np.zeros(self._buf.shape[0], dtype=np.int64)
            cur[: len(self._cur)] = self._cur
            self._cur = cur
        self._draw_chunk(row)
        return row

    def take_all(self) -> np.ndarray:
        """Consume one event for every row; returns an (n_rows, width) view."""
        nrows = len(self._gens)
        if not self._uniform:
            return self.take(np.arange(nrows))
        cursor = self._shared
        if cursor >= CHUNK:
            for row in range(nrows):
                self._draw_chunk(row)
            cursor = 0
        self._shared = cursor + 1
        return self._buf[:nrows, cursor]

    def take(self, rows: np.ndarray) -> np.ndarray:
        """Consume one event for every index in ``rows``; returns (M, width)."""
        self._desync()
        cur = self._cur
        cursors = cur[rows]
        over = cursors >= CHUNK
        if over.any():
            for row in rows[over]:
                self._draw_chunk(int(row))
            cursors = cur[rows]
        out = self._buf[rows, cursors]
        cur[rows] = cursors + 1
        return out

    def pop(self, row: int) -> np.ndarray:
        """Consume one event for a single row (the :class:`ChannelRng` path)."""
        self._desync()
        if self._cur[row] >= CHUNK:
            self._draw_chunk(row)
        out = self._buf[row, self._cur[row]]
        self._cur[row] += 1
        return out


class ChannelRng:
    """Stand-in for a sensor's ``Generator``, served from a NoiseChannel.

    Installed on adopted sensors so direct sensor sampling (outside the
    engine's batched phases) consumes the same prefetched stream the
    engine does — keeping scalar and vectorized runs on identical draws
    no matter who samples when.
    """

    def __init__(self, channel: NoiseChannel, row: int) -> None:
        self._channel = channel
        self._row = row

    def _event(self, size: int | None, kind: str) -> np.ndarray | float:
        channel = self._channel
        if kind != channel.kind or (size or 1) != channel.width:
            raise ValueError(
                f"channel serves {channel.kind}({channel.width}) events, "
                f"got request for {kind}({size})"
            )
        out = channel.pop(self._row)
        return out if size is not None else float(out[0])

    def standard_normal(self, size: int | None = None):
        return self._event(size, "normal")

    def random(self, size: int | None = None):
        return self._event(size, "uniform")


class Trail:
    """Lazy per-UAV view over the fleet's per-step position history.

    Reads index into the shared list of per-step ``(n, 3)`` snapshots;
    nothing is materialized per step. The first ``append`` (e.g. fig. 7
    pre-seeding a belief) converts the trail to a real list — registering
    with the engine, which then keeps appending to that list for this UAV
    only.
    """

    __slots__ = ("_hist", "_row", "_start", "_list", "_registry")

    def __init__(
        self, hist: list[np.ndarray], row: int, registry: list | None = None
    ) -> None:
        self._hist = hist
        self._row = row
        self._start = len(hist)
        self._list: list[tuple[float, float, float]] | None = None
        self._registry = registry

    def _entry(self, step: int) -> tuple[float, float, float]:
        snap = self._hist[self._start + step]
        row = self._row
        return (float(snap[row, 0]), float(snap[row, 1]), float(snap[row, 2]))

    def materialize(self) -> list[tuple[float, float, float]]:
        """Force conversion to a real list (then appended to by the engine)."""
        if self._list is None:
            self._list = [self._entry(i) for i in range(len(self))]
            if self._registry is not None:
                self._registry.append(self)
        return self._list

    def append(self, item) -> None:
        self.materialize().append(item)

    def __len__(self) -> int:
        if self._list is not None:
            return len(self._list)
        return len(self._hist) - self._start

    def __getitem__(self, index):
        if self._list is not None:
            return self._list[index]
        n = len(self)
        if isinstance(index, slice):
            return [self._entry(i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trail index out of range")
        return self._entry(index)

    def __iter__(self):
        if self._list is not None:
            return iter(self._list)
        return (self._entry(i) for i in range(len(self)))

    def __bool__(self) -> bool:
        return len(self) > 0


class FleetArrays:
    """Structure-of-arrays state for ``n`` UAVs (rows are registration order)."""

    _VEC = ("position", "velocity", "drift")
    _SCALAR = (
        "soc", "temp_c",
        "max_speed", "max_accel", "max_climb",
        "capacity_wh", "hover_w", "cruise_w", "idle_w", "thermal_tau",
        "noise_std", "base_e", "base_n",
    )

    def __init__(self, capacity: int = 4) -> None:
        self.n = 0
        for name in self._VEC:
            setattr(self, name, np.zeros((capacity, 3)))
        for name in self._SCALAR:
            setattr(self, name, np.zeros(capacity))

    def add_row(self) -> int:
        if self.n >= self.position.shape[0]:
            for name in self._VEC + self._SCALAR:
                old = getattr(self, name)
                grown = np.zeros((2 * old.shape[0],) + old.shape[1:])
                grown[: old.shape[0]] = old
                setattr(self, name, grown)
        row = self.n
        self.n += 1
        return row


class FleetDynamics(UavDynamics):
    """`UavDynamics` view over one fleet row; inherits all scalar methods."""

    def __init__(self, arrays: FleetArrays, row: int) -> None:
        self._a = arrays
        self._row = row

    def _vec(name: str):  # noqa: N805 — descriptor factory, not a method
        def get(self) -> tuple[float, float, float]:
            v = getattr(self._a, name)
            row = self._row
            return (float(v[row, 0]), float(v[row, 1]), float(v[row, 2]))

        def set(self, value) -> None:
            getattr(self._a, name)[self._row] = value

        return property(get, set)

    position = _vec("position")
    velocity = _vec("velocity")
    drift_velocity = _vec("drift")

    def _scalar(name: str):  # noqa: N805
        def get(self) -> float:
            return float(getattr(self._a, name)[self._row])

        def set(self, value: float) -> None:
            getattr(self._a, name)[self._row] = value

        return property(get, set)

    max_speed_mps = _scalar("max_speed")
    max_accel_mps2 = _scalar("max_accel")
    max_climb_mps = _scalar("max_climb")

    del _vec, _scalar


class FleetBattery(Battery):
    """`Battery` view over one fleet row (SoC and temperature array-backed)."""

    def __init__(self, arrays: FleetArrays, row: int, source: Battery) -> None:
        self._a = arrays
        self._row = row
        self.spec = source.spec
        self.faults = source.faults
        self.faulted = source.faulted
        arrays.soc[row] = source.soc
        arrays.temp_c[row] = source.temp_c

    @property
    def soc(self) -> float:
        return float(self._a.soc[self._row])

    @soc.setter
    def soc(self, value: float) -> None:
        self._a.soc[self._row] = value

    @property
    def temp_c(self) -> float:
        return float(self._a.temp_c[self._row])

    @temp_c.setter
    def temp_c(self, value: float) -> None:
        self._a.temp_c[self._row] = value


class FleetEngine:
    """Batched stepper for every UAV registered with one world.

    Created lazily by :class:`~repro.uav.world.World` when
    ``engine="vectorized"``; ``World.add_uav`` routes new vehicles through
    :meth:`adopt`, which re-homes their dynamics/battery state into the
    shared arrays and swaps sensor generators for channel proxies.
    """

    def __init__(self, world) -> None:
        self.world = world
        self.arrays = FleetArrays()
        self._uavs: list[Uav] = []
        self._gps: list = []
        self._imus: list = []
        self._cams: list = []
        self._temps: list = []
        self._winds: list = []
        self._bats: list[FleetBattery] = []
        self._ids: list[str] = []
        self._topics: list[str] = []
        self._base_xy: list[tuple[float, float]] = []
        self._fault_rows: set[int] = set()
        self.ch_gps = NoiseChannel(3, "normal")
        self.ch_quality = NoiseChannel(2, "uniform")
        self.ch_imu = NoiseChannel(3, "normal")
        self.ch_temp = NoiseChannel(1, "normal")
        self.ch_wind = NoiseChannel(1, "normal")
        self.traj_hist: list[np.ndarray] = []
        self.bel_hist: list[np.ndarray] = []
        self._live_traj: list[Trail] = []
        self._live_bel: list[Trail] = []
        # Geo constants, computed once with math (see bit-exactness notes).
        origin = world.frame.origin
        self._olat, self._olon, self._oalt = origin.lat, origin.lon, origin.alt
        self._coslat0 = math.cos(math.radians(origin.lat))
        # Per-row caches refreshed by change detection in the gather pass.
        self._mode_cache: list[FlightMode] = []
        self._mode_str: list[str] = []
        self._codes_list: list[int] = []
        self._codes = np.empty(0, dtype=np.int64)
        self._spoof = np.zeros((0, 3))
        self._spoof_cache: list[tuple] = []
        self._spoofed = np.zeros(0, dtype=bool)
        self._noise_cache: list[float] = []
        self._imu_std = np.empty(0)
        self._temp_std = np.empty(0)
        self._wind_std = np.empty(0)
        self._masks_dirty = True
        self._static_n = -1
        self._alpha_dt = None
        self._maxdv_dt = None

    # ------------------------------------------------------------- adoption
    def adopt(self, uav: Uav) -> None:
        """Re-home one UAV's state into the fleet arrays (views replace it)."""
        arrays = self.arrays
        row = arrays.add_row()
        dyn, bat, spec = uav.dynamics, uav.battery, uav.spec
        arrays.position[row] = dyn.position
        arrays.velocity[row] = dyn.velocity
        arrays.drift[row] = dyn.drift_velocity
        arrays.max_speed[row] = dyn.max_speed_mps
        arrays.max_accel[row] = dyn.max_accel_mps2
        arrays.max_climb[row] = dyn.max_climb_mps
        bspec = bat.spec
        arrays.capacity_wh[row] = bspec.capacity_wh
        arrays.hover_w[row] = bspec.hover_draw_w
        arrays.cruise_w[row] = bspec.cruise_draw_w
        arrays.idle_w[row] = bspec.idle_draw_w
        arrays.thermal_tau[row] = bspec.thermal_time_constant_s
        arrays.noise_std[row] = uav.sensors.gps.noise_std_m
        arrays.base_e[row] = spec.base_position[0]
        arrays.base_n[row] = spec.base_position[1]
        uav.dynamics = FleetDynamics(arrays, row)
        battery = FleetBattery(arrays, row, bat)
        uav.battery = battery
        sensors = uav.sensors
        self.ch_gps.add_row(sensors.gps.rng)
        self.ch_quality.add_row(sensors.gps.quality_rng)
        self.ch_imu.add_row(sensors.imu.rng)
        self.ch_temp.add_row(sensors.temperature.rng)
        self.ch_wind.add_row(sensors.wind.rng)
        sensors.gps.rng = ChannelRng(self.ch_gps, row)
        sensors.gps.quality_rng = ChannelRng(self.ch_quality, row)
        sensors.imu.rng = ChannelRng(self.ch_imu, row)
        sensors.temperature.rng = ChannelRng(self.ch_temp, row)
        sensors.wind.rng = ChannelRng(self.ch_wind, row)
        traj = Trail(self.traj_hist, row, self._live_traj)
        bel = Trail(self.bel_hist, row, self._live_bel)
        if uav.trajectory:
            existing = list(uav.trajectory)
            traj.materialize()
            traj._list[:] = existing
        if uav.believed_trajectory:
            existing = list(uav.believed_trajectory)
            bel.materialize()
            bel._list[:] = existing
        uav.trajectory = traj
        uav.believed_trajectory = bel
        self._uavs.append(uav)
        self._gps.append(sensors.gps)
        self._imus.append(sensors.imu)
        self._cams.append(sensors.camera)
        self._temps.append(sensors.temperature)
        self._winds.append(sensors.wind)
        self._bats.append(battery)
        self._ids.append(spec.uav_id)
        self._topics.append(f"/{spec.uav_id}/telemetry")
        self._base_xy.append((spec.base_position[0], spec.base_position[1]))
        self._mode_cache.append(uav.mode)
        self._mode_str.append(uav.mode.value)
        self._codes_list.append(_MODE_CODE[uav.mode])
        self._codes = np.array(self._codes_list, dtype=np.int64)
        self._spoof = np.vstack([self._spoof, np.zeros(3)])
        self._spoof_cache.append(sensors.gps.spoof_offset_m)
        self._spoof[row] = sensors.gps.spoof_offset_m
        self._spoofed = np.append(
            self._spoofed,
            any(abs(o) > 1e-9 for o in sensors.gps.spoof_offset_m),
        )
        self._noise_cache.append(sensors.gps.noise_std_m)
        # Sensor noise magnitudes are spec constants (faults toggle health,
        # denial, and bias — never the std), so they are cached as arrays
        # and folded into batched telemetry math.
        self._imu_std = np.append(self._imu_std, sensors.imu.noise_std_mps)
        self._temp_std = np.append(self._temp_std, sensors.temperature.noise_std_c)
        self._wind_std = np.append(self._wind_std, sensors.wind.noise_std_mps)
        self._masks_dirty = True
        self._static_n = -1

    # ----------------------------------------------------- cached step state
    def _rebuild_static(self, n: int) -> None:
        """Refresh full-fleet slices after the arrays grew (adoption)."""
        arrays = self.arrays
        self._cap = arrays.capacity_wh[:n]
        self._idle = arrays.idle_w[:n]
        self._cruise = arrays.cruise_w[:n]
        self._hover = arrays.hover_w[:n]
        self._hover_floor = np.maximum(arrays.hover_w[:n], 1.0)
        self._tau = arrays.thermal_tau[:n]
        self._alpha_dt = None
        self._static_n = n

    def _rebuild_masks(self, n: int) -> None:
        """Refresh mode-derived masks; runs only when a mode changed."""
        codes = self._codes[:n]
        stepping = (codes != _IDLE) & (codes != _LANDED)
        self._stepping_rows = np.flatnonzero(stepping)
        self._nonstepping_rows = np.flatnonzero(~stepping)
        self._grounded_idle_mask = ~stepping
        self._mission_rows = np.flatnonzero(codes == _MISSION).tolist()
        self._rtb_rows = np.flatnonzero(codes == _RTB)
        self._em_rows = np.flatnonzero(codes == _EMERGENCY)
        self._guided_rows = np.flatnonzero(codes == _GUIDED).tolist()
        self._landing_rows = np.flatnonzero(
            (codes == _RTB) | (codes == _EMERGENCY) | (codes == _GUIDED)
        )
        arrays = self.arrays
        rows = self._stepping_rows
        self._ms_rows = arrays.max_speed[rows]
        self._climb_rows = arrays.max_climb[rows]
        self._accel_rows = arrays.max_accel[rows]
        self._rtb_base_e = arrays.base_e[self._rtb_rows]
        self._rtb_base_n = arrays.base_n[self._rtb_rows]
        self._maxdv_dt = None
        self._masks_dirty = False

    def _set_mode(self, k: int, mode: FlightMode, code: int) -> None:
        """Apply an engine-driven mode transition (capture / touchdown)."""
        self._uavs[k].mode = mode
        self._mode_cache[k] = mode
        self._mode_str[k] = mode.value
        self._codes_list[k] = code
        self._codes[k] = code
        self._masks_dirty = True

    # ------------------------------------------------------------ geo math
    def _roundtrip(self, noisy: np.ndarray) -> tuple[np.ndarray, ...]:
        """Vectorized ``to_enu(to_geo(noisy))`` mirroring the scalar formulas.

        Returns ``(lat, lon, alt, east, north, up)`` so telemetry can build
        GpsFix points from the same intermediate values.
        """
        olat, olon, oalt = self._olat, self._olon, self._oalt
        lat = olat + np.degrees(noisy[:, 1] / EARTH_RADIUS_M)
        lon = olon + np.degrees(noisy[:, 0] / (EARTH_RADIUS_M * self._coslat0))
        alt = oalt + noisy[:, 2]
        east = np.radians(lon - olon) * EARTH_RADIUS_M * self._coslat0
        north = np.radians(lat - olat) * EARTH_RADIUS_M
        up = alt - oalt
        return lat, lon, alt, east, north, up

    # ----------------------------------------------------------------- step
    def step(
        self,
        dt: float,
        now: float,
        ambient_c: float,
        wind_mps: float,
        environment=None,
    ) -> None:
        """Advance every adopted UAV by one step (the `World.step` body)."""
        arrays = self.arrays
        n = arrays.n
        uavs = self._uavs
        gps_list = self._gps
        pos = arrays.position[:n]
        vel = arrays.velocity[:n]
        if self._static_n != n:
            self._rebuild_static(n)

        # --- gather per-UAV flags (one tight Python pass, change-detected)
        mode_cache = self._mode_cache
        codes_list = self._codes_list
        spoof_cache = self._spoof_cache
        noise_cache = self._noise_cache
        cams = self._cams
        imus = self._imus
        bats = self._bats
        fault_rows = self._fault_rows
        dirty = self._masks_dirty
        gps_rows: list[int] = []
        denied_rows: list[int] = []
        tel_rows: list[int] = []
        tel_valid: list[int] = []
        tel_imu: list[int] = []
        ext_pos: dict[int, tuple] = {}
        for k in range(n):
            uav = uavs[k]
            gps = gps_list[k]
            mode = uav.mode
            if mode is not mode_cache[k]:
                mode_cache[k] = mode
                self._mode_str[k] = mode.value
                codes_list[k] = _MODE_CODE[mode]
                self._codes[k] = codes_list[k]
                dirty = True
            offset = gps.spoof_offset_m
            if offset is not spoof_cache[k]:
                spoof_cache[k] = offset
                self._spoof[k] = offset
                self._spoofed[k] = any(abs(o) > 1e-9 for o in offset)
            std = gps.noise_std_m
            if std != noise_cache[k]:
                noise_cache[k] = std
                arrays.noise_std[k] = std
            denied = gps.denied or not gps.healthy
            if uav.use_external_nav and uav.external_nav_position is not None:
                ext_pos[k] = uav.external_nav_position
            elif denied:
                denied_rows.append(k)
            else:
                gps_rows.append(k)
            if now - uav._last_telemetry >= 1.0 / uav.telemetry_rate_hz:
                tel_rows.append(k)
                if not denied:
                    tel_valid.append(k)
                if imus[k].healthy:
                    tel_imu.append(k)
            # Folded per-row upkeep (scalar runs these inside Uav.step,
            # but their inputs only change between steps and their outputs
            # are only read later in this step, so one fused pass is
            # equivalent): camera degradation and battery-fault discovery.
            cam = cams[k]
            if cam.degradation_rate > 0.0:
                cam.step(dt)
            battery = uav.battery
            if battery is not bats[k]:
                # Mid-run pack swap (`uav.battery = Battery(...)`, e.g. the
                # fig5 naive-policy replacement): re-home the fresh pack
                # into the arrays so fleet state tracks the new object.
                bspec = battery.spec
                arrays.capacity_wh[k] = bspec.capacity_wh
                arrays.hover_w[k] = bspec.hover_draw_w
                arrays.cruise_w[k] = bspec.cruise_draw_w
                arrays.idle_w[k] = bspec.idle_draw_w
                arrays.thermal_tau[k] = bspec.thermal_time_constant_s
                battery = FleetBattery(arrays, k, battery)
                uav.battery = battery
                bats[k] = battery
                self._rebuild_static(n)
            if bats[k].faults:
                fault_rows.add(k)
        if dirty:
            self._rebuild_masks(n)
        spoof = self._spoof[:n]
        noise_std = arrays.noise_std[:n]

        # --- nav phase: believed positions (scalar: Uav.nav_position)
        believed = pos.copy()
        n_gps = len(gps_rows)
        if n_gps:
            if n_gps == n:
                z = self.ch_gps.take_all()
                self.ch_quality.take_all()  # quality drawn (unused) by nav
                noisy = (pos + spoof) + noise_std[:, None] * z
                _, _, _, east, north, up = self._roundtrip(noisy)
                believed[:, 0] = east
                believed[:, 1] = north
                believed[:, 2] = up
            else:
                ga = np.array(gps_rows)
                z = self.ch_gps.take(ga)
                self.ch_quality.take(ga)
                noisy = (pos[ga] + spoof[ga]) + noise_std[ga, None] * z
                _, _, _, east, north, up = self._roundtrip(noisy)
                believed[ga, 0] = east
                believed[ga, 1] = north
                believed[ga, 2] = up
        for k in denied_rows:
            trail = uavs[k].believed_trajectory
            if len(trail):
                believed[k] = trail[-1]
        for k, ext in ext_pos.items():
            believed[k] = ext
        self.bel_hist.append(believed)

        # --- target phase (scalar: Uav._target_for_mode)
        target = np.zeros((n, 3))
        has_target = np.zeros(n, dtype=bool)
        corr_rows: list[int] = []
        corr_targets: list[tuple] = []
        mission_rows = self._mission_rows
        m_active: list[tuple | None] = []
        for k in mission_rows:
            # Inlined WaypointPlan.active (property-call overhead matters
            # at fleet scale; the semantics are the two lines below).
            plan = uavs[k].plan
            waypoints = plan.waypoints
            index = plan.index
            active = waypoints[index] if index < len(waypoints) else None
            m_active.append(active)
            if active is not None:
                corr_rows.append(k)
                corr_targets.append(active)
        for k in self._guided_rows:
            setpoint = uavs[k].guided_setpoint
            if setpoint is not None:
                corr_rows.append(k)
                corr_targets.append(setpoint)
        if corr_rows:
            ca = np.array(corr_rows)
            target[ca] = corr_targets
            has_target[ca] = True
        rtb = self._rtb_rows
        if rtb.size:
            target[rtb, 0] = self._rtb_base_e
            target[rtb, 1] = self._rtb_base_n
            has_target[rtb] = True
            # Belief-space correction (z target is 0, so the full row is
            # just the correction term applied to the base position).
            target[rtb] -= believed[rtb] - pos[rtb]
        if corr_rows:
            target[ca] -= believed[ca] - pos[ca]
        em = self._em_rows
        if em.size:
            # Vertical descent in place: raw position, no belief correction.
            target[em, 0] = pos[em, 0]
            target[em, 1] = pos[em, 1]
            has_target[em] = True

        # --- dynamics phase (scalar: UavDynamics.step_toward + ground clamp)
        ns_rows = self._nonstepping_rows
        if ns_rows.size:
            vel[ns_rows] = 0.0
        rows = self._stepping_rows
        if rows.size:
            p = pos[rows]
            v = vel[rows]
            delta = target[rows] - p
            dist = np.sqrt(
                (delta[:, 0] * delta[:, 0] + delta[:, 1] * delta[:, 1])
                + delta[:, 2] * delta[:, 2]
            )
            far = has_target[rows] & (dist >= 1e-9)
            if far.all():
                speed = np.minimum(
                    np.minimum(self._ms_rows, dist / max(dt, 1e-6)),
                    dist * 0.8 + 0.5,
                )
                desired = delta / dist[:, None] * speed[:, None]
            elif far.any():
                dist_f = dist[far]
                speed = np.minimum(
                    np.minimum(self._ms_rows[far], dist_f / max(dt, 1e-6)),
                    dist_f * 0.8 + 0.5,
                )
                desired = np.zeros_like(p)
                desired[far] = delta[far] / dist_f[:, None] * speed[:, None]
            else:
                desired = np.zeros_like(p)
            dz = desired[:, 2]
            climb = self._climb_rows
            over = np.abs(dz) > climb
            if over.any():
                dz_over = dz[over]
                # Scalar multiplies by scale (= climb/|dz|); non-over rows
                # multiply by exactly 1.0, i.e. stay untouched.
                dz[over] = dz_over * (climb[over] / np.abs(dz_over))
            dv = desired - v
            dvn = np.sqrt(
                (dv[:, 0] * dv[:, 0] + dv[:, 1] * dv[:, 1]) + dv[:, 2] * dv[:, 2]
            )
            if dt != self._maxdv_dt:
                self._maxdv = self._accel_rows * dt
                self._maxdv_dt = dt
            max_dv = self._maxdv
            lim = (dvn > max_dv) & (dvn > 1e-9)
            if lim.any():
                dv[lim] = dv[lim] / dvn[lim, None] * max_dv[lim, None]
            v = v + dv
            p = p + v * dt
            grounded = p[:, 2] < 0.0
            if grounded.any():
                p[grounded, 2] = 0.0
                v[grounded, 2] = 0.0
            vel[rows] = v
            pos[rows] = p
        self.traj_hist.append(pos.copy())
        for trail in self._live_traj:
            row = trail._row
            trail._list.append(
                (float(pos[row, 0]), float(pos[row, 1]), float(pos[row, 2]))
            )
        for trail in self._live_bel:
            row = trail._row
            trail._list.append(
                (
                    float(believed[row, 0]),
                    float(believed[row, 1]),
                    float(believed[row, 2]),
                )
            )
        pos_l = pos.tolist()
        vel_l = vel.tolist()

        # --- waypoint capture / mission completion (scalar: Uav.step)
        new_rtb: list[int] = []
        if mission_rows:
            bel_l = believed.tolist()
            for i, k in enumerate(mission_rows):
                active = m_active[i]
                plan = uavs[k].plan
                if active is not None:
                    b = bel_l[k]
                    radius = plan.capture_radius_m + 1e-6
                    # Chebyshev prefilter: any single-axis gap beyond the
                    # radius means math.dist cannot be within it.
                    if (
                        abs(b[0] - active[0]) > radius
                        or abs(b[1] - active[1]) > radius
                        or abs(b[2] - active[2]) > radius
                    ):
                        continue
                    plan.advance_if_captured(b)
                if plan.index >= len(plan.waypoints):  # inlined plan.complete
                    self._set_mode(k, FlightMode.RETURN_TO_BASE, _RTB)
                    new_rtb.append(k)

        # --- touchdown (scalar: Uav.step landing check + _near_base)
        new_landed: list[int] = []
        landing = self._landing_rows
        cand: list[int] = []
        if landing.size:
            down = (pos[landing, 2] <= 0.05) & (vel[landing, 2] <= 0.2)
            if down.any():
                cand = landing[down].tolist()
        for k in new_rtb:
            if pos_l[k][2] <= 0.05 and vel_l[k][2] <= 0.2:
                cand.append(k)
        for k in cand:
            if codes_list[k] == _RTB:
                row = pos_l[k]
                if not math.dist((row[0], row[1]), self._base_xy[k]) < 3.0:
                    continue
            self._set_mode(k, FlightMode.LANDED, _LANDED)
            new_landed.append(k)

        # --- battery phase (scalar: Uav._power_draw + Battery.step)
        grounded_idle = self._grounded_idle_mask
        if new_landed:
            grounded_idle = grounded_idle.copy()
            grounded_idle[new_landed] = True
        speed = np.sqrt(
            (vel[:, 0] * vel[:, 0] + vel[:, 1] * vel[:, 1])
            + vel[:, 2] * vel[:, 2]
        )
        draw = np.where(
            grounded_idle,
            self._idle,
            np.where(speed > 1.0, self._cruise, self._hover),
        )
        if environment is not None:
            wind2 = environment.current_wind_mps ** 2
            extra = self._cruise * 0.003 * wind2
            draw = draw + np.where(grounded_idle, 0.0, np.maximum(0.0, extra))
        soc = arrays.soc[:n]
        temp = arrays.temp_c[:n]
        energy_wh = draw * dt / 3600.0
        soc[:] = np.maximum(0.0, soc - energy_wh / self._cap)
        load_rise = 12.0 * draw / self._hover_floor
        target_c = ambient_c + load_rise
        for k in fault_rows:
            heat = sum(f.sustained_heat_c for f in bats[k].faults if f.triggered)
            if heat:
                target_c[k] = target_c[k] + heat
        if dt != self._alpha_dt:
            self._alpha = np.minimum(1.0, dt / self._tau)
            self._alpha_dt = dt
        temp[:] = temp + self._alpha * (target_c - temp)
        for k in fault_rows:
            bat = bats[k]
            for fault in bat.faults:
                if not fault.triggered and now >= fault.at_time:
                    fault.triggered = True
                    bat.faulted = True
                    soc[k] = min(soc[k], fault.soc_drop_to)
                    temp[k] = temp[k] + fault.temp_rise_c
                    event(
                        "warning", "uav.battery", "fault_activated",
                        sim_time=now, soc_drop_to=fault.soc_drop_to,
                        temp_c=round(float(temp[k]), 2),
                    )

        # --- telemetry phase (scalar: Uav.publish_telemetry)
        if tel_rows:
            self._publish_telemetry(
                tel_rows, tel_valid, tel_imu, now, wind_mps,
                pos, pos_l, vel_l, spoof, noise_std,
            )

        # --- wind drift phase (scalar: Environment.apply_wind_drift)
        if environment is not None:
            wind_e, wind_n, wind_u = environment.wind_vector()
            drift_e = wind_e * (1.0 - 0.85)
            drift_n = wind_n * (1.0 - 0.85)
            drift_u = wind_u * (1.0 - 0.85)
            drift = arrays.drift[:n]
            airborne = pos[:, 2] > 0.05
            drift[~airborne] = 0.0
            if airborne.any():
                drift[airborne, 0] = drift_e
                drift[airborne, 1] = drift_n
                drift[airborne, 2] = drift_u
                pos[airborne, 0] = pos[airborne, 0] + drift_e * dt
                pos[airborne, 1] = pos[airborne, 1] + drift_n * dt
                pos[airborne, 2] = pos[airborne, 2] + drift_u * dt

    # ------------------------------------------------------------ telemetry
    def _publish_telemetry(
        self, tel_rows, tel_valid, imu_rows, now, wind_mps, pos, pos_l,
        vel_l, spoof, noise_std,
    ) -> None:
        arrays = self.arrays
        n = arrays.n
        uavs = self._uavs
        to_geo = self.world.frame.to_geo
        ids = self._ids
        topics = self._topics
        mode_str = self._mode_str
        cams = self._cams
        n_valid = len(tel_valid)
        if n_valid:
            if n_valid == n:
                z = self.ch_gps.take_all()
                u = self.ch_quality.take_all()
                noisy = (pos + spoof) + noise_std[:, None] * z
                sp = self._spoofed[:n]
            else:
                va = np.array(tel_valid)
                z = self.ch_gps.take(va)
                u = self.ch_quality.take(va)
                noisy = (pos[va] + spoof[va]) + noise_std[va, None] * z
                sp = self._spoofed[va]
            lat, lon, alt, east, north, up = self._roundtrip(noisy)
            sats_l = np.where(
                sp,
                6 + (u[:, 0] * 3.0).astype(np.int64),
                7 + (u[:, 0] * 6.0).astype(np.int64),
            ).tolist()
            hdop_l = np.where(sp, 1.2 + 1.0 * u[:, 1], 0.7 + 0.7 * u[:, 1]).tolist()
            lat_l = lat.tolist()
            lon_l = lon.tolist()
            alt_l = alt.tolist()
            pos_tuples = list(zip(east.tolist(), north.tolist(), up.tolist()))
        n_imu = len(imu_rows)
        if n_imu:
            if n_imu == n:
                zi = self.ch_imu.take_all()
                iv = (arrays.velocity[:n] + arrays.drift[:n]) + self._imu_std[
                    :n, None
                ] * zi
            else:
                ia = np.array(imu_rows)
                zi = self.ch_imu.take(ia)
                iv = (arrays.velocity[ia] + arrays.drift[ia]) + self._imu_std[
                    ia, None
                ] * zi
            iv_tuples = list(map(tuple, iv.tolist()))
        if len(tel_rows) == n:
            zt = self.ch_temp.take_all()[:, 0]
            zw = self.ch_wind.take_all()[:, 0]
            bt_l = (arrays.temp_c[:n] + self._temp_std[:n] * zt).tolist()
            wv_l = np.maximum(
                0.0, wind_mps + self._wind_std[:n] * zw
            ).tolist()
        else:
            ta = np.array(tel_rows)
            zt = self.ch_temp.take(ta)[:, 0]
            zw = self.ch_wind.take(ta)[:, 0]
            bt_l = (arrays.temp_c[ta] + self._temp_std[ta] * zt).tolist()
            wv_l = np.maximum(
                0.0, wind_mps + self._wind_std[ta] * zw
            ).tolist()
        soc_l = arrays.soc[:n].tolist()
        # Per-row instances are built by assigning the instance dict
        # directly — identical objects to calling the frozen-dataclass
        # constructors at roughly a third of the cost (the generated
        # __init__ funnels every field through object.__setattr__). This
        # loop runs fleet_size times per step; it is the hottest
        # allocation site in the engine.
        geo_cls, fix_cls, tel_cls = GeoPoint, GpsFix, Telemetry
        n_tel = len(tel_rows)
        items: list[tuple] = []
        items_append = items.append
        if n_valid == n_tel and n_imu == n_tel:
            # Fast path for the nominal fleet: every due row has a valid
            # fix and a healthy IMU, so every per-row list lines up with
            # tel_rows and the subsequence counters disappear.
            vel_tuples = list(map(tuple, vel_l))
            for j, k in enumerate(tel_rows):
                point = geo_cls.__new__(geo_cls)
                point.__dict__.update({
                    "lat": lat_l[j], "lon": lon_l[j], "alt": alt_l[j],
                })
                fix = fix_cls.__new__(fix_cls)
                fix.__dict__.update({
                    "point": point,
                    "num_satellites": sats_l[j],
                    "hdop": hdop_l[j],
                    "valid": True,
                    "stamp": now,
                })
                sample = tel_cls.__new__(tel_cls)
                sample.__dict__.update({
                    "uav_id": ids[k],
                    "stamp": now,
                    "mode": mode_str[k],
                    "position_enu": pos_tuples[j],
                    "velocity_enu": vel_tuples[k],
                    "gps": fix,
                    "imu_velocity": iv_tuples[j],
                    "battery_soc": soc_l[k],
                    "battery_temp_c": bt_l[j],
                    "camera_health": cams[k].health,
                    "wind_mps": wv_l[j],
                })
                uavs[k]._last_telemetry = now
                items_append((topics[k], sample, ids[k]))
            self.world.bus.publish_many(items, now)
            return
        vi = 0
        ii = 0
        for j, k in enumerate(tel_rows):
            if vi < n_valid and tel_valid[vi] == k:
                point = geo_cls.__new__(geo_cls)
                point.__dict__.update({
                    "lat": lat_l[vi], "lon": lon_l[vi], "alt": alt_l[vi],
                })
                fix = fix_cls.__new__(fix_cls)
                fix.__dict__.update({
                    "point": point,
                    "num_satellites": sats_l[vi],
                    "hdop": hdop_l[vi],
                    "valid": True,
                    "stamp": now,
                })
                position_enu = pos_tuples[vi]
                vi += 1
            else:
                true = tuple(pos_l[k])
                fix = fix_cls.__new__(fix_cls)
                fix.__dict__.update({
                    "point": to_geo(*true),
                    "num_satellites": 0,
                    "hdop": 99.0,
                    "valid": False,
                    "stamp": now,
                })
                position_enu = true
            if ii < n_imu and imu_rows[ii] == k:
                imu_velocity = iv_tuples[ii]
                ii += 1
            else:
                imu_velocity = (0.0, 0.0, 0.0)
            sample = tel_cls.__new__(tel_cls)
            sample.__dict__.update({
                "uav_id": ids[k],
                "stamp": now,
                "mode": mode_str[k],
                "position_enu": position_enu,
                "velocity_enu": tuple(vel_l[k]),
                "gps": fix,
                "imu_velocity": imu_velocity,
                "battery_soc": soc_l[k],
                "battery_temp_c": bt_l[j],
                "camera_health": cams[k].health,
                "wind_mps": wv_l[j],
            })
            uavs[k]._last_telemetry = now
            items_append((topics[k], sample, ids[k]))
        self.world.bus.publish_many(items, now)
