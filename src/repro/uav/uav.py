"""The UAV agent: dynamics + battery + sensors + flight-mode logic.

Each UAV follows a waypoint plan, publishes telemetry on the ROS-like bus,
and obeys flight-mode commands that the ConSert layer issues (continue
mission / hold position / return to base / emergency land) — the guarantee
vocabulary of the paper's Fig. 1 UAV ConSert.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.geo import EnuFrame
from repro.middleware.rosbus import RosBus
from repro.obs import event
from repro.uav.battery import Battery, BatterySpec
from repro.uav.dynamics import UavDynamics, WaypointPlan
from repro.uav.sensors import GpsFix, SensorSuite


class FlightMode(enum.Enum):
    """Flight modes matching the UAV ConSert guarantee set (Fig. 1)."""

    IDLE = "idle"
    MISSION = "mission"
    HOLD = "hold"
    RETURN_TO_BASE = "return_to_base"
    EMERGENCY_LAND = "emergency_land"
    GUIDED = "guided"  # externally commanded setpoints (collaborative landing)
    LANDED = "landed"


@dataclass(frozen=True)
class UavSpec:
    """Static description of one airframe."""

    uav_id: str
    rotor_count: int = 4
    base_position: tuple[float, float, float] = (0.0, 0.0, 0.0)
    battery_spec: BatterySpec = field(default_factory=BatterySpec)


@dataclass(frozen=True)
class Telemetry:
    """One telemetry sample published on ``/<uav_id>/telemetry``."""

    uav_id: str
    stamp: float
    mode: str
    position_enu: tuple[float, float, float]
    velocity_enu: tuple[float, float, float]
    gps: GpsFix
    imu_velocity: tuple[float, float, float]
    battery_soc: float
    battery_temp_c: float
    camera_health: float
    wind_mps: float


@dataclass
class Uav:
    """A simulated UAV wired to the shared bus.

    The vehicle believes its navigation solution (``nav_position``), which
    is normally the GPS fix converted to ENU — meaning a spoofed GPS pulls
    the *believed* position away from truth, and the waypoint controller
    then physically drags the vehicle off course, reproducing the Fig. 6
    trajectory deviation.
    """

    spec: UavSpec
    frame: EnuFrame
    bus: RosBus
    rng: np.random.Generator
    dynamics: UavDynamics = None  # type: ignore[assignment]
    battery: Battery = None  # type: ignore[assignment]
    sensors: SensorSuite = None  # type: ignore[assignment]
    plan: WaypointPlan = field(default_factory=WaypointPlan)
    mode: FlightMode = FlightMode.IDLE
    guided_setpoint: tuple[float, float, float] | None = None
    use_external_nav: bool = False
    external_nav_position: tuple[float, float, float] | None = None
    telemetry_rate_hz: float = 2.0
    # Motors reported failed by the flight controller (fault injection
    # increments this; SafeDrones' propulsion model consumes it).
    motors_failed: int = 0
    _last_telemetry: float = field(default=-1e9, repr=False)
    trajectory: list[tuple[float, float, float]] = field(default_factory=list)
    believed_trajectory: list[tuple[float, float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dynamics is None:
            self.dynamics = UavDynamics(position=self.spec.base_position)
        if self.battery is None:
            self.battery = Battery(spec=self.spec.battery_spec)
        if self.sensors is None:
            self.sensors = SensorSuite.create(self.frame, self.rng)

    # ------------------------------------------------------------------ nav
    def nav_position(self, now: float) -> tuple[float, float, float]:
        """The position the flight controller believes, in ENU metres.

        Order of precedence: external navigation (collaborative
        localization), valid GPS, dead-reckoned last belief.
        """
        if self.use_external_nav and self.external_nav_position is not None:
            return self.external_nav_position
        fix = self.sensors.gps.measure(self.dynamics.position, now)
        if fix.valid:
            return self.frame.to_enu(fix.point)
        if self.believed_trajectory:
            return self.believed_trajectory[-1]
        return self.dynamics.position

    # ---------------------------------------------------------------- modes
    def start_mission(self, waypoints: list[tuple[float, float, float]]) -> None:
        """Load a waypoint plan and enter MISSION mode."""
        self.plan.replace(waypoints)
        self.mode = FlightMode.MISSION

    def command_mode(self, mode: FlightMode) -> None:
        """Apply a flight-mode command from the assurance layer."""
        if mode is not self.mode:
            event(
                "info", "uav.uav", "mode_transition",
                uav=self.spec.uav_id,
                previous=self.mode.value, mode=mode.value,
            )
        self.mode = mode

    def command_guided_setpoint(self, setpoint: tuple[float, float, float]) -> None:
        """Enter GUIDED mode flying to an externally supplied setpoint."""
        self.mode = FlightMode.GUIDED
        self.guided_setpoint = setpoint

    # ----------------------------------------------------------------- step
    def _target_for_mode(self, believed: tuple[float, float, float]) -> tuple[float, float, float] | None:
        # The flight controller only sees its believed position, so every
        # navigated mode steers in belief space: the physical vehicle flies
        # toward target + (truth - belief), which reproduces how a wrong
        # belief (spoofed GPS, CL error) physically displaces the vehicle.
        def belief_corrected(target: tuple[float, float, float]) -> tuple[float, float, float]:
            err = tuple(b - t for b, t in zip(believed, self.dynamics.position))
            return tuple(w - e for w, e in zip(target, err))

        if self.mode is FlightMode.MISSION:
            target = self.plan.active
            if target is None:
                return None
            return belief_corrected(target)
        if self.mode is FlightMode.RETURN_TO_BASE:
            return belief_corrected(self.spec.base_position)
        if self.mode is FlightMode.EMERGENCY_LAND:
            # Vertical descent in place needs no navigation solution.
            pos = self.dynamics.position
            return (pos[0], pos[1], 0.0)
        if self.mode is FlightMode.GUIDED and self.guided_setpoint is not None:
            return belief_corrected(self.guided_setpoint)
        return None  # IDLE / HOLD / LANDED hover in place

    def step(
        self,
        dt: float,
        now: float,
        ambient_c: float = 25.0,
        wind_mps: float = 0.0,
        extra_draw_w: float = 0.0,
    ) -> None:
        """Advance the vehicle by one simulation step and publish telemetry.

        ``extra_draw_w`` adds environment-driven load (e.g. fighting wind)
        on top of the mode-dependent baseline draw.
        """
        believed = self.nav_position(now)
        self.believed_trajectory.append(believed)

        target = self._target_for_mode(believed)
        if self.mode in (FlightMode.IDLE, FlightMode.LANDED):
            self.dynamics.velocity = (0.0, 0.0, 0.0)
        else:
            self.dynamics.step_toward(target, dt)
            if self.dynamics.position[2] < 0.0:
                # Ground contact: clamp altitude and kill vertical speed.
                east, north, _ = self.dynamics.position
                veast, vnorth, _ = self.dynamics.velocity
                self.dynamics.position = (east, north, 0.0)
                self.dynamics.velocity = (veast, vnorth, 0.0)
        self.trajectory.append(self.dynamics.position)

        if self.mode is FlightMode.MISSION:
            self.plan.advance_if_captured(believed)
            if self.plan.complete:
                self.mode = FlightMode.RETURN_TO_BASE
        if self.mode in (FlightMode.EMERGENCY_LAND, FlightMode.GUIDED, FlightMode.RETURN_TO_BASE):
            # Touchdown: on the ground and not climbing. Horizontal speed is
            # ignored — belief noise can command small lateral corrections
            # right up to ground contact.
            if self.dynamics.position[2] <= 0.05 and self.dynamics.velocity[2] <= 0.2:
                if self.mode is not FlightMode.RETURN_TO_BASE or self._near_base():
                    self.mode = FlightMode.LANDED

        draw = self._power_draw()
        if self.mode not in (FlightMode.IDLE, FlightMode.LANDED):
            draw += max(0.0, extra_draw_w)
        self.battery.step(dt, now, draw, ambient_c)
        self.sensors.camera.step(dt)

        if now - self._last_telemetry >= 1.0 / self.telemetry_rate_hz:
            self._last_telemetry = now
            self.publish_telemetry(now, wind_mps)

    def _near_base(self) -> bool:
        ground = math.dist(self.dynamics.position[:2], self.spec.base_position[:2])
        return ground < 3.0

    def _power_draw(self) -> float:
        spec = self.battery.spec
        if self.mode in (FlightMode.IDLE, FlightMode.LANDED):
            return spec.idle_draw_w
        if self.dynamics.speed_mps > 1.0:
            return spec.cruise_draw_w
        return spec.hover_draw_w

    # ------------------------------------------------------------ telemetry
    def publish_telemetry(self, now: float, wind_mps: float = 0.0) -> Telemetry:
        """Sample all sensors and publish a Telemetry record on the bus."""
        fix = self.sensors.gps.measure(self.dynamics.position, now)
        sample = Telemetry(
            uav_id=self.spec.uav_id,
            stamp=now,
            mode=self.mode.value,
            position_enu=self.frame.to_enu(fix.point) if fix.valid else self.dynamics.position,
            velocity_enu=self.dynamics.velocity,
            gps=fix,
            imu_velocity=self.sensors.imu.measure(self.dynamics.ground_velocity),
            battery_soc=self.battery.soc,
            battery_temp_c=self.sensors.temperature.measure(self.battery.temp_c),
            camera_health=self.sensors.camera.health,
            wind_mps=self.sensors.wind.measure(wind_mps),
        )
        self.bus.publish(
            topic=f"/{self.spec.uav_id}/telemetry",
            data=sample,
            sender=self.spec.uav_id,
            stamp=now,
        )
        return sample
