"""UAV simulation substrate.

The paper evaluates on DJI Matrice 300 RTK aircraft flown in the field and
in DJI Assistant 2 / Gazebo. This subpackage is the from-scratch
replacement: a kinematic multirotor simulator with an electro-thermal
battery model, a configurable sensor suite (GPS with spoofing/denial, IMU,
camera, temperature, wind), fault injection, and a world container that
steps a fleet plus its environment deterministically.

The EDDI technologies consume telemetry streams, not aerodynamics, so a
kinematic waypoint-following model reproduces every signal the paper's
experiments depend on while remaining laptop-fast.
"""

from repro.uav.battery import Battery, BatteryFault, BatterySpec
from repro.uav.dynamics import UavDynamics, WaypointPlan
from repro.uav.sensors import (
    Camera,
    GpsSensor,
    GpsFix,
    ImuSensor,
    SensorSuite,
    TemperatureSensor,
    WindSensor,
)
from repro.uav.environment import Environment, GustProcess
from repro.uav.faults import (
    Fault,
    FaultSchedule,
    battery_collapse,
    camera_degradation,
    gps_denial,
    gps_spoof,
    imu_failure,
    motor_failure,
)
from repro.uav.uav import Telemetry, Uav, UavSpec
from repro.uav.world import Person, World

__all__ = [
    "Battery",
    "BatteryFault",
    "BatterySpec",
    "UavDynamics",
    "WaypointPlan",
    "Camera",
    "GpsSensor",
    "GpsFix",
    "ImuSensor",
    "SensorSuite",
    "TemperatureSensor",
    "WindSensor",
    "Telemetry",
    "Uav",
    "UavSpec",
    "Person",
    "World",
    "Environment",
    "GustProcess",
    "Fault",
    "FaultSchedule",
    "battery_collapse",
    "camera_degradation",
    "gps_denial",
    "gps_spoof",
    "imu_failure",
    "motor_failure",
]
