"""Vectorized 2D point-mass kinematics for swarm-scale fleets.

The full vectorized fleet engine (:mod:`repro.uav.fleet`) carries
batteries, sensors, and fault state the swarm-sizing workload does not
need; what that workload *does* need is moving thousands of UAVs toward
per-UAV targets cheaply. This module is the minimal structure-of-arrays
core: positions ``(N, 2)``, speeds ``(N,)``, targets ``(N, 2)``, one
fused NumPy update per tick with exact arrival clamping (a UAV reaches
its target in the tick it would overshoot — no oscillation around the
goal, which matters because the tasking protocol keys "arrived" off it).

Frozen (dead) UAVs simply stop being stepped: clear their target and
their position stays put, which is what a crashed airframe does from the
bus's point of view.
"""

from __future__ import annotations

import numpy as np


class SwarmKinematics:
    """Structure-of-arrays positions + constant-speed target seeking."""

    def __init__(self, positions: np.ndarray, speeds: np.ndarray) -> None:
        self.pos = np.asarray(positions, dtype=np.float64).copy()
        if self.pos.ndim != 2 or self.pos.shape[1] != 2:
            raise ValueError("positions must be (N, 2)")
        self.speed = np.asarray(speeds, dtype=np.float64).copy()
        if self.speed.shape != (self.pos.shape[0],):
            raise ValueError("speeds must be (N,)")
        self.target = self.pos.copy()
        self.has_target = np.zeros(self.pos.shape[0], dtype=bool)

    @property
    def n(self) -> int:
        return self.pos.shape[0]

    def set_target(self, index: int, target: tuple[float, float]) -> None:
        self.target[index, 0] = float(target[0])
        self.target[index, 1] = float(target[1])
        self.has_target[index] = True

    def clear_target(self, index: int) -> None:
        self.has_target[index] = False

    def distance_to_target(self, index: int) -> float:
        delta = self.target[index] - self.pos[index]
        return float(np.hypot(delta[0], delta[1]))

    def step(self, dt: float) -> np.ndarray:
        """Advance every targeted UAV by ``speed * dt`` toward its target.

        Returns the boolean mask of UAVs that *arrived this tick* (their
        remaining distance was ≤ one tick of travel; position snaps to
        the target exactly). Arrived UAVs keep their target until the
        caller clears or replaces it, but don't move further.
        """
        delta = self.target - self.pos
        dist = np.hypot(delta[:, 0], delta[:, 1])
        reach = self.speed * dt
        active = self.has_target & (dist > 0.0)
        arrive = active & (dist <= reach)
        move = active & ~arrive
        # np.divide with a where-mask leaves masked-out lanes untouched.
        scale = np.zeros_like(dist)
        np.divide(reach, dist, out=scale, where=move)
        self.pos[move] += delta[move] * scale[move, None]
        self.pos[arrive] = self.target[arrive]
        return arrive

    def pairwise_distance(self, i: int, j: int) -> float:
        delta = self.pos[j] - self.pos[i]
        return float(np.hypot(delta[0], delta[1]))

    def distances_from(self, index: int, points: np.ndarray) -> np.ndarray:
        """Distances from UAV ``index`` to each row of ``points`` (M, 2)."""
        delta = np.asarray(points, dtype=np.float64) - self.pos[index]
        return np.hypot(delta[:, 0], delta[:, 1])
