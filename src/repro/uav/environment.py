"""Environment model: wind field with gusts, visibility, ambient profile.

The paper's testbed UAVs carry "temperature, wind, and motion sensors"
and the DJI simulator lets operators "adjust wind speed" (Sec. IV-B).
This module supplies the environment those sensors sample: a mean wind
vector with a first-order gust process (Dryden-flavoured coloured noise),
an ambient temperature profile, and a visibility state that SINADRA's
situation inputs consume.

Wind physically displaces the fleet: :meth:`Environment.wind_vector`
returns the instantaneous wind, and :meth:`apply_wind_drift` adds the
corresponding drift to a UAV's dynamics — unopposed for the simple
kinematic controller, which is exactly why coverage at high wind degrades
and the energy draw rises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class GustProcess:
    """First-order (Ornstein–Uhlenbeck) gust magnitude around a mean."""

    rng: np.random.Generator
    mean_mps: float = 3.0
    gust_sigma_mps: float = 1.0
    correlation_time_s: float = 20.0
    state: float = 0.0

    def step(self, dt: float) -> float:
        """Advance the gust state; returns the current wind magnitude."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        alpha = math.exp(-dt / self.correlation_time_s)
        noise_scale = self.gust_sigma_mps * math.sqrt(1.0 - alpha * alpha)
        self.state = alpha * self.state + float(self.rng.normal(0.0, noise_scale))
        return max(0.0, self.mean_mps + self.state)


@dataclass
class Environment:
    """The mission environment sampled by sensors and stepping UAVs."""

    rng: np.random.Generator
    wind_direction_deg: float = 270.0  # wind FROM the west by default
    gusts: GustProcess = None  # type: ignore[assignment]
    ambient_c: float = 25.0
    diurnal_amplitude_c: float = 4.0
    visibility: str = "good"  # "good" | "poor"
    current_wind_mps: float = 0.0

    def __post_init__(self) -> None:
        if self.gusts is None:
            self.gusts = GustProcess(rng=self.rng)
        if self.visibility not in ("good", "poor"):
            raise ValueError("visibility must be 'good' or 'poor'")

    def step(self, dt: float, now: float) -> None:
        """Advance the gust process and the diurnal temperature."""
        self.current_wind_mps = self.gusts.step(dt)
        # Crude diurnal cycle around the base ambient (period 24 h).
        self.ambient_now_c = self.ambient_c + self.diurnal_amplitude_c * math.sin(
            2.0 * math.pi * now / 86_400.0
        )

    @property
    def ambient_temperature_c(self) -> float:
        """Current ambient temperature."""
        return getattr(self, "ambient_now_c", self.ambient_c)

    def wind_vector(self) -> tuple[float, float, float]:
        """Instantaneous wind as an ENU velocity vector (blowing TO)."""
        # Direction convention: wind_direction is where the wind comes FROM.
        to_deg = (self.wind_direction_deg + 180.0) % 360.0
        theta = math.radians(to_deg)
        return (
            self.current_wind_mps * math.sin(theta),
            self.current_wind_mps * math.cos(theta),
            0.0,
        )

    def apply_wind_drift(self, dynamics, dt: float, rejection: float = 0.85) -> None:
        """Drift a UAV's position with the unrejected wind component.

        ``rejection`` models the flight controller's wind rejection
        (position-hold authority): 1.0 = perfect rejection, 0.0 = free
        balloon. Drift applies only while airborne.
        """
        if not 0.0 <= rejection <= 1.0:
            raise ValueError("rejection must be in [0, 1]")
        if dynamics.position[2] <= 0.05:
            dynamics.drift_velocity = (0.0, 0.0, 0.0)
            return
        wind = self.wind_vector()
        drift = tuple(w * (1.0 - rejection) for w in wind)
        dynamics.drift_velocity = drift
        dynamics.position = tuple(
            p + d * dt for p, d in zip(dynamics.position, drift)
        )

    def extra_power_draw_w(self, base_draw_w: float) -> float:
        """Additional battery draw needed to fight the current wind.

        Quadratic in wind speed, calibrated so 10 m/s costs ~30% extra —
        the reason high-wind missions drain the pack visibly faster.
        """
        return base_draw_w * 0.003 * self.current_wind_mps**2
