"""Kinematic waypoint-following dynamics for a multirotor.

A point-mass model in the local ENU frame: the vehicle accelerates toward
the active waypoint subject to speed/acceleration limits and settles when
within a capture radius. This is deliberately simple — the paper's
experiments exercise telemetry, reliability, and security layers, none of
which depend on rotor-level aerodynamics — but it yields smooth, physically
plausible trajectories for the Fig. 6 mapping plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class WaypointPlan:
    """An ordered list of ENU waypoints with a capture radius."""

    waypoints: list[tuple[float, float, float]] = field(default_factory=list)
    capture_radius_m: float = 2.0
    index: int = 0

    @property
    def active(self) -> tuple[float, float, float] | None:
        """The waypoint currently being flown to, or ``None`` when done."""
        if self.index < len(self.waypoints):
            return self.waypoints[self.index]
        return None

    @property
    def complete(self) -> bool:
        """True when every waypoint has been captured."""
        return self.index >= len(self.waypoints)

    def advance_if_captured(self, position: tuple[float, float, float]) -> bool:
        """Advance to the next waypoint if within the capture radius."""
        target = self.active
        if target is None:
            return False
        dist = math.dist(position, target)
        if dist <= self.capture_radius_m:
            self.index += 1
            return True
        return False

    def replace(self, waypoints: list[tuple[float, float, float]]) -> None:
        """Swap in a new waypoint list and restart from its beginning."""
        self.waypoints = list(waypoints)
        self.index = 0


@dataclass
class UavDynamics:
    """Point-mass kinematics with velocity and acceleration limits."""

    position: tuple[float, float, float] = (0.0, 0.0, 0.0)
    velocity: tuple[float, float, float] = (0.0, 0.0, 0.0)
    # Environment-imposed drift (unrejected wind), set by the world each
    # step; part of the true ground velocity that inertial sensing sees.
    drift_velocity: tuple[float, float, float] = (0.0, 0.0, 0.0)
    max_speed_mps: float = 12.0
    max_accel_mps2: float = 4.0
    max_climb_mps: float = 4.0

    def step_toward(
        self, target: tuple[float, float, float] | None, dt: float
    ) -> None:
        """Advance ``dt`` seconds toward ``target`` (hover if ``None``)."""
        if target is None:
            desired = (0.0, 0.0, 0.0)
        else:
            delta = tuple(t - p for t, p in zip(target, self.position))
            dist = math.sqrt(sum(d * d for d in delta))
            if dist < 1e-9:
                desired = (0.0, 0.0, 0.0)
            else:
                # Proportional speed with braking near the target.
                speed = min(self.max_speed_mps, dist / max(dt, 1e-6), dist * 0.8 + 0.5)
                desired = tuple(d / dist * speed for d in delta)
                # Clamp the vertical rate separately (multirotor climb limit).
                if abs(desired[2]) > self.max_climb_mps:
                    scale = self.max_climb_mps / abs(desired[2])
                    desired = (desired[0], desired[1], desired[2] * scale)
        # Accelerate toward the desired velocity under the accel limit.
        dv = tuple(d - v for d, v in zip(desired, self.velocity))
        dv_norm = math.sqrt(sum(x * x for x in dv))
        max_dv = self.max_accel_mps2 * dt
        if dv_norm > max_dv and dv_norm > 1e-9:
            dv = tuple(x / dv_norm * max_dv for x in dv)
        self.velocity = tuple(v + x for v, x in zip(self.velocity, dv))
        self.position = tuple(p + v * dt for p, v in zip(self.position, self.velocity))

    @property
    def ground_velocity(self) -> tuple[float, float, float]:
        """Commanded velocity plus environment drift — what an INS sees."""
        return tuple(v + d for v, d in zip(self.velocity, self.drift_velocity))

    @property
    def speed_mps(self) -> float:
        """Current ground-frame speed magnitude."""
        return math.sqrt(sum(v * v for v in self.velocity))

    @property
    def heading_deg(self) -> float:
        """Course over ground in degrees from north, [0, 360)."""
        east, north = self.velocity[0], self.velocity[1]
        if abs(east) < 1e-9 and abs(north) < 1e-9:
            return 0.0
        return math.degrees(math.atan2(east, north)) % 360.0
