"""Simulation world: terrain extent, persons to find, environment, fleet.

The world steps every UAV and attacker with a fixed ``dt``, keeps the bus
clock coherent, and owns ground truth (person locations) that the SAR
detection models sample against.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.geo import EnuFrame, GeoPoint
from repro.obs import OBS
from repro.middleware.attacks import Attacker
from repro.uav.environment import Environment
from repro.uav.fleet import FleetEngine
from repro.middleware.rosbus import RosBus
from repro.uav.uav import Uav

ENGINES = ("scalar", "vectorized")
"""Valid values for ``World.engine``."""


@dataclass
class Person:
    """A person on the ground awaiting rescue (ground truth)."""

    person_id: str
    position: tuple[float, float]  # ENU east/north, metres (on the ground)
    detected: bool = False
    detected_by: str | None = None
    detected_at: float | None = None


@dataclass
class World:
    """Container stepping the fleet, environment, and attacks together."""

    frame: EnuFrame = field(
        default_factory=lambda: EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0))
    )
    bus: RosBus = field(default_factory=RosBus)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    area_size_m: tuple[float, float] = (400.0, 300.0)
    ambient_c: float = 25.0
    wind_mps: float = 2.0
    # Optional dynamic environment; when set it overrides the static
    # ambient_c / wind_mps fields and physically drifts airborne UAVs.
    environment: Environment | None = None
    uavs: dict[str, Uav] = field(default_factory=dict)
    persons: list[Person] = field(default_factory=list)
    attackers: list[Attacker] = field(default_factory=list)
    time: float = 0.0
    dt: float = 0.5
    # "scalar" steps each UAV in Python (the reference path); "vectorized"
    # batches the fleet physics through repro.uav.fleet.FleetEngine, which
    # is bit-identical to scalar (see tests/test_fleet_equivalence.py).
    engine: str = "scalar"
    # Obstacle field (repro.plan.ObstacleField) and camera geometry
    # (repro.sar.coverage.CameraConfig) set by the scenario loader. Typed
    # loosely because this substrate layer never imports upward — planners
    # and missions that know the concrete types live above it.
    obstacles: object | None = None
    camera: object | None = None
    _fleet: FleetEngine | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.engine == "vectorized":
            self._fleet = FleetEngine(self)

    def add_uav(self, uav: Uav) -> Uav:
        """Register a UAV with the world."""
        self.uavs[uav.spec.uav_id] = uav
        if self._fleet is not None:
            self._fleet.adopt(uav)
        return uav

    def add_attacker(self, attacker: Attacker) -> Attacker:
        """Register a scripted attacker stepped alongside the fleet."""
        self.attackers.append(attacker)
        return attacker

    def scatter_persons(self, count: int) -> list[Person]:
        """Place ``count`` persons uniformly at random in the search area."""
        persons = []
        for i in range(count):
            east = float(self.rng.uniform(0.0, self.area_size_m[0]))
            north = float(self.rng.uniform(0.0, self.area_size_m[1]))
            persons.append(Person(person_id=f"person-{i}", position=(east, north)))
        self.persons.extend(persons)
        return persons

    def step(self) -> float:
        """Advance the whole world by ``dt``; returns the new time."""
        self.time += self.dt
        self.bus.advance_clock(self.time)
        if not self.uavs:
            # Empty world: nothing flies, heats, or gets attacked. Advance
            # the clocks only — campaign smoke grids legitimately build
            # zero-UAV worlds and should not pay a full step (or obs span).
            return self.time
        obs_on = OBS.enabled
        if obs_on:
            tick_start = _time.perf_counter()
        for attacker in self.attackers:
            attacker.step(self.time)
        if self.environment is not None:
            self.environment.step(self.dt, self.time)
            ambient = self.environment.ambient_temperature_c
            wind = self.environment.current_wind_mps
        else:
            ambient, wind = self.ambient_c, self.wind_mps
        if self._fleet is not None:
            self._fleet.step(
                self.dt, self.time, ambient, wind, self.environment
            )
        else:
            for uav in self.uavs.values():
                extra = (
                    self.environment.extra_power_draw_w(uav.battery.spec.cruise_draw_w)
                    if self.environment is not None
                    else 0.0
                )
                uav.step(
                    self.dt, self.time, ambient_c=ambient, wind_mps=wind,
                    extra_draw_w=extra,
                )
                if self.environment is not None:
                    self.environment.apply_wind_drift(uav.dynamics, self.dt)
        if obs_on:
            OBS.metrics.inc("world_ticks_total")
            OBS.metrics.observe(
                "world_tick_duration_s", _time.perf_counter() - tick_start
            )
        return self.time

    def run_until(self, t_end: float, callback=None) -> None:
        """Step until simulation time reaches ``t_end``.

        ``callback(world)``, if given, runs after every step — the hook the
        EDDI runtime and experiment drivers use to observe and react.
        """
        while self.time < t_end:
            self.step()
            if callback is not None:
                callback(self)

    def undetected_persons(self) -> list[Person]:
        """Persons not yet found by any UAV."""
        return [p for p in self.persons if not p.detected]
