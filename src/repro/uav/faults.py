"""Generic fault-injection framework for dependability testing.

The SESAME technologies exist to handle faults; this framework injects
them reproducibly: each :class:`Fault` manifests at a scheduled time on a
target UAV (motor loss, GPS denial, camera degradation, IMU failure,
battery collapse, and — over a :class:`~repro.middleware.degraded.DegradedBus`
— comm blackouts, link degradation, and network partitions), and a
:class:`FaultSchedule` steps the whole campaign
alongside the world — the harness behind failure-injection test suites
and resilience benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.middleware.degraded import DegradedBus
from repro.obs import event
from repro.uav.battery import BatteryFault
from repro.uav.uav import Uav


@dataclass
class Fault:
    """One scheduled fault with apply (and optional clear) actions."""

    name: str
    target_uav: str
    at_time: float
    apply: Callable[[Uav], None]
    clear: Callable[[Uav], None] | None = None
    clear_at_time: float | None = None
    applied: bool = False
    cleared: bool = False

    @property
    def done(self) -> bool:
        """Whether this fault has fully run its course (no pending action)."""
        return self.applied and (self.clear is None or self.cleared)

    def step(self, now: float, uav: Uav) -> bool:
        """Apply/clear when due; returns True if a transition happened."""
        changed = False
        if not self.applied and now >= self.at_time:
            self.apply(uav)
            self.applied = True
            changed = True
        if (
            self.applied
            and not self.cleared
            and self.clear is not None
            and self.clear_at_time is not None
            and now >= self.clear_at_time
        ):
            self.clear(uav)
            self.cleared = True
            changed = True
        return changed


# ------------------------------------------------------- fault factories
def gps_denial(target_uav: str, at_time: float, duration_s: float | None = None) -> Fault:
    """Deny GPS (jamming); optionally restore after ``duration_s``."""

    def apply(uav: Uav) -> None:
        uav.sensors.gps.denied = True

    def clear(uav: Uav) -> None:
        uav.sensors.gps.denied = False

    return Fault(
        name="gps_denial",
        target_uav=target_uav,
        at_time=at_time,
        apply=apply,
        clear=clear if duration_s is not None else None,
        clear_at_time=at_time + duration_s if duration_s is not None else None,
    )


def gps_spoof(target_uav: str, at_time: float, offset_m: tuple[float, float, float]) -> Fault:
    """Apply a fixed GPS spoof offset."""
    return Fault(
        name="gps_spoof",
        target_uav=target_uav,
        at_time=at_time,
        apply=lambda uav: setattr(uav.sensors.gps, "spoof_offset_m", offset_m),
    )


def camera_degradation(target_uav: str, at_time: float, rate_per_s: float = 0.02) -> Fault:
    """Start progressive camera degradation (dirt, condensation)."""
    return Fault(
        name="camera_degradation",
        target_uav=target_uav,
        at_time=at_time,
        apply=lambda uav: setattr(uav.sensors.camera, "degradation_rate", rate_per_s),
    )


def imu_failure(target_uav: str, at_time: float) -> Fault:
    """Hard IMU failure (velocity output freezes at zero)."""
    return Fault(
        name="imu_failure",
        target_uav=target_uav,
        at_time=at_time,
        apply=lambda uav: setattr(uav.sensors.imu, "healthy", False),
    )


def motor_failure(target_uav: str, at_time: float) -> Fault:
    """One motor fails (reported by the flight controller's ESC telemetry)."""

    def apply(uav: Uav) -> None:
        uav.motors_failed += 1

    return Fault(
        name="motor_failure",
        target_uav=target_uav,
        at_time=at_time,
        apply=apply,
    )


def battery_collapse(target_uav: str, at_time: float, soc_drop_to: float = 0.4) -> Fault:
    """Schedule the Fig. 5 style battery cell-group collapse."""

    def apply(uav: Uav) -> None:
        uav.battery.inject_fault(
            BatteryFault(at_time=at_time, soc_drop_to=soc_drop_to)
        )

    # Injection arms the battery's own schedule, so apply slightly early.
    return Fault(
        name="battery_collapse",
        target_uav=target_uav,
        at_time=max(0.0, at_time - 1.0),
        apply=apply,
    )


def comm_blackout(
    bus: DegradedBus, target_uav: str, at_time: float, duration_s: float
) -> Fault:
    """Total radio blackout of one UAV for ``duration_s`` seconds.

    While active nothing reaches or leaves the target over the degraded
    bus — its peers' evidence-staleness watermarks expire and their
    ConSerts demote, exactly the Communication-based Localization path.
    """

    def apply(uav: Uav) -> None:
        bus.set_node_down(target_uav, True)

    def clear(uav: Uav) -> None:
        bus.set_node_down(target_uav, False)

    return Fault(
        name="comm_blackout",
        target_uav=target_uav,
        at_time=at_time,
        apply=apply,
        clear=clear,
        clear_at_time=at_time + duration_s,
    )


def comm_degradation(
    bus: DegradedBus,
    target_uav: str,
    at_time: float,
    loss_probability: float = 0.5,
    duration_s: float | None = None,
) -> Fault:
    """Sustained packet loss on every link to/from one UAV.

    Models interference or antenna damage: each packet touching the
    target is additionally dropped with ``loss_probability``; optionally
    restored after ``duration_s``.
    """

    def apply(uav: Uav) -> None:
        bus.set_node_loss(target_uav, loss_probability)

    def clear(uav: Uav) -> None:
        bus.set_node_loss(target_uav, 0.0)

    return Fault(
        name="comm_degradation",
        target_uav=target_uav,
        at_time=at_time,
        apply=apply,
        clear=clear if duration_s is not None else None,
        clear_at_time=at_time + duration_s if duration_s is not None else None,
    )


def network_partition(
    bus: DegradedBus,
    group_a: tuple[str, ...],
    group_b: tuple[str, ...],
    at_time: float,
    duration_s: float | None = None,
) -> Fault:
    """Split the fleet into two groups that cannot hear each other.

    Models geographic separation or a relay failure. The fault is
    scheduled on the first UAV of ``group_a`` (the schedule needs a
    target) but affects all cross-group traffic.
    """
    if not group_a or not group_b:
        raise ValueError("both partition groups need at least one node")
    handle_box: list = []

    def apply(uav: Uav) -> None:
        handle_box.append(bus.add_partition(tuple(group_a), tuple(group_b)))

    def clear(uav: Uav) -> None:
        if handle_box:
            bus.remove_partition(handle_box.pop())

    return Fault(
        name="network_partition",
        target_uav=group_a[0],
        at_time=at_time,
        apply=apply,
        clear=clear if duration_s is not None else None,
        clear_at_time=at_time + duration_s if duration_s is not None else None,
    )


@dataclass
class FaultSchedule:
    """A reproducible fault campaign over a fleet."""

    faults: list[Fault] = field(default_factory=list)
    log: list[tuple[float, str, str]] = field(default_factory=list)

    def add(self, fault: Fault, uavs: dict[str, Uav] | None = None) -> Fault:
        """Register one fault.

        Pass the fleet as ``uavs`` to validate the target eagerly — the
        one place a typo'd UAV id should fail, instead of blowing up an
        already-running campaign from :meth:`step`.
        """
        if uavs is not None and fault.target_uav not in uavs:
            raise KeyError(f"fault targets unknown UAV {fault.target_uav!r}")
        self.faults.append(fault)
        return fault

    def step(self, now: float, uavs: dict[str, Uav]) -> None:
        """Apply all due faults.

        Completed faults are skipped outright, and a fault whose target is
        (currently) absent from ``uavs`` simply waits — fleets change
        mid-campaign (UAVs land, swap batteries, get decommissioned) and
        that must not crash the run. Validate targets up front via
        ``add(fault, uavs)``.
        """
        for fault in self.faults:
            if fault.done:
                continue
            uav = uavs.get(fault.target_uav)
            if uav is None:
                continue
            if fault.step(now, uav):
                state = "cleared" if fault.cleared else "applied"
                self.log.append((now, fault.name, state))
                event(
                    "warning" if state == "applied" else "info",
                    "uav.faults",
                    f"fault_{state}",
                    sim_time=now,
                    uav=fault.target_uav,
                    fault=fault.name,
                )

    @property
    def all_applied(self) -> bool:
        """Whether every scheduled fault has manifested."""
        return all(f.applied for f in self.faults)
