"""Declarative scenario configuration.

A downstream user should be able to describe a whole experiment — fleet,
environment, persons, faults, attacks — as one JSON-serialisable dict and
get a ready world back, instead of writing builder code. This module is
that loader; it is also how regression scenarios are archived next to the
results they produced.

Schema (all sections optional except ``uavs``)::

    {
      "seed": 7,
      "area_size_m": [400, 300],
      "dt": 0.5,
      "environment": {"wind_mean_mps": 5, "wind_direction_deg": 270,
                       "ambient_c": 30, "visibility": "good"},
      "persons": 8,
      "uavs": [
        {"id": "uav1", "base": [30, -20, 0], "rotors": 4,
         "max_speed_mps": 10},
        ...
      ],
      "faults": [
        {"type": "battery_collapse", "uav": "uav1", "at": 250,
         "soc_drop_to": 0.4},
        {"type": "gps_denial", "uav": "uav2", "at": 60, "duration": 30},
        {"type": "gps_spoof", "uav": "uav3", "at": 100,
         "offset": [40, 0, 0]},
        {"type": "camera_degradation", "uav": "uav1", "at": 10,
         "rate": 0.02},
        {"type": "imu_failure", "uav": "uav2", "at": 80},
        {"type": "motor_failure", "uav": "uav1", "at": 120}
      ],
      "attacks": [
        {"type": "ros_spoofing", "topic": "/uav1/pose", "sender": "uav1",
         "start": 60, "stop": 180, "rate_hz": 5}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.geo import EnuFrame, GeoPoint
from repro.middleware.attacks import SpoofingAttack
from repro.uav.battery import BatterySpec
from repro.uav.environment import Environment, GustProcess
from repro.uav.faults import (
    FaultSchedule,
    battery_collapse,
    camera_degradation,
    gps_denial,
    gps_spoof,
    imu_failure,
    motor_failure,
)
from repro.uav.uav import Uav, UavSpec
from repro.uav.world import World


class ScenarioError(ValueError):
    """Raised for malformed scenario configurations."""


@dataclass
class Scenario:
    """A loaded scenario: the world plus its fault schedule."""

    world: World
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    config: dict[str, Any] = field(default_factory=dict)

    def step(self) -> float:
        """Advance the world and the fault campaign together."""
        now = self.world.step()
        self.faults.step(now, self.world.uavs)
        return now

    def run_until(self, t_end: float, callback=None) -> None:
        """Step to ``t_end`` with the fault campaign active."""
        while self.world.time < t_end:
            self.step()
            if callback is not None:
                callback(self)


def _build_fault(spec: dict[str, Any]):
    kind = spec.get("type")
    uav = spec.get("uav")
    at = spec.get("at")
    if kind is None or uav is None or at is None:
        raise ScenarioError(f"fault needs type/uav/at: {spec!r}")
    if kind == "battery_collapse":
        return battery_collapse(uav, float(at), spec.get("soc_drop_to", 0.4))
    if kind == "gps_denial":
        duration = spec.get("duration")
        return gps_denial(uav, float(at), float(duration) if duration else None)
    if kind == "gps_spoof":
        offset = spec.get("offset")
        if not isinstance(offset, (list, tuple)) or len(offset) != 3:
            raise ScenarioError(f"gps_spoof needs a 3-element offset: {spec!r}")
        return gps_spoof(uav, float(at), tuple(float(v) for v in offset))
    if kind == "camera_degradation":
        return camera_degradation(uav, float(at), spec.get("rate", 0.02))
    if kind == "imu_failure":
        return imu_failure(uav, float(at))
    if kind == "motor_failure":
        return motor_failure(uav, float(at))
    raise ScenarioError(f"unknown fault type {kind!r}")


def load_scenario(config: dict[str, Any]) -> Scenario:
    """Build a runnable scenario from a configuration dict."""
    uav_specs = config.get("uavs")
    if not uav_specs:
        raise ScenarioError("scenario needs a non-empty 'uavs' list")

    seed = int(config.get("seed", 0))
    rng = np.random.default_rng(seed)
    area = tuple(config.get("area_size_m", (400.0, 300.0)))
    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0)),
        rng=rng,
        area_size_m=(float(area[0]), float(area[1])),
        dt=float(config.get("dt", 0.5)),
    )

    env_config = config.get("environment")
    if env_config:
        visibility = env_config.get("visibility", "good")
        world.environment = Environment(
            rng=np.random.default_rng(seed + 1),
            wind_direction_deg=float(env_config.get("wind_direction_deg", 270.0)),
            gusts=GustProcess(
                rng=np.random.default_rng(seed + 2),
                mean_mps=float(env_config.get("wind_mean_mps", 3.0)),
            ),
            ambient_c=float(env_config.get("ambient_c", 25.0)),
            visibility=visibility,
        )

    seen_ids = set()
    for uav_config in uav_specs:
        uav_id = uav_config.get("id")
        if not uav_id:
            raise ScenarioError(f"uav entry needs an 'id': {uav_config!r}")
        if uav_id in seen_ids:
            raise ScenarioError(f"duplicate uav id {uav_id!r}")
        seen_ids.add(uav_id)
        base = tuple(float(v) for v in uav_config.get("base", (0.0, 0.0, 0.0)))
        if len(base) != 3:
            raise ScenarioError(f"{uav_id}: base must have 3 elements")
        uav = Uav(
            spec=UavSpec(
                uav_id=uav_id,
                rotor_count=int(uav_config.get("rotors", 4)),
                base_position=base,
                battery_spec=BatterySpec(),
            ),
            frame=world.frame,
            bus=world.bus,
            rng=rng,
        )
        if "max_speed_mps" in uav_config:
            uav.dynamics.max_speed_mps = float(uav_config["max_speed_mps"])
        world.add_uav(uav)

    n_persons = int(config.get("persons", 0))
    if n_persons:
        world.scatter_persons(n_persons)

    faults = FaultSchedule()
    for fault_spec in config.get("faults", ()):
        fault = _build_fault(fault_spec)
        if fault.target_uav not in world.uavs:
            raise ScenarioError(
                f"fault targets unknown uav {fault.target_uav!r}"
            )
        faults.add(fault)

    for attack_spec in config.get("attacks", ()):
        if attack_spec.get("type") != "ros_spoofing":
            raise ScenarioError(f"unknown attack type {attack_spec!r}")
        world.add_attacker(
            SpoofingAttack(
                bus=world.bus,
                t_start=float(attack_spec.get("start", 0.0)),
                t_stop=float(attack_spec.get("stop", float("inf"))),
                name=attack_spec.get("name", "adversary"),
                topic=attack_spec.get("topic", "/uav1/pose"),
                spoofed_sender=attack_spec.get("sender", "uav1"),
                payload_fn=lambda now: {"forged": True, "t": now},
                rate_hz=float(attack_spec.get("rate_hz", 5.0)),
            )
        )

    return Scenario(world=world, faults=faults, config=dict(config))


def load_scenario_json(text: str) -> Scenario:
    """Load a scenario from a JSON document."""
    try:
        config = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"invalid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise ScenarioError("scenario JSON must be an object")
    return load_scenario(config)
