"""Declarative scenario configuration.

A downstream user should be able to describe a whole experiment — fleet,
environment, persons, faults, attacks — as one JSON-serialisable dict and
get a ready world back, instead of writing builder code. This module is
that loader; it is also how regression scenarios are archived next to the
results they produced.

Schema (all sections optional except ``uavs``)::

    {
      "seed": 7,
      "area_size_m": [400, 300],
      "dt": 0.5,
      "engine": "scalar",  # or "vectorized" (bit-identical, batched)
      "environment": {"wind_mean_mps": 5, "wind_direction_deg": 270,
                       "ambient_c": 30, "visibility": "good"},
      "persons": 8,
      "uavs": [
        {"id": "uav1", "base": [30, -20, 0], "rotors": 4,
         "max_speed_mps": 10},
        ...
      ],
      "faults": [
        {"type": "battery_collapse", "uav": "uav1", "at": 250,
         "soc_drop_to": 0.4},
        {"type": "gps_denial", "uav": "uav2", "at": 60, "duration": 30},
        {"type": "gps_spoof", "uav": "uav3", "at": 100,
         "offset": [40, 0, 0]},
        {"type": "camera_degradation", "uav": "uav1", "at": 10,
         "rate": 0.02},
        {"type": "imu_failure", "uav": "uav2", "at": 80},
        {"type": "motor_failure", "uav": "uav1", "at": 120}
      ],
      "attacks": [
        {"type": "ros_spoofing", "topic": "/uav1/pose", "sender": "uav1",
         "start": 60, "stop": 180, "rate_hz": 5}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.geo import EnuFrame, GeoPoint
from repro.middleware.attacks import SpoofingAttack
from repro.uav.battery import BatterySpec
from repro.uav.environment import Environment, GustProcess
from repro.uav.faults import (
    FaultSchedule,
    battery_collapse,
    camera_degradation,
    gps_denial,
    gps_spoof,
    imu_failure,
    motor_failure,
)
from repro.uav.uav import Uav, UavSpec
from repro.uav.world import ENGINES, World


class ScenarioError(ValueError):
    """Raised for malformed scenario configurations."""


def _number(value: Any, field_name: str) -> float:
    """Coerce one scalar config value, naming the field on failure."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ScenarioError(
            f"{field_name}: expected a number, got {value!r}"
        ) from None


def _integer(value: Any, field_name: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ScenarioError(
            f"{field_name}: expected an integer, got {value!r}"
        ) from None


def _vector(value: Any, length: int, field_name: str) -> tuple[float, ...]:
    """Coerce a fixed-length numeric sequence, naming the field on failure."""
    if not isinstance(value, (list, tuple)) or len(value) != length:
        raise ScenarioError(
            f"{field_name}: expected {length} numbers, got {value!r}"
        )
    return tuple(_number(v, f"{field_name}[{i}]") for i, v in enumerate(value))


@dataclass
class Scenario:
    """A loaded scenario: the world plus its fault schedule."""

    world: World
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    config: dict[str, Any] = field(default_factory=dict)

    def step(self) -> float:
        """Advance the world and the fault campaign together."""
        now = self.world.step()
        self.faults.step(now, self.world.uavs)
        return now

    def run_until(self, t_end: float, callback=None) -> None:
        """Step to ``t_end`` with the fault campaign active."""
        while self.world.time < t_end:
            self.step()
            if callback is not None:
                callback(self)


def _build_fault(spec: dict[str, Any], index: int):
    where = f"faults[{index}]"
    kind = spec.get("type")
    uav = spec.get("uav")
    if kind is None or uav is None or spec.get("at") is None:
        raise ScenarioError(f"{where}: fault needs type/uav/at: {spec!r}")
    at = _number(spec["at"], f"{where}.at")
    if kind == "battery_collapse":
        return battery_collapse(
            uav, at, _number(spec.get("soc_drop_to", 0.4), f"{where}.soc_drop_to")
        )
    if kind == "gps_denial":
        duration = spec.get("duration")
        return gps_denial(
            uav, at,
            _number(duration, f"{where}.duration") if duration else None,
        )
    if kind == "gps_spoof":
        return gps_spoof(uav, at, _vector(spec.get("offset"), 3, f"{where}.offset"))
    if kind == "camera_degradation":
        return camera_degradation(
            uav, at, _number(spec.get("rate", 0.02), f"{where}.rate")
        )
    if kind == "imu_failure":
        return imu_failure(uav, at)
    if kind == "motor_failure":
        return motor_failure(uav, at)
    raise ScenarioError(f"{where}: unknown fault type {kind!r}")


def load_scenario(config: dict[str, Any], engine: str | None = None) -> Scenario:
    """Build a runnable scenario from a configuration dict.

    ``engine`` overrides the config's own ``"engine"`` key (used by the
    CLI ``--engine`` flag and the differential test suite); both default
    to the scalar reference path.
    """
    uav_specs = config.get("uavs")
    if not uav_specs:
        raise ScenarioError("scenario needs a non-empty 'uavs' list")

    seed = _integer(config.get("seed", 0), "seed")
    rng = np.random.default_rng(seed)
    area = _vector(config.get("area_size_m", (400.0, 300.0)), 2, "area_size_m")
    dt = _number(config.get("dt", 0.5), "dt")
    if dt <= 0:
        raise ScenarioError(f"dt: must be positive, got {dt!r}")
    if engine is None:
        engine = config.get("engine", "scalar")
    if engine not in ENGINES:
        raise ScenarioError(
            f"engine: expected one of {ENGINES}, got {engine!r}"
        )
    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0)),
        rng=rng,
        area_size_m=(area[0], area[1]),
        dt=dt,
        engine=engine,
    )

    env_config = config.get("environment")
    if env_config:
        visibility = env_config.get("visibility", "good")
        world.environment = Environment(
            rng=np.random.default_rng(seed + 1),
            wind_direction_deg=_number(
                env_config.get("wind_direction_deg", 270.0),
                "environment.wind_direction_deg",
            ),
            gusts=GustProcess(
                rng=np.random.default_rng(seed + 2),
                mean_mps=_number(
                    env_config.get("wind_mean_mps", 3.0),
                    "environment.wind_mean_mps",
                ),
            ),
            ambient_c=_number(
                env_config.get("ambient_c", 25.0), "environment.ambient_c"
            ),
            visibility=visibility,
        )

    seen_ids = set()
    for position, uav_config in enumerate(uav_specs):
        uav_id = uav_config.get("id")
        if not uav_id:
            raise ScenarioError(
                f"uavs[{position}]: uav entry needs an 'id': {uav_config!r}"
            )
        if uav_id in seen_ids:
            raise ScenarioError(f"uavs[{position}].id: duplicate uav id {uav_id!r}")
        seen_ids.add(uav_id)
        where = f"uavs[{position}] ({uav_id})"
        base = _vector(uav_config.get("base", (0.0, 0.0, 0.0)), 3, f"{where}.base")
        uav = Uav(
            spec=UavSpec(
                uav_id=uav_id,
                rotor_count=_integer(uav_config.get("rotors", 4), f"{where}.rotors"),
                base_position=base,
                battery_spec=BatterySpec(),
            ),
            frame=world.frame,
            bus=world.bus,
            rng=rng,
        )
        if "max_speed_mps" in uav_config:
            uav.dynamics.max_speed_mps = _number(
                uav_config["max_speed_mps"], f"{where}.max_speed_mps"
            )
        world.add_uav(uav)

    n_persons = _integer(config.get("persons", 0), "persons")
    if n_persons:
        world.scatter_persons(n_persons)

    faults = FaultSchedule()
    for index, fault_spec in enumerate(config.get("faults", ())):
        fault = _build_fault(fault_spec, index)
        if fault.target_uav not in world.uavs:
            raise ScenarioError(
                f"faults[{index}].uav: fault targets unknown uav "
                f"{fault.target_uav!r}"
            )
        faults.add(fault)

    for index, attack_spec in enumerate(config.get("attacks", ())):
        where = f"attacks[{index}]"
        if attack_spec.get("type") != "ros_spoofing":
            raise ScenarioError(f"{where}.type: unknown attack type {attack_spec!r}")
        world.add_attacker(
            SpoofingAttack(
                bus=world.bus,
                t_start=_number(attack_spec.get("start", 0.0), f"{where}.start"),
                t_stop=_number(
                    attack_spec.get("stop", float("inf")), f"{where}.stop"
                ),
                name=attack_spec.get("name", "adversary"),
                topic=attack_spec.get("topic", "/uav1/pose"),
                spoofed_sender=attack_spec.get("sender", "uav1"),
                payload_fn=lambda now: {"forged": True, "t": now},
                rate_hz=_number(
                    attack_spec.get("rate_hz", 5.0), f"{where}.rate_hz"
                ),
            )
        )

    return Scenario(world=world, faults=faults, config=dict(config))


def load_scenario_json(text: str, engine: str | None = None) -> Scenario:
    """Load a scenario from a JSON document."""
    try:
        config = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"invalid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise ScenarioError("scenario JSON must be an object")
    return load_scenario(config, engine=engine)
