"""Declarative scenario configuration.

A downstream user should be able to describe a whole experiment — fleet,
environment, persons, faults, attacks — as one JSON-serialisable dict and
get a ready world back, instead of writing builder code. This module is
that loader; it is also how regression scenarios are archived next to the
results they produced.

Schema (all sections optional except ``uavs``)::

    {
      "seed": 7,
      "area_size_m": [400, 300],
      "dt": 0.5,
      "engine": "scalar",  # or "vectorized" (bit-identical, batched)
      "environment": {"wind_mean_mps": 5, "wind_direction_deg": 270,
                       "ambient_c": 30, "visibility": "good"},
      "obstacles": {                       # optional 3D obstacle field
        "cell_m": 4.0, "inflation_m": 3.0, "ceiling_m": 60.0,
        "boxes": [{"min": [100, 100, 0], "max": [140, 160, 30]}],
        "cylinders": [{"center": [220, 80], "radius": 12, "height": 25}]
      },
      "camera": {"half_fov_deg": 35.0, "overlap": 0.15},
      "persons": 8,
      "uavs": [
        {"id": "uav1", "base": [30, -20, 0], "rotors": 4,
         "max_speed_mps": 10,
         "mission": [[120, 80, 25], [260, 140, 25]]},
        ...
      ],
      "faults": [
        {"type": "battery_collapse", "uav": "uav1", "at": 250,
         "soc_drop_to": 0.4},
        {"type": "gps_denial", "uav": "uav2", "at": 60, "duration": 30},
        {"type": "gps_spoof", "uav": "uav3", "at": 100,
         "offset": [40, 0, 0]},
        {"type": "camera_degradation", "uav": "uav1", "at": 10,
         "rate": 0.02},
        {"type": "imu_failure", "uav": "uav2", "at": 80},
        {"type": "motor_failure", "uav": "uav1", "at": 120},
        {"type": "comm_blackout", "uav": "uav2", "at": 40, "duration": 20},
        {"type": "comm_degradation", "uav": "uav1", "at": 30,
         "loss": 0.5, "duration": 25},
        {"type": "network_partition", "group_a": ["uav1"],
         "group_b": ["uav2", "uav3"], "at": 50, "duration": 30}
      ],
      "attacks": [
        {"type": "ros_spoofing", "topic": "/uav1/pose", "sender": "uav1",
         "start": 60, "stop": 180, "rate_hz": 5}
      ],
      "comms": {"seed": 11}   # force a DegradedBus transport
    }

A ``"mission"`` entry preloads a waypoint plan (the UAV takes off in
MISSION mode at t=0); when an ``"obstacles"`` block is present the
mission's legs are routed around the obstacle field by
:mod:`repro.plan` before launch, and the loaded
:class:`~repro.plan.grid.ObstacleField` /
:class:`~repro.sar.coverage.CameraConfig` ride on the world for mission
builders. The comm fault types need a
:class:`~repro.middleware.degraded.DegradedBus` transport; the loader
builds one automatically when any comm fault (or an explicit ``"comms"``
section) is present, seeded from the scenario seed (or
``comms["seed"]``). The ``"description"``, ``"horizon_s"``, and
``"chaos"`` keys are ignored by the loader — they carry provenance and
fuzzing metadata for :mod:`repro.harness.oracles` /
:mod:`repro.harness.fuzz` — but are schema-checked by
:func:`lint_scenario` (the ``python -m repro scenario validate`` CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.geo import EnuFrame, GeoPoint
from repro.middleware.attacks import SpoofingAttack
from repro.plan import ObstacleField, PlanError, route_waypoints
from repro.sar.coverage import CameraConfig
from repro.middleware.degraded import DegradedBus
from repro.uav.battery import BatterySpec
from repro.uav.environment import Environment, GustProcess
from repro.uav.faults import (
    FaultSchedule,
    battery_collapse,
    camera_degradation,
    comm_blackout,
    comm_degradation,
    gps_denial,
    gps_spoof,
    imu_failure,
    motor_failure,
    network_partition,
)
from repro.uav.uav import Uav, UavSpec
from repro.uav.world import ENGINES, World

#: Fault types that act on the transport rather than a vehicle; their
#: presence makes the loader build a :class:`DegradedBus`.
COMM_FAULT_TYPES = ("comm_blackout", "comm_degradation", "network_partition")


class ScenarioError(ValueError):
    """Raised for malformed scenario configurations."""


def _number(value: Any, field_name: str) -> float:
    """Coerce one scalar config value, naming the field on failure."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ScenarioError(
            f"{field_name}: expected a number, got {value!r}"
        ) from None


def _integer(value: Any, field_name: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ScenarioError(
            f"{field_name}: expected an integer, got {value!r}"
        ) from None


def _vector(value: Any, length: int, field_name: str) -> tuple[float, ...]:
    """Coerce a fixed-length numeric sequence, naming the field on failure."""
    if not isinstance(value, (list, tuple)) or len(value) != length:
        raise ScenarioError(
            f"{field_name}: expected {length} numbers, got {value!r}"
        )
    return tuple(_number(v, f"{field_name}[{i}]") for i, v in enumerate(value))


@dataclass
class Scenario:
    """A loaded scenario: the world plus its fault schedule."""

    world: World
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    config: dict[str, Any] = field(default_factory=dict)

    def step(self) -> float:
        """Advance the world and the fault campaign together."""
        now = self.world.step()
        self.faults.step(now, self.world.uavs)
        return now

    def run_until(self, t_end: float, callback=None) -> None:
        """Step to ``t_end`` with the fault campaign active."""
        while self.world.time < t_end:
            self.step()
            if callback is not None:
                callback(self)


def _partition_group(
    value: Any, uav_ids: set[str], field_name: str
) -> tuple[str, ...]:
    """Coerce one partition side: a non-empty list of known UAV ids."""
    if not isinstance(value, (list, tuple)) or not value:
        raise ScenarioError(
            f"{field_name}: expected a non-empty list of uav ids, got {value!r}"
        )
    for i, member in enumerate(value):
        if member not in uav_ids:
            raise ScenarioError(
                f"{field_name}[{i}]: partition names unknown uav {member!r}"
            )
    return tuple(value)


def _build_fault(
    spec: dict[str, Any],
    index: int,
    bus: DegradedBus | None,
    uav_ids: set[str],
):
    where = f"faults[{index}]"
    kind = spec.get("type")
    if kind in COMM_FAULT_TYPES and bus is None:
        raise ScenarioError(  # pragma: no cover — loader always builds one
            f"{where}: comm fault {kind!r} needs a DegradedBus transport"
        )
    if kind == "network_partition":
        # Partitions split the fleet; they have groups, not a single target.
        if spec.get("at") is None:
            raise ScenarioError(f"{where}: fault needs type/at: {spec!r}")
        at = _number(spec["at"], f"{where}.at")
        group_a = _partition_group(spec.get("group_a"), uav_ids, f"{where}.group_a")
        group_b = _partition_group(spec.get("group_b"), uav_ids, f"{where}.group_b")
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise ScenarioError(
                f"{where}.group_b: partition groups overlap on "
                f"{sorted(overlap)!r}"
            )
        duration = spec.get("duration")
        return network_partition(
            bus, group_a, group_b, at,
            _number(duration, f"{where}.duration") if duration is not None
            else None,
        )
    uav = spec.get("uav")
    if kind is None or uav is None or spec.get("at") is None:
        raise ScenarioError(f"{where}: fault needs type/uav/at: {spec!r}")
    at = _number(spec["at"], f"{where}.at")
    if kind == "comm_blackout":
        if spec.get("duration") is None:
            raise ScenarioError(f"{where}.duration: comm_blackout needs one")
        return comm_blackout(
            bus, uav, at, _number(spec["duration"], f"{where}.duration")
        )
    if kind == "comm_degradation":
        duration = spec.get("duration")
        loss = _number(spec.get("loss", 0.5), f"{where}.loss")
        if not 0.0 <= loss <= 1.0:
            raise ScenarioError(
                f"{where}.loss: must be in [0, 1], got {loss!r}"
            )
        return comm_degradation(
            bus, uav, at, loss,
            _number(duration, f"{where}.duration") if duration is not None
            else None,
        )
    if kind == "battery_collapse":
        return battery_collapse(
            uav, at, _number(spec.get("soc_drop_to", 0.4), f"{where}.soc_drop_to")
        )
    if kind == "gps_denial":
        duration = spec.get("duration")
        return gps_denial(
            uav, at,
            _number(duration, f"{where}.duration") if duration else None,
        )
    if kind == "gps_spoof":
        return gps_spoof(uav, at, _vector(spec.get("offset"), 3, f"{where}.offset"))
    if kind == "camera_degradation":
        return camera_degradation(
            uav, at, _number(spec.get("rate", 0.02), f"{where}.rate")
        )
    if kind == "imu_failure":
        return imu_failure(uav, at)
    if kind == "motor_failure":
        return motor_failure(uav, at)
    raise ScenarioError(f"{where}: unknown fault type {kind!r}")


def _build_obstacles(
    spec: Any, area: tuple[float, float]
) -> ObstacleField:
    """Build the 3D obstacle field from an ``"obstacles"`` config block."""
    if not isinstance(spec, dict):
        raise ScenarioError(
            f"obstacles: expected an object, got {spec!r}"
        )
    cell = _number(spec.get("cell_m", 4.0), "obstacles.cell_m")
    if cell <= 0.0:
        raise ScenarioError(f"obstacles.cell_m: must be positive, got {cell!r}")
    inflation = _number(spec.get("inflation_m", 3.0), "obstacles.inflation_m")
    if inflation < 0.0:
        raise ScenarioError(
            f"obstacles.inflation_m: must be >= 0, got {inflation!r}"
        )
    box_specs = spec.get("boxes", ())
    if not isinstance(box_specs, (list, tuple)):
        raise ScenarioError(
            f"obstacles.boxes: expected a list, got {box_specs!r}"
        )
    boxes = []
    top = 0.0
    for i, box in enumerate(box_specs):
        where = f"obstacles.boxes[{i}]"
        if not isinstance(box, dict):
            raise ScenarioError(f"{where}: expected an object, got {box!r}")
        lo = _vector(box.get("min"), 3, f"{where}.min")
        hi = _vector(box.get("max"), 3, f"{where}.max")
        if any(h <= l for l, h in zip(lo, hi)):
            raise ScenarioError(
                f"{where}: min {lo!r} must be strictly below max {hi!r}"
            )
        boxes.append((lo, hi))
        top = max(top, hi[2])
    cyl_specs = spec.get("cylinders", ())
    if not isinstance(cyl_specs, (list, tuple)):
        raise ScenarioError(
            f"obstacles.cylinders: expected a list, got {cyl_specs!r}"
        )
    cylinders = []
    for i, cyl in enumerate(cyl_specs):
        where = f"obstacles.cylinders[{i}]"
        if not isinstance(cyl, dict):
            raise ScenarioError(f"{where}: expected an object, got {cyl!r}")
        center = _vector(cyl.get("center"), 2, f"{where}.center")
        radius = _number(cyl.get("radius"), f"{where}.radius")
        height = _number(cyl.get("height"), f"{where}.height")
        if radius <= 0.0 or height <= 0.0:
            raise ScenarioError(
                f"{where}: radius/height must be positive, got "
                f"{radius!r}/{height!r}"
            )
        cylinders.append((center, radius, height))
        top = max(top, height)
    # Default ceiling leaves a guaranteed-free layer above the tallest
    # obstacle (even after inflation) so free space stays connected and
    # the planner can always route over the top.
    ceiling = _number(
        spec.get("ceiling_m", top + inflation + 2.0 * cell), "obstacles.ceiling_m"
    )
    if ceiling <= 0.0:
        raise ScenarioError(
            f"obstacles.ceiling_m: must be positive, got {ceiling!r}"
        )
    return ObstacleField.build(
        size_m=(area[0], area[1], ceiling),
        cell_m=cell,
        boxes=boxes,
        cylinders=cylinders,
        inflation_m=inflation,
    )


def _build_camera(spec: Any) -> CameraConfig:
    """Build the camera geometry from a ``"camera"`` config block."""
    if not isinstance(spec, dict):
        raise ScenarioError(f"camera: expected an object, got {spec!r}")
    half_fov = _number(spec.get("half_fov_deg", 35.0), "camera.half_fov_deg")
    if not 0.0 < half_fov < 90.0:
        raise ScenarioError(
            f"camera.half_fov_deg: must be in (0, 90), got {half_fov!r}"
        )
    overlap = _number(spec.get("overlap", 0.15), "camera.overlap")
    if not 0.0 <= overlap < 1.0:
        raise ScenarioError(
            f"camera.overlap: must be in [0, 1), got {overlap!r}"
        )
    return CameraConfig(half_fov_deg=half_fov, overlap=overlap)


def load_scenario(config: dict[str, Any], engine: str | None = None) -> Scenario:
    """Build a runnable scenario from a configuration dict.

    ``engine`` overrides the config's own ``"engine"`` key (used by the
    CLI ``--engine`` flag and the differential test suite); both default
    to the scalar reference path.
    """
    uav_specs = config.get("uavs")
    if not uav_specs:
        raise ScenarioError("scenario needs a non-empty 'uavs' list")

    seed = _integer(config.get("seed", 0), "seed")
    rng = np.random.default_rng(seed)
    area = _vector(config.get("area_size_m", (400.0, 300.0)), 2, "area_size_m")
    dt = _number(config.get("dt", 0.5), "dt")
    if dt <= 0:
        raise ScenarioError(f"dt: must be positive, got {dt!r}")
    if engine is None:
        engine = config.get("engine", "scalar")
    if engine not in ENGINES:
        raise ScenarioError(
            f"engine: expected one of {ENGINES}, got {engine!r}"
        )

    # Comm faults act on the transport, so they force a DegradedBus; an
    # explicit "comms" section does too (e.g. to pin its loss-draw seed).
    comms_config = config.get("comms")
    fault_specs = config.get("faults", ())
    if not isinstance(fault_specs, (list, tuple)):
        raise ScenarioError(
            f"faults: expected a list of fault objects, got {fault_specs!r}"
        )
    needs_degraded = comms_config is not None or any(
        isinstance(spec, dict) and spec.get("type") in COMM_FAULT_TYPES
        for spec in fault_specs
    )
    degraded_bus: DegradedBus | None = None
    bus_kwargs = {}
    if needs_degraded:
        comm_seed = _integer(
            (comms_config or {}).get("seed", seed + 3), "comms.seed"
        )
        degraded_bus = DegradedBus(rng=np.random.default_rng(comm_seed))
        bus_kwargs["bus"] = degraded_bus

    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0)),
        rng=rng,
        area_size_m=(area[0], area[1]),
        dt=dt,
        engine=engine,
        **bus_kwargs,
    )

    obstacles_config = config.get("obstacles")
    if obstacles_config is not None:
        world.obstacles = _build_obstacles(obstacles_config, (area[0], area[1]))
    camera_config = config.get("camera")
    if camera_config is not None:
        world.camera = _build_camera(camera_config)

    env_config = config.get("environment")
    if env_config:
        visibility = env_config.get("visibility", "good")
        world.environment = Environment(
            rng=np.random.default_rng(seed + 1),
            wind_direction_deg=_number(
                env_config.get("wind_direction_deg", 270.0),
                "environment.wind_direction_deg",
            ),
            gusts=GustProcess(
                rng=np.random.default_rng(seed + 2),
                mean_mps=_number(
                    env_config.get("wind_mean_mps", 3.0),
                    "environment.wind_mean_mps",
                ),
            ),
            ambient_c=_number(
                env_config.get("ambient_c", 25.0), "environment.ambient_c"
            ),
            visibility=visibility,
        )

    seen_ids = set()
    for position, uav_config in enumerate(uav_specs):
        uav_id = uav_config.get("id")
        if not uav_id:
            raise ScenarioError(
                f"uavs[{position}]: uav entry needs an 'id': {uav_config!r}"
            )
        if uav_id in seen_ids:
            raise ScenarioError(f"uavs[{position}].id: duplicate uav id {uav_id!r}")
        seen_ids.add(uav_id)
        where = f"uavs[{position}] ({uav_id})"
        base = _vector(uav_config.get("base", (0.0, 0.0, 0.0)), 3, f"{where}.base")
        uav = Uav(
            spec=UavSpec(
                uav_id=uav_id,
                rotor_count=_integer(uav_config.get("rotors", 4), f"{where}.rotors"),
                base_position=base,
                battery_spec=BatterySpec(),
            ),
            frame=world.frame,
            bus=world.bus,
            rng=rng,
        )
        if "max_speed_mps" in uav_config:
            uav.dynamics.max_speed_mps = _number(
                uav_config["max_speed_mps"], f"{where}.max_speed_mps"
            )
        world.add_uav(uav)
        mission = uav_config.get("mission")
        if mission is not None:
            if not isinstance(mission, (list, tuple)) or not mission:
                raise ScenarioError(
                    f"{where}.mission: expected a non-empty waypoint list, "
                    f"got {mission!r}"
                )
            waypoints = [
                _vector(wp, 3, f"{where}.mission[{i}]")
                for i, wp in enumerate(mission)
            ]
            if world.obstacles is not None:
                # Route the mission legs around the obstacle field so the
                # archived waypoints may cut through buildings but the
                # flown plan never does.
                try:
                    waypoints = route_waypoints(world.obstacles, base, waypoints)
                except PlanError as exc:
                    raise ScenarioError(f"{where}.mission: {exc}") from exc
            uav.start_mission(waypoints)

    n_persons = _integer(config.get("persons", 0), "persons")
    if n_persons:
        world.scatter_persons(n_persons)

    faults = FaultSchedule()
    for index, fault_spec in enumerate(fault_specs):
        fault = _build_fault(fault_spec, index, degraded_bus, seen_ids)
        if fault.target_uav not in world.uavs:
            raise ScenarioError(
                f"faults[{index}].uav: fault targets unknown uav "
                f"{fault.target_uav!r}"
            )
        faults.add(fault)

    for index, attack_spec in enumerate(config.get("attacks", ())):
        where = f"attacks[{index}]"
        if attack_spec.get("type") != "ros_spoofing":
            raise ScenarioError(f"{where}.type: unknown attack type {attack_spec!r}")
        sender = attack_spec.get("sender", "uav1")
        if sender not in world.uavs:
            raise ScenarioError(
                f"{where}.sender: attack impersonates unknown uav {sender!r}"
            )
        world.add_attacker(
            SpoofingAttack(
                bus=world.bus,
                t_start=_number(attack_spec.get("start", 0.0), f"{where}.start"),
                t_stop=_number(
                    attack_spec.get("stop", float("inf")), f"{where}.stop"
                ),
                name=attack_spec.get("name", "adversary"),
                topic=attack_spec.get("topic", "/uav1/pose"),
                spoofed_sender=sender,
                payload_fn=lambda now: {"forged": True, "t": now},
                rate_hz=_number(
                    attack_spec.get("rate_hz", 5.0), f"{where}.rate_hz"
                ),
            )
        )

    return Scenario(world=world, faults=faults, config=dict(config))


def load_scenario_json(text: str, engine: str | None = None) -> Scenario:
    """Load a scenario from a JSON document."""
    try:
        config = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"invalid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise ScenarioError("scenario JSON must be an object")
    return load_scenario(config, engine=engine)


# ------------------------------------------------------------------ linting
#: Key vocabulary per schema section. ``load_scenario`` ignores unknown
#: keys (forward compatibility); the linter flags them, because in a
#: hand-edited file an unknown key is almost always a typo'd known one.
_KNOWN_TOP_KEYS = frozenset(
    {
        "description", "seed", "area_size_m", "dt", "engine", "environment",
        "persons", "uavs", "faults", "attacks", "comms", "horizon_s", "chaos",
        "obstacles", "camera",
    }
)
_KNOWN_ENV_KEYS = frozenset(
    {"wind_mean_mps", "wind_direction_deg", "ambient_c", "visibility"}
)
_KNOWN_OBSTACLES_KEYS = frozenset(
    {"cell_m", "inflation_m", "ceiling_m", "boxes", "cylinders"}
)
_KNOWN_BOX_KEYS = frozenset({"min", "max"})
_KNOWN_CYLINDER_KEYS = frozenset({"center", "radius", "height"})
_KNOWN_CAMERA_KEYS = frozenset({"half_fov_deg", "overlap"})
_KNOWN_UAV_KEYS = frozenset({"id", "base", "rotors", "max_speed_mps", "mission"})
_KNOWN_FAULT_KEYS: dict[str, frozenset[str]] = {
    "battery_collapse": frozenset({"type", "uav", "at", "soc_drop_to"}),
    "gps_denial": frozenset({"type", "uav", "at", "duration"}),
    "gps_spoof": frozenset({"type", "uav", "at", "offset"}),
    "camera_degradation": frozenset({"type", "uav", "at", "rate"}),
    "imu_failure": frozenset({"type", "uav", "at"}),
    "motor_failure": frozenset({"type", "uav", "at"}),
    "comm_blackout": frozenset({"type", "uav", "at", "duration"}),
    "comm_degradation": frozenset({"type", "uav", "at", "loss", "duration"}),
    "network_partition": frozenset(
        {"type", "at", "duration", "group_a", "group_b"}
    ),
}
_KNOWN_ATTACK_KEYS = frozenset(
    {"type", "topic", "sender", "start", "stop", "rate_hz", "name"}
)
_KNOWN_COMMS_KEYS = frozenset({"seed"})
_KNOWN_CHAOS_KEYS = frozenset({"mode", "uav", "at", "magnitude", "armed_file"})
_CHAOS_MODES = ("teleport", "soc_jump", "exception")


def _lint_unknown_keys(
    section: Any, known: frozenset[str], where: str, problems: list[str]
) -> None:
    if not isinstance(section, dict):
        return  # the loader reports the type error with more context
    for key in sorted(set(section) - known):
        problems.append(f"{where}.{key}: unknown key (known: {sorted(known)})")


def lint_scenario(config: Any) -> list[str]:
    """Lint a scenario config; returns a list of problems (empty = clean).

    Two layers: every :class:`ScenarioError` the loader itself raises
    (the config is actually built, so this catches everything the loader
    validates — duplicate ids, unknown fault targets, malformed vectors),
    plus schema checks the loader deliberately skips: unknown keys in any
    section, unknown chaos modes, and a non-positive fuzzing horizon.
    Backs ``python -m repro scenario validate`` — the pre-flight check
    for hand-edited and fuzz-minimized scenario files alike.
    """
    if not isinstance(config, dict):
        return [f"scenario must be a JSON object, got {type(config).__name__}"]
    problems: list[str] = []
    _lint_unknown_keys(config, _KNOWN_TOP_KEYS, "scenario", problems)
    _lint_unknown_keys(
        config.get("environment"), _KNOWN_ENV_KEYS, "environment", problems
    )
    _lint_unknown_keys(config.get("comms"), _KNOWN_COMMS_KEYS, "comms", problems)
    obstacles = config.get("obstacles")
    if obstacles is not None:
        _lint_unknown_keys(
            obstacles, _KNOWN_OBSTACLES_KEYS, "obstacles", problems
        )
        if isinstance(obstacles, dict):
            boxes = obstacles.get("boxes")
            if isinstance(boxes, (list, tuple)):
                for i, box in enumerate(boxes):
                    _lint_unknown_keys(
                        box, _KNOWN_BOX_KEYS, f"obstacles.boxes[{i}]", problems
                    )
            cylinders = obstacles.get("cylinders")
            if isinstance(cylinders, (list, tuple)):
                for i, cyl in enumerate(cylinders):
                    _lint_unknown_keys(
                        cyl, _KNOWN_CYLINDER_KEYS,
                        f"obstacles.cylinders[{i}]", problems,
                    )
    camera = config.get("camera")
    if camera is not None:
        _lint_unknown_keys(camera, _KNOWN_CAMERA_KEYS, "camera", problems)
    uavs = config.get("uavs")
    if isinstance(uavs, (list, tuple)):
        for i, uav in enumerate(uavs):
            _lint_unknown_keys(uav, _KNOWN_UAV_KEYS, f"uavs[{i}]", problems)
    faults = config.get("faults")
    if isinstance(faults, (list, tuple)):
        for i, fault in enumerate(faults):
            if not isinstance(fault, dict):
                continue
            known = _KNOWN_FAULT_KEYS.get(fault.get("type"))
            if known is not None:
                _lint_unknown_keys(fault, known, f"faults[{i}]", problems)
    attacks = config.get("attacks")
    if isinstance(attacks, (list, tuple)):
        for i, attack in enumerate(attacks):
            _lint_unknown_keys(
                attack, _KNOWN_ATTACK_KEYS, f"attacks[{i}]", problems
            )
    chaos = config.get("chaos")
    if chaos is not None:
        _lint_unknown_keys(chaos, _KNOWN_CHAOS_KEYS, "chaos", problems)
        if isinstance(chaos, dict) and chaos.get("mode") not in _CHAOS_MODES:
            problems.append(
                f"chaos.mode: expected one of {_CHAOS_MODES}, "
                f"got {chaos.get('mode')!r}"
            )
    horizon = config.get("horizon_s")
    if horizon is not None:
        try:
            if float(horizon) <= 0:
                problems.append(
                    f"horizon_s: must be positive, got {horizon!r}"
                )
        except (TypeError, ValueError):
            problems.append(f"horizon_s: expected a number, got {horizon!r}")
    try:
        load_scenario(config)
    except ScenarioError as exc:
        problems.append(str(exc))
    return problems
