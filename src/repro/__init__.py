"""sesame-repro: safe, secure and dependable multi-UAV systems for SAR.

A from-scratch reproduction of the SESAME runtime-assurance stack
presented in "Multi-Partner Project: Safe, Secure and Dependable
Multi-UAV Systems for Search and Rescue Operations" (DATE 2025).

Public API highlights:

- :mod:`repro.core` — ConSerts, the EDDI runtime, the mission decider.
- :mod:`repro.safedrones` — Markov-based runtime reliability monitoring.
- :mod:`repro.safeml` — statistical-distance ML safety monitoring.
- :mod:`repro.deepknowledge` — neuron-level DNN testing and uncertainty.
- :mod:`repro.sinadra` — Bayesian-network dynamic risk assessment.
- :mod:`repro.security` — attack trees, IDS, Security EDDI, spoof detection.
- :mod:`repro.localization` — collaborative localization and safe landing.
- :mod:`repro.uav`, :mod:`repro.middleware`, :mod:`repro.platform`,
  :mod:`repro.sar` — the simulation and platform substrate.
- :mod:`repro.experiments` — drivers reproducing every paper figure.
"""

__version__ = "1.0.0"

from repro.geo import EnuFrame, GeoPoint, haversine_m
from repro.scenario import Scenario, ScenarioError, load_scenario, load_scenario_json

__all__ = [
    "EnuFrame",
    "GeoPoint",
    "haversine_m",
    "Scenario",
    "ScenarioError",
    "load_scenario",
    "load_scenario_json",
    "__version__",
]
