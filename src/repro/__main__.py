"""Command-line entry point: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro fig4          # platform demonstration panel
    python -m repro fig5          # battery-fault availability
    python -m repro sar-accuracy  # Sec. V-B altitude adaptation
    python -m repro fig6          # spoofing trajectory deviation
    python -m repro fig7          # collaborative safe landing
    python -m repro conserts      # Fig. 1 scenario matrix
    python -m repro comm          # degraded-comm availability sweep
    python -m repro fleet-scale   # SAR coverage time vs fleet size

    python -m repro fig5 --engine vectorized           # batched fleet physics

    python -m repro campaign --list                    # sweep catalogue + presets
    python -m repro campaign monte-carlo --workers 4   # sharded sweep
    python -m repro campaign monte-carlo --resume      # finish a broken run
    python -m repro campaign swarm-sizing --preset smoke
                                  # leader-follower tasking over the degraded
                                  # bus: latency/coverage vs K, rho, P
    python -m repro campaign planner-ablation --preset smoke
                                  # obstacle-aware planning: fixed patterns vs
                                  # planned tours on path length/time-to-find/energy

    python -m repro serve --port 8080 --workers 2      # campaign service:
                                  # POST /jobs, GET /jobs/<id>, NDJSON
                                  # /jobs/<id>/stream, DELETE /jobs/<id>,
                                  # GET /experiments, GET /metrics

    python -m repro campaign fuzz --profile smoke --count 200 --workers 4
                                  # generated scenarios vs the oracle suite;
                                  # violations are shrunk to artifacts/repro_<seed>.json

    python -m repro scenario validate scenarios/windy_night_sar.json
    python -m repro scenario replay artifacts/repro_123.json   # re-run a repro
                                  # under the oracles; exits 1 on violation

    python -m repro fig5 --trace fig5.jsonl            # capture an obs trace
    python -m repro obs summarize fig5.jsonl           # render it
    python -m repro obs chrome fig5.jsonl              # chrome://tracing JSON
"""

from __future__ import annotations

import argparse
import sys


def _run_fig4(seed: int, engine: str = "scalar") -> None:
    from repro.experiments.fig4_platform import run_fig4_platform_demo

    print(run_fig4_platform_demo(seed=seed, engine=engine).render())


def _run_fig5(seed: int, engine: str = "scalar") -> None:
    from repro.experiments import run_fig5_battery_experiment

    result = run_fig5_battery_experiment(seed=seed, engine=engine)
    print(f"nominal mission:        {result.nominal_mission_s:.0f} s")
    crossing = result.with_sesame.threshold_crossing_time
    print(f"PoF 0.9 crossing:       {crossing:.0f} s" if crossing else "no crossing")
    print(
        f"availability:           {result.availability_with:.3f} with SESAME, "
        f"{result.availability_without:.3f} without (paper: ~0.91 vs ~0.80)"
    )
    print(f"completion improvement: {100 * result.completion_improvement:.1f}%")


def _run_sar_accuracy(seed: int) -> None:
    from repro.experiments import run_sar_accuracy_experiment

    result = run_sar_accuracy_experiment(seed=seed)
    print(f"uncertainty high/final: {result.uncertainty_high:.3f} / "
          f"{result.uncertainty_final:.3f} (paper: >0.90 / ~0.75)")
    print(f"accuracy with/without:  {result.accuracy_with_sesame:.4f} / "
          f"{result.accuracy_without_sesame:.4f} (paper: 0.998 / lower)")
    print(f"operating altitude:     {result.final_altitude_m:.0f} m")


def _run_fig6(seed: int, engine: str = "scalar") -> None:
    from repro.experiments import run_fig6_spoofing_experiment

    result = run_fig6_spoofing_experiment(seed=seed, engine=engine)
    print(f"max trajectory deviation: {result.max_deviation_m:.1f} m")
    print(f"Security EDDI latency:    {result.eddi_latency_s:.1f} s")
    print(f"IMU cross-check latency:  {result.sensor_latency_s:.1f} s")


def _run_fig7(seed: int, engine: str = "scalar") -> None:
    from repro.experiments import run_fig7_collaborative_landing

    result = run_fig7_collaborative_landing(seed=seed, engine=engine)
    print(f"landed:                {result.cl_report.landed}")
    print(f"landing error:         {result.cl_report.final_error_m:.2f} m")
    print(f"baseline (no CL):      {result.baseline_error_m:.2f} m")


def _run_comm(seed: int, engine: str = "scalar") -> None:
    from repro.experiments import run_comm_availability_experiment

    result = run_comm_availability_experiment(seed=seed, engine=engine)
    print("loss    delivery (exp/meas)   availability   demotions")
    for loss, expected, measured, availability, demotions in result.summary_rows():
        print(
            f"{loss:<7.2f} {expected:.3f} / {measured:.3f}"
            f"        {availability:<14.3f} {demotions}"
        )


def _run_conserts(seed: int) -> None:
    from repro.experiments import run_conserts_scenario_matrix

    for result in run_conserts_scenario_matrix():
        degraded = result.conditions[0]
        print(
            f"rel={degraded.reliability:<6} gps={str(degraded.gps_ok):<5} "
            f"attack={str(degraded.attack):<5} cam={str(degraded.camera_ok):<5} "
            f"-> {result.guarantees[0].value:<28} {result.verdict.value}"
        )


def _run_fleet_scale(seed: int, engine: str = "vectorized") -> None:
    from repro.experiments import run_fleet_scale_experiment

    result = run_fleet_scale_experiment(seed=seed, engine=engine)
    print(result.render())


COMMANDS = {
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "sar-accuracy": _run_sar_accuracy,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "conserts": _run_conserts,
    "comm": _run_comm,
    "fleet-scale": _run_fleet_scale,
}

# Commands whose experiment builds a simulation world and therefore takes
# the --engine flag (scalar reference vs bit-identical vectorized batch).
ENGINE_COMMANDS = frozenset({"fig4", "fig5", "fig6", "fig7", "comm", "fleet-scale"})


def _write_metrics_dump(path: str, snapshot: dict | None) -> None:
    """Write a Prometheus-style text dump of a metrics snapshot."""
    from pathlib import Path

    from repro.obs.export import prometheus_text
    from repro.obs.metrics import empty_snapshot

    text = prometheus_text(snapshot if snapshot is not None else empty_snapshot())
    Path(path).write_text(text, encoding="utf-8")
    print(f"metrics: {path}")


def _run_single(name: str, args: argparse.Namespace) -> int:
    """Run one single-shot experiment, optionally under an obs session."""
    from repro import obs

    kwargs = {"engine": args.engine} if name in ENGINE_COMMANDS else {}
    if args.trace is None and args.metrics is None:
        COMMANDS[name](args.seed, **kwargs)
        return 0
    with obs.capture(
        trace_path=args.trace,
        meta={"experiment": name, "seed": args.seed},
    ) as captured:
        COMMANDS[name](args.seed, **kwargs)
    if args.trace is not None:
        print(f"trace: {args.trace}")
    if args.metrics is not None:
        _write_metrics_dump(args.metrics, captured["payload"]["metrics"])
    return 0


def _run_fuzz_cli(args: argparse.Namespace, policy) -> int:
    """``python -m repro campaign fuzz``: generate, check, shrink."""
    import json as json_module

    from repro.harness.campaign import CampaignAborted
    from repro.harness.fuzz import run_fuzz
    from repro.harness.fuzz.campaign import summarize_fuzz

    chaos = json_module.loads(args.chaos) if args.chaos else None
    try:
        outcome = run_fuzz(
            profile=args.profile,
            count=args.count,
            root_seed=args.seed,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            manifest_path=args.manifest,
            artifacts_dir=args.artifacts,
            chaos=chaos,
            shrink=not args.no_shrink,
            policy=policy,
            resume=args.resume,
        )
    except CampaignAborted as exc:
        print(f"campaign aborted: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        print(
            "\nfuzzing interrupted — completed scenarios are checkpointed; "
            "rerun to pick up where it left off",
            file=sys.stderr,
        )
        return 130
    result = outcome.campaign
    print(
        f"campaign fuzz grid={result.grid} root_seed={result.root_seed} "
        f"workers={result.workers}"
    )
    totals = result.manifest["totals"]
    print(
        f"samples: {totals['samples']} ({totals['cached']} cached, "
        f"{totals['failed']} failed)  "
        f"wall: {totals['wall_s']:.2f} s  fingerprint: {result.fingerprint}"
    )
    if result.manifest_path is not None:
        print(f"manifest: {result.manifest_path}")
    print(summarize_fuzz(result))
    for seed, path in outcome.repro_paths.items():
        shrunk = outcome.shrink_results[seed]
        print(
            f"minimized repro ({shrunk.oracle}, {shrunk.checks} shrink "
            f"checks): {path}"
        )
        print(f"  replay with: python -m repro scenario replay {path}")
    if not outcome.ok:
        print(
            f"{len(outcome.violations)} oracle-violating and "
            f"{len(outcome.crashes)} crashed scenario(s) quarantined",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_catalog() -> None:
    """The experiment catalogue with grid presets (also GET /experiments)."""
    from repro.experiments.campaigns import experiment_catalog

    for entry in experiment_catalog():
        presets = ", ".join(entry["presets"])
        print(f"{entry['name']:<14} [{presets}]  {entry['describe']}")


def _run_campaign_cli(args: argparse.Namespace) -> int:
    """``python -m repro campaign <experiment>``: a sharded, cached sweep."""
    from repro.experiments.campaigns import get_experiment
    from repro.harness.campaign import CampaignAborted, FaultPolicy, run_campaign

    if args.list or args.campaign_experiment in (None, "list"):
        _print_catalog()
        return 0
    try:
        experiment = get_experiment(args.campaign_experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    policy = FaultPolicy(
        timeout_s=args.timeout,
        max_attempts=args.retries + 1,
        backoff_s=args.backoff,
        max_failures=args.max_failures,
    )
    if experiment.name == "fuzz":
        return _run_fuzz_cli(args, policy)
    try:
        result = run_campaign(
            experiment,
            grid=args.grid,
            root_seed=args.seed,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            manifest_path=args.manifest,
            observe=args.metrics is not None,
            trace_path=args.trace,
            policy=policy,
            resume=args.resume,
            batch=args.batch,
        )
    except CampaignAborted as exc:
        print(f"campaign aborted: {exc}", file=sys.stderr)
        print(
            "fix the experiment, then rerun with --resume to finish the grid",
            file=sys.stderr,
        )
        return 3
    except KeyboardInterrupt:
        print(
            "\ncampaign interrupted — completed samples are checkpointed; "
            "rerun to pick up where it left off (--resume also retries "
            "quarantined failures)",
            file=sys.stderr,
        )
        return 130
    totals = result.manifest["totals"]
    print(
        f"campaign {result.experiment} grid={result.grid} "
        f"root_seed={result.root_seed} workers={result.workers}"
    )
    print(
        f"samples: {totals['samples']} ({totals['cached']} cached, "
        f"{totals['failed']} failed)  "
        f"wall: {totals['wall_s']:.2f} s  fingerprint: {result.fingerprint}"
    )
    if result.manifest_path is not None:
        print(f"manifest: {result.manifest_path}")
    if args.trace is not None:
        print(f"trace: {args.trace}")
    if args.metrics is not None:
        _write_metrics_dump(args.metrics, result.manifest.get("metrics"))
    if experiment.summarize is not None:
        print(experiment.summarize(result))
    if totals["failed"]:
        for record in result.failed_records:
            error = record.error or {}
            print(
                f"sample {record.index} failed after {record.attempts} "
                f"attempt(s): [{error.get('kind', '?')}] "
                f"{error.get('message', '')}",
                file=sys.stderr,
            )
        print(
            f"{totals['failed']} sample(s) quarantined; "
            "rerun with --resume after fixing the experiment",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_scenario_cli(args: argparse.Namespace) -> int:
    """``python -m repro scenario validate|replay <file.json>``."""
    import json
    from pathlib import Path

    path = Path(args.file)
    try:
        config = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"{path}: cannot read: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
        return 1
    if not isinstance(config, dict):
        print(f"{path}: expected a JSON object at the top level", file=sys.stderr)
        return 1

    if args.scenario_command == "validate":
        from repro.scenario import lint_scenario

        problems = lint_scenario(config)
        if problems:
            print(f"{path}: {len(problems)} problem(s)", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        uavs = config.get("uavs", [])
        print(
            f"{path}: OK — {len(uavs)} uav(s), "
            f"{len(config.get('faults', []))} fault(s), "
            f"{len(config.get('attacks', []))} attack(s)"
            + (", chaos script present" if config.get("chaos") else "")
        )
        return 0

    # replay: run the scenario under the full property-oracle suite.
    from repro.harness.oracles import run_scenario_oracles
    from repro.scenario import ScenarioError

    try:
        report = run_scenario_oracles(config, horizon_s=args.horizon)
    except ScenarioError as exc:
        print(f"{path}: scenario does not load: {exc}", file=sys.stderr)
        return 1
    print(
        f"{path}: {report.steps} steps over {report.horizon_s:g} s sim "
        f"time, oracles: {', '.join(report.checked)}"
    )
    if report.passed:
        print("all oracles passed")
        return 0
    for violation in report.violations:
        where = f" uav={violation.uav}" if violation.uav else ""
        when = f" t={violation.time:g}" if violation.time is not None else ""
        print(
            f"VIOLATION [{violation.oracle}]{when}{where}: "
            f"{violation.message}",
            file=sys.stderr,
        )
    if report.suppressed:
        print(
            f"({report.suppressed} further violation(s) suppressed)",
            file=sys.stderr,
        )
    return 1


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a paper experiment from the SESAME reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    defaults = {"fig4": 42, "fig5": 3, "sar-accuracy": 5, "fig6": 9, "fig7": 13,
                "conserts": 0, "comm": 7, "fleet-scale": 21}
    for name in sorted(COMMANDS):
        single = sub.add_parser(name, help=f"run the {name} experiment")
        single.add_argument(
            "--seed", type=int, default=defaults[name], help="override the seed"
        )
        if name in ENGINE_COMMANDS:
            single.add_argument(
                "--engine",
                choices=("scalar", "vectorized"),
                default="vectorized" if name == "fleet-scale" else "scalar",
                help="world step implementation (bit-identical results)",
            )
        single.add_argument(
            "--trace", default=None, metavar="PATH",
            help="capture an observability trace (JSONL) to PATH",
        )
        single.add_argument(
            "--metrics", default=None, metavar="PATH",
            help="write a Prometheus-style metrics dump to PATH",
        )
    sub.add_parser("list", help="enumerate the single-run experiments")

    campaign = sub.add_parser(
        "campaign", help="run a sharded, cached experiment sweep"
    )
    campaign.add_argument(
        "campaign_experiment",
        metavar="experiment",
        nargs="?",
        default=None,
        help="campaign name (omit or use --list for the catalogue)",
    )
    campaign.add_argument(
        "--list", action="store_true",
        help="enumerate registered experiments with their grid presets",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1)"
    )
    campaign.add_argument(
        "--seed", type=int, default=0, help="campaign root seed (default 0)"
    )
    campaign.add_argument(
        "--grid", "--preset", dest="grid", default="default",
        help="grid preset: smoke/default/full (--preset is an alias)",
    )
    campaign.add_argument(
        "--cache-dir", default=".repro-cache", help="result cache directory"
    )
    campaign.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    campaign.add_argument(
        "--manifest", default=None, help="write the run manifest JSON here"
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="re-run only failed or missing grid points against the cache",
    )
    campaign.add_argument(
        "--batch", action="store_true",
        help=(
            "run pending samples as stacked batches (experiments with a "
            "sample-axis batch hook; bit-identical results and fingerprint)"
        ),
    )
    campaign.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-sample wall-clock timeout in seconds (terminates the worker)",
    )
    campaign.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry each failing sample up to N extra times (same seed)",
    )
    campaign.add_argument(
        "--backoff", type=float, default=0.5, metavar="S",
        help="base delay between retries; attempt k waits S*k (default 0.5)",
    )
    campaign.add_argument(
        "--max-failures", type=int, default=None, metavar="N",
        help="abort once more than N samples are quarantined this run",
    )
    campaign.add_argument(
        "--trace", default=None, metavar="PATH",
        help="capture a campaign observability trace (JSONL) to PATH",
    )
    campaign.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the merged Prometheus-style metrics dump to PATH",
    )
    fuzz_opts = campaign.add_argument_group(
        "fuzz options (campaign fuzz only)"
    )
    fuzz_opts.add_argument(
        "--profile", choices=("smoke", "default", "hostile"),
        default="default", help="scenario generator profile",
    )
    fuzz_opts.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="generated scenarios to run (default: profile-specific)",
    )
    fuzz_opts.add_argument(
        "--artifacts", default="artifacts", metavar="DIR",
        help="directory for minimized repro_<seed>.json files",
    )
    fuzz_opts.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without shrinking them",
    )
    fuzz_opts.add_argument(
        "--chaos", default=None, metavar="JSON",
        help="scenario chaos block to arm in every generated scenario "
             '(self-test, e.g. \'{"mode": "teleport", "at": 10}\')',
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service (async job scheduler + HTTP API)",
        description=(
            "Serve campaigns over HTTP: POST /jobs submits a validated "
            "job, GET /jobs/<id> polls it, GET /jobs/<id>/stream tails "
            "per-sample results as NDJSON, DELETE /jobs/<id> cancels "
            "cooperatively (resumable), GET /experiments lists valid "
            "payloads (same catalogue as 'campaign --list'), and "
            "GET /metrics exposes Prometheus text. SIGINT/SIGTERM shut "
            "down gracefully; interrupted jobs resume on restart with "
            "identical manifest fingerprints."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port; 0 picks an ephemeral port (default 8080)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent campaign jobs (each may shard further; default 2)",
    )
    serve.add_argument(
        "--cache-root", default=".repro-service/cache",
        help="result-cache root, sharded per tenant (default .repro-service/cache)",
    )
    serve.add_argument(
        "--jobs-root", default=".repro-service/jobs",
        help="durable job records + streams + manifests (default .repro-service/jobs)",
    )
    serve.add_argument(
        "--grace", type=float, default=5.0, metavar="S",
        help="graceful-shutdown budget before terminating jobs (default 5)",
    )
    serve.add_argument(
        "--list", action="store_true",
        help="print the experiment catalogue with grid presets and exit",
    )

    scenario = sub.add_parser(
        "scenario", help="validate or replay a scenario JSON file"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    validate = scenario_sub.add_parser(
        "validate",
        help="lint a scenario file; nonzero exit with a readable report",
    )
    validate.add_argument("file", help="scenario JSON file")
    replay = scenario_sub.add_parser(
        "replay",
        help="run a scenario under the property-oracle suite "
             "(exits 1 on any violation)",
    )
    replay.add_argument("file", help="scenario JSON file")
    replay.add_argument(
        "--horizon", type=float, default=None, metavar="S",
        help="override the simulated horizon in seconds",
    )

    from repro.obs.cli import add_obs_parser

    add_obs_parser(sub)

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(COMMANDS):
            print(name)
        return 0
    if args.command == "campaign":
        return _run_campaign_cli(args)
    if args.command == "serve":
        if args.list:
            _print_catalog()
            return 0
        from repro.service.api import serve as run_serve

        return run_serve(
            host=args.host,
            port=args.port,
            max_jobs=args.workers,
            cache_root=args.cache_root,
            jobs_root=args.jobs_root,
            grace_s=args.grace,
        )
    if args.command == "scenario":
        return _run_scenario_cli(args)
    if args.command == "obs":
        from repro.obs.cli import run_obs_cli

        return run_obs_cli(args)
    return _run_single(args.command, args)


if __name__ == "__main__":
    sys.exit(main())
