"""UAV manager: connection, identification, and command translation.

"UAV Manager manages connections to UAVs, identifying each by type, ID,
equipment, and battery level. It handles UAV operations, translating user
commands into UAV-compatible instructions." (Sec. IV-A)

Subscribes to each UAV's telemetry topic, maintains a live registry, and
translates high-level operator commands into flight-mode / plan commands
on the vehicle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middleware.rosbus import Message, RosBus
from repro.platform.database import DatabaseManager
from repro.uav.uav import FlightMode, Telemetry, Uav


@dataclass
class UavRecord:
    """Registry entry for one connected UAV."""

    uav_id: str
    uav_type: str
    equipment: list[str]
    battery_percent: float = 100.0
    mode: str = FlightMode.IDLE.value
    last_seen: float = 0.0
    position_enu: tuple[float, float, float] = (0.0, 0.0, 0.0)

    @property
    def connected(self) -> bool:
        """Connected if telemetry arrived (last_seen updated at least once)."""
        return self.last_seen > 0.0


@dataclass
class UavManager:
    """Connection and command hub for the fleet."""

    bus: RosBus
    database: DatabaseManager
    uavs: dict[str, Uav] = field(default_factory=dict)
    registry: dict[str, UavRecord] = field(default_factory=dict)

    def connect(
        self, uav: Uav, uav_type: str = "DJI-M300-RTK", equipment: list[str] | None = None
    ) -> UavRecord:
        """Register a UAV and subscribe to its telemetry."""
        uav_id = uav.spec.uav_id
        if uav_id in self.uavs:
            raise ValueError(f"UAV {uav_id!r} already connected")
        self.uavs[uav_id] = uav
        record = UavRecord(
            uav_id=uav_id,
            uav_type=uav_type,
            equipment=equipment or ["rgb_camera", "thermal", "gps", "jetson_xavier_nx"],
        )
        self.registry[uav_id] = record
        self.bus.subscribe(
            f"/{uav_id}/telemetry", node="uav_manager", callback=self._on_telemetry
        )
        return record

    def _on_telemetry(self, message: Message) -> None:
        sample = message.data
        if not isinstance(sample, Telemetry):
            return
        record = self.registry.get(sample.uav_id)
        if record is None:
            return
        record.battery_percent = 100.0 * sample.battery_soc
        record.mode = sample.mode
        record.last_seen = sample.stamp
        record.position_enu = sample.position_enu
        # Report location data to the database manager, as the paper notes.
        self.database.put(
            "uav_locations",
            sample.uav_id,
            {"position": sample.position_enu, "stamp": sample.stamp},
        )

    # ------------------------------------------------------------- commands
    def command(self, uav_id: str, command: str, **kwargs) -> None:
        """Translate a high-level operator command into UAV instructions.

        Supported commands: ``start_mission`` (waypoints=...), ``hold``,
        ``resume``, ``return_to_base``, ``emergency_land``, ``goto``
        (setpoint=...).
        """
        uav = self.uavs.get(uav_id)
        if uav is None:
            raise KeyError(f"unknown UAV {uav_id!r}")
        if command == "start_mission":
            uav.start_mission(kwargs["waypoints"])
        elif command == "hold":
            uav.command_mode(FlightMode.HOLD)
        elif command == "resume":
            uav.command_mode(FlightMode.MISSION)
        elif command == "return_to_base":
            uav.command_mode(FlightMode.RETURN_TO_BASE)
        elif command == "emergency_land":
            uav.command_mode(FlightMode.EMERGENCY_LAND)
        elif command == "goto":
            uav.command_guided_setpoint(kwargs["setpoint"])
        else:
            raise ValueError(f"unknown command {command!r}")

    def broadcast(self, command: str, **kwargs) -> None:
        """Send a command to every connected UAV."""
        for uav_id in self.uavs:
            self.command(uav_id, command, **kwargs)

    def fleet_status(self) -> list[UavRecord]:
        """Registry snapshot sorted by UAV id."""
        return [self.registry[uav_id] for uav_id in sorted(self.registry)]
