"""Web-GUI JSON API: the data layer behind the monitoring panels.

The paper's web GUI "for monitoring UAVs via any browser, showing
operations, positions, and video feeds" (Sec. IV-A) is, architecturally,
a thin renderer over structured platform state. This module provides that
state as plain JSON-serialisable dictionaries — fleet status, mission
panel, per-UAV tracks, alert feeds — so any frontend (or test) can
consume it. It is the machine-readable sibling of
:mod:`repro.platform.gui`'s fixed-width text panels.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.decider import MissionDecision
from repro.platform.gcs import GroundControlStation
from repro.platform.recorder import FlightRecorder
from repro.platform.uav_manager import UavManager
from repro.security.ids import IntrusionDetectionSystem


@dataclass
class WebApi:
    """Aggregates platform components into GUI-consumable JSON payloads."""

    uav_manager: UavManager
    gcs: GroundControlStation | None = None
    recorder: FlightRecorder | None = None
    ids: IntrusionDetectionSystem | None = None

    # ------------------------------------------------------------- fleet
    def fleet_status(self) -> dict:
        """The per-UAV status boxes (Fig. 4's blue panels)."""
        return {
            "uavs": [
                {
                    "id": record.uav_id,
                    "type": record.uav_type,
                    "mode": record.mode,
                    "battery_percent": round(record.battery_percent, 1),
                    "position": {
                        "east": round(record.position_enu[0], 2),
                        "north": round(record.position_enu[1], 2),
                        "up": round(record.position_enu[2], 2),
                    },
                    "connected": record.connected,
                    "last_seen": record.last_seen,
                    "equipment": list(record.equipment),
                }
                for record in self.uav_manager.fleet_status()
            ]
        }

    def mission_panel(self, decision: MissionDecision) -> dict:
        """The SESAME output box (Fig. 4's red panel)."""
        return {
            "verdict": decision.verdict.value,
            "uavs": {
                uav_id: guarantee.value
                for uav_id, guarantee in sorted(decision.uav_guarantees.items())
            },
            "dropped": sorted(decision.dropped_uavs),
            "takeover_capacity": sorted(decision.takeover_uavs),
        }

    # -------------------------------------------------------------- feeds
    def tracks(self, max_points: int = 500) -> dict:
        """Downsampled flight tracks for the map view (the scan lines)."""
        if self.recorder is None:
            return {"tracks": {}}
        out = {}
        for uav_id, records in self.recorder.records.items():
            stride = max(1, len(records) // max_points)
            out[uav_id] = [
                {"t": r.stamp, "east": round(r.east, 1), "north": round(r.north, 1),
                 "up": round(r.up, 1)}
                for r in records[::stride]
            ]
        return {"tracks": out}

    def alert_feed(self, limit: int = 50) -> dict:
        """Most recent IDS alerts for the security panel."""
        if self.ids is None:
            return {"alerts": []}
        return {
            "alerts": [
                {
                    "type": alert.alert_type,
                    "topic": alert.topic,
                    "suspect": alert.suspect,
                    "detail": alert.detail,
                    "stamp": alert.stamp,
                }
                for alert in self.ids.alerts[-limit:]
            ]
        }

    def log_feed(self, limit: int = 50) -> dict:
        """Most recent GCS log entries."""
        if self.gcs is None:
            return {"logs": []}
        return {
            "logs": [
                {
                    "stamp": entry.stamp,
                    "source": entry.source,
                    "level": entry.level,
                    "message": entry.message,
                }
                for entry in self.gcs.logs[-limit:]
            ]
        }

    # ---------------------------------------------------------- dashboard
    def dashboard(self, decision: MissionDecision | None = None) -> str:
        """One JSON document with every panel — the page payload."""
        payload = {
            "fleet": self.fleet_status(),
            "tracks": self.tracks(),
            "alerts": self.alert_feed(),
            "logs": self.log_feed(),
        }
        if decision is not None:
            payload["mission"] = self.mission_panel(decision)
        return json.dumps(payload)
