"""Multi-UAV Control Platform (paper Sec. IV-A).

The five-layer platform architecture: graphical user interfaces (web
monitor + first-responder control), UAV ground control station, database
manager (origin-checked API), UAV manager (connection/command layer), and
task manager (algorithms as services). The layers are faithful to the
paper's component responsibilities while running fully in-process on the
simulation substrate.
"""

from repro.platform.database import DatabaseManager, DbRequest, AccessDenied
from repro.platform.uav_manager import UavManager, UavRecord
from repro.platform.task_manager import TaskManager, TaskService
from repro.platform.gcs import GroundControlStation, LogEntry
from repro.platform.gui import (
    render_fleet_status,
    render_guarantee_timeline,
    render_mission_panel,
)
from repro.platform.recorder import FlightKpis, FlightRecorder, TelemetryRecord
from repro.platform.api import WebApi
from repro.platform.map_view import MapView

__all__ = [
    "DatabaseManager",
    "DbRequest",
    "AccessDenied",
    "UavManager",
    "UavRecord",
    "TaskManager",
    "TaskService",
    "GroundControlStation",
    "LogEntry",
    "render_fleet_status",
    "render_mission_panel",
    "render_guarantee_timeline",
    "FlightKpis",
    "FlightRecorder",
    "TelemetryRecord",
    "WebApi",
    "MapView",
]
