"""Task manager: multi-UAV algorithms exposed as services.

"Task Manager ... makes UAV and multi-UAV cooperation algorithms
accessible through graphical user interfaces. It provides algorithms as
services and supports extension without system disruption. Algorithms
selected by users receive data from the UAV Manager and other system
components, execute at the ground station, and are translated into
commands for the UAVs." (Sec. IV-A)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.platform.uav_manager import UavManager
from repro.sar.coverage import boustrophedon_path, partition_area


@dataclass
class TaskService:
    """One registered algorithm service.

    ``run(uav_manager, params)`` computes per-UAV commands and returns a
    result payload for the GUI.
    """

    name: str
    description: str
    run: Callable[[UavManager, dict[str, Any]], Any]


@dataclass
class TaskManager:
    """Registry and dispatcher for algorithm services."""

    uav_manager: UavManager
    services: dict[str, TaskService] = field(default_factory=dict)
    run_log: list[tuple[str, dict[str, Any]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.register(
            TaskService(
                name="sar_coverage",
                description="Partition the search area and start coverage scan",
                run=_sar_coverage_service,
            )
        )

    def register(self, service: TaskService) -> None:
        """Add a service; extension never disturbs existing services."""
        if service.name in self.services:
            raise ValueError(f"service {service.name!r} already registered")
        self.services[service.name] = service

    def available_services(self) -> list[str]:
        """Names of all registered services."""
        return sorted(self.services)

    def execute(self, name: str, params: dict[str, Any] | None = None) -> Any:
        """Run a service by name with GUI-supplied parameters."""
        if name not in self.services:
            raise KeyError(f"unknown service {name!r}")
        params = params or {}
        self.run_log.append((name, params))
        return self.services[name].run(self.uav_manager, params)


def _sar_coverage_service(uav_manager: UavManager, params: dict[str, Any]) -> dict[str, Any]:
    """Built-in SAR coverage task: strip partition + boustrophedon start."""
    area = params.get("area_size_m", (400.0, 300.0))
    altitude = params.get("altitude_m", 20.0)
    uav_ids = sorted(uav_manager.uavs)
    if not uav_ids:
        raise RuntimeError("no UAVs connected")
    strips = partition_area(area, len(uav_ids))
    assignments = {}
    for uav_id, bounds in zip(uav_ids, strips):
        path = boustrophedon_path(bounds, altitude)
        uav_manager.command(uav_id, "start_mission", waypoints=path)
        assignments[uav_id] = {"bounds": bounds, "waypoints": len(path)}
    return {"assignments": assignments, "altitude_m": altitude}
