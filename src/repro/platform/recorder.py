"""Flight recorder: mission logging and post-flight analysis.

The paper's ground control stations "automate the logging, management,
and monitoring of UAV operations" (Sec. IV-A). The recorder is the
logging half: it subscribes to every UAV's telemetry, persists an
append-only record stream (JSON-serialisable), and computes the
post-flight key performance indicators the GCS dashboards show —
per-UAV flight time, distance, energy, mode occupancy, and fleet
timeline export for the GUI track plots.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.middleware.rosbus import Message, RosBus
from repro.uav.uav import Telemetry


@dataclass(frozen=True)
class TelemetryRecord:
    """One persisted telemetry sample (flattened, JSON-friendly)."""

    uav_id: str
    stamp: float
    mode: str
    east: float
    north: float
    up: float
    battery_soc: float
    battery_temp_c: float
    gps_valid: bool

    def to_json(self) -> str:
        """One JSONL line."""
        return json.dumps(self.__dict__)

    @classmethod
    def from_json(cls, line: str) -> "TelemetryRecord":
        """Parse one JSONL line."""
        return cls(**json.loads(line))


@dataclass(frozen=True)
class FlightKpis:
    """Post-flight key performance indicators for one UAV."""

    uav_id: str
    flight_time_s: float
    distance_m: float
    energy_used_fraction: float
    mode_occupancy_s: dict[str, float]
    min_battery_soc: float
    max_battery_temp_c: float


@dataclass
class FlightRecorder:
    """Records fleet telemetry from the bus and analyses it afterwards."""

    bus: RosBus
    records: dict[str, list[TelemetryRecord]] = field(default_factory=dict)

    def watch(self, uav_id: str) -> None:
        """Start recording one UAV's telemetry topic."""
        self.records.setdefault(uav_id, [])
        self.bus.subscribe(
            f"/{uav_id}/telemetry", node="flight_recorder", callback=self._on_telemetry
        )

    def _on_telemetry(self, message: Message) -> None:
        sample = message.data
        if not isinstance(sample, Telemetry):
            return
        east, north, up = sample.position_enu
        self.records.setdefault(sample.uav_id, []).append(
            TelemetryRecord(
                uav_id=sample.uav_id,
                stamp=sample.stamp,
                mode=sample.mode,
                east=east,
                north=north,
                up=up,
                battery_soc=sample.battery_soc,
                battery_temp_c=sample.battery_temp_c,
                gps_valid=sample.gps.valid,
            )
        )

    # ------------------------------------------------------------ analysis
    def kpis(self, uav_id: str) -> FlightKpis:
        """Compute post-flight KPIs for one UAV."""
        records = self.records.get(uav_id, [])
        if len(records) < 2:
            raise ValueError(f"not enough records for {uav_id!r}")
        distance = 0.0
        occupancy: dict[str, float] = {}
        for a, b in zip(records, records[1:]):
            distance += math.dist(
                (a.east, a.north, a.up), (b.east, b.north, b.up)
            )
            occupancy[a.mode] = occupancy.get(a.mode, 0.0) + (b.stamp - a.stamp)
        return FlightKpis(
            uav_id=uav_id,
            flight_time_s=records[-1].stamp - records[0].stamp,
            distance_m=distance,
            energy_used_fraction=max(
                0.0, records[0].battery_soc - records[-1].battery_soc
            ),
            mode_occupancy_s=occupancy,
            min_battery_soc=min(r.battery_soc for r in records),
            max_battery_temp_c=max(r.battery_temp_c for r in records),
        )

    def track(self, uav_id: str) -> list[tuple[float, float, float]]:
        """The recorded (east, north, up) track for GUI plotting."""
        return [(r.east, r.north, r.up) for r in self.records.get(uav_id, [])]

    # -------------------------------------------------------- persistence
    def export_jsonl(self, uav_id: str) -> str:
        """Serialise one UAV's records as JSONL."""
        return "\n".join(r.to_json() for r in self.records.get(uav_id, []))

    @classmethod
    def import_jsonl(cls, bus: RosBus, uav_id: str, text: str) -> "FlightRecorder":
        """Rebuild a recorder from exported JSONL (post-flight analysis)."""
        recorder = cls(bus=bus)
        recorder.records[uav_id] = [
            TelemetryRecord.from_json(line)
            for line in text.splitlines()
            if line.strip()
        ]
        return recorder
