"""Database manager with origin-checked API access.

"Database manager provides an API for database access, allowing UAVs and
software clients to make asynchronous data requests. It verifies that
requests come from within the network to prevent external access. For
instance, UAVs report their location data to the database manager, which
processes and saves it." (Sec. IV-A)

The store is an in-memory collection/record model with a request API that
enforces network-origin checking, mirroring the paper's access control.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Any


class AccessDenied(PermissionError):
    """Raised when a request originates outside the trusted network."""


@dataclass(frozen=True)
class DbRequest:
    """One API request: origin address plus operation payload."""

    origin_ip: str
    operation: str  # "put" | "get" | "query" | "delete"
    collection: str
    key: str | None = None
    value: Any = None


@dataclass
class DatabaseManager:
    """In-memory store fronted by the origin-checked request API."""

    trusted_network: str = "10.0.0.0/24"
    collections: dict[str, dict[str, Any]] = field(default_factory=dict)
    audit_log: list[tuple[str, str, str]] = field(default_factory=list)

    def _check_origin(self, origin_ip: str) -> None:
        network = ipaddress.ip_network(self.trusted_network)
        try:
            address = ipaddress.ip_address(origin_ip)
        except ValueError as exc:
            raise AccessDenied(f"malformed origin address {origin_ip!r}") from exc
        if address not in network:
            raise AccessDenied(
                f"origin {origin_ip} outside trusted network {self.trusted_network}"
            )

    def handle(self, request: DbRequest) -> Any:
        """Process one request; raises :class:`AccessDenied` for outsiders."""
        self._check_origin(request.origin_ip)
        self.audit_log.append((request.origin_ip, request.operation, request.collection))
        collection = self.collections.setdefault(request.collection, {})
        if request.operation == "put":
            if request.key is None:
                raise ValueError("put requires a key")
            collection[request.key] = request.value
            return True
        if request.operation == "get":
            if request.key is None:
                raise ValueError("get requires a key")
            return collection.get(request.key)
        if request.operation == "query":
            return dict(collection)
        if request.operation == "delete":
            if request.key is None:
                raise ValueError("delete requires a key")
            return collection.pop(request.key, None) is not None
        raise ValueError(f"unknown operation {request.operation!r}")

    # Convenience wrappers used by in-network platform services. ---------
    def put(self, collection: str, key: str, value: Any, origin_ip: str = "10.0.0.2") -> None:
        """Store a record from a trusted service."""
        self.handle(DbRequest(origin_ip, "put", collection, key, value))

    def get(self, collection: str, key: str, origin_ip: str = "10.0.0.2") -> Any:
        """Fetch a record from a trusted service."""
        return self.handle(DbRequest(origin_ip, "get", collection, key))

    def query(self, collection: str, origin_ip: str = "10.0.0.2") -> dict[str, Any]:
        """Snapshot a whole collection."""
        return self.handle(DbRequest(origin_ip, "query", collection))
