"""ASCII map renderer — the Fig. 4 operations view.

The paper's Fig. 4 shows "the multi-UAV platform [coordinating] these
three UAVs as they run the SAR algorithm, scanning the designated area
(represented by the red, light red, and green lines) and searching for
people, indicated by red dots". This renderer reproduces that panel as
text: per-UAV scan tracks (distinct glyphs), current UAV positions,
persons (found/unfound), and the area frame — the character-cell
equivalent of the web GUI's map widget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uav.world import World

TRACK_GLYPHS = ["1", "2", "3", "4", "5", "6"]
UAV_GLYPH = "@"
PERSON_UNFOUND = "x"
PERSON_FOUND = "O"


@dataclass
class MapView:
    """Renders a world snapshot to a character grid."""

    width: int = 72
    height: int = 24

    def _to_cell(
        self, east: float, north: float, area: tuple[float, float]
    ) -> tuple[int, int] | None:
        east_max, north_max = area
        if not (0.0 <= east <= east_max and 0.0 <= north <= north_max):
            return None
        col = min(self.width - 1, int(east / east_max * self.width))
        # North up: row 0 is the top of the map.
        row = min(self.height - 1, int((1.0 - north / north_max) * self.height))
        return row, col

    def render(self, world: World, tracks: dict[str, list] | None = None) -> str:
        """Render the current world; optional recorded tracks underlay.

        ``tracks`` maps uav_id to a list of (east, north, up) samples
        (e.g. from the flight recorder); without it, each UAV's own
        ``trajectory`` is used.
        """
        grid = [[" "] * self.width for _ in range(self.height)]
        area = world.area_size_m

        # Scan tracks, one glyph per UAV.
        uav_ids = sorted(world.uavs)
        for i, uav_id in enumerate(uav_ids):
            glyph = TRACK_GLYPHS[i % len(TRACK_GLYPHS)]
            if tracks is not None:
                points = [(p[0], p[1]) for p in tracks.get(uav_id, ())]
            else:
                points = [(p[0], p[1]) for p in world.uavs[uav_id].trajectory]
            for east, north in points:
                cell = self._to_cell(east, north, area)
                if cell is not None:
                    grid[cell[0]][cell[1]] = glyph

        # Persons over the tracks.
        for person in world.persons:
            cell = self._to_cell(person.position[0], person.position[1], area)
            if cell is not None:
                grid[cell[0]][cell[1]] = (
                    PERSON_FOUND if person.detected else PERSON_UNFOUND
                )

        # Current UAV positions on top.
        for uav_id in uav_ids:
            east, north, _ = world.uavs[uav_id].dynamics.position
            cell = self._to_cell(east, north, area)
            if cell is not None:
                grid[cell[0]][cell[1]] = UAV_GLYPH

        border = "+" + "-" * self.width + "+"
        lines = [border]
        lines.extend("|" + "".join(row) + "|" for row in grid)
        lines.append(border)
        legend = (
            f"@ UAV   {PERSON_FOUND} person found   {PERSON_UNFOUND} person missing   "
            + "  ".join(
                f"{TRACK_GLYPHS[i % len(TRACK_GLYPHS)]} {uav_id} track"
                for i, uav_id in enumerate(uav_ids)
            )
        )
        lines.append(legend)
        return "\n".join(lines)
