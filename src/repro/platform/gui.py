"""Lightweight status rendering — the platform's GUI layer.

The paper's web GUI shows "operations, positions, and video feeds"; the
control GUI adds task assignment. In this reproduction the GUI layer is a
pair of pure text renderers over the same data the real panels display
(Fig. 4's blue status boxes and the red SESAME output box), keeping the
layer "lightweight in processing" as the paper requires.
"""

from __future__ import annotations

from repro.core.decider import MissionDecision
from repro.core.eddi import Eddi
from repro.platform.uav_manager import UavRecord


def render_fleet_status(records: list[UavRecord]) -> str:
    """Render the per-UAV status boxes as a fixed-width table."""
    header = f"{'UAV':<10} {'TYPE':<14} {'MODE':<16} {'BATT':>6} {'EAST':>8} {'NORTH':>8} {'ALT':>6}"
    lines = [header, "-" * len(header)]
    for record in records:
        east, north, alt = record.position_enu
        lines.append(
            f"{record.uav_id:<10} {record.uav_type:<14} {record.mode:<16} "
            f"{record.battery_percent:>5.0f}% {east:>8.1f} {north:>8.1f} {alt:>6.1f}"
        )
    return "\n".join(lines)


def render_mission_panel(decision: MissionDecision) -> str:
    """Render the SESAME output box: mission verdict + per-UAV guarantees."""
    lines = [f"MISSION: {decision.verdict.value}"]
    for uav_id in sorted(decision.uav_guarantees):
        guarantee = decision.uav_guarantees[uav_id]
        marker = "*" if uav_id in decision.dropped_uavs else " "
        lines.append(f" {marker} {uav_id}: {guarantee.value}")
    if decision.dropped_uavs:
        lines.append(f"dropped: {', '.join(sorted(decision.dropped_uavs))}")
    if decision.takeover_uavs:
        lines.append(f"takeover capacity: {', '.join(sorted(decision.takeover_uavs))}")
    return "\n".join(lines)


def render_guarantee_timeline(eddi: Eddi) -> str:
    """Render an EDDI's guarantee transitions as a text timeline.

    One line per transition (the response log), plus the total time spent
    under each guarantee — the audit view an assurance engineer reads
    after a mission.
    """
    lines = [f"EDDI {eddi.name} — guarantee timeline"]
    for response in eddi.response_log:
        previous = response.previous.value if response.previous else "(start)"
        lines.append(
            f"  t={response.stamp:8.1f}s  {previous} -> {response.guarantee.value}"
        )
    seen = []
    for _, guarantee in eddi.guarantee_trace:
        if guarantee not in seen:
            seen.append(guarantee)
    if eddi.guarantee_trace:
        lines.append("  time in guarantee:")
        for guarantee in seen:
            lines.append(
                f"    {guarantee.value:<32} {eddi.time_in_guarantee(guarantee):8.1f} s"
            )
    return "\n".join(lines)
