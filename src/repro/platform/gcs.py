"""UAV Ground Control Station.

"UAV Ground Control Stations automates the logging, management, and
monitoring of UAV operations to support mission goals such as maximizing
area coverage, improving communication, reducing evacuation time,
enhancing safety, and minimizing operator workload." (Sec. IV-A)

Aggregates telemetry into mission logs, tracks fleet health flags, and
hosts the EDDI deciders on the ground side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decider import MissionDecider, MissionDecision
from repro.middleware.rosbus import Message, RosBus
from repro.platform.uav_manager import UavManager
from repro.uav.uav import Telemetry


@dataclass(frozen=True)
class LogEntry:
    """One structured GCS log record."""

    stamp: float
    source: str
    level: str  # "info" | "warning" | "critical"
    message: str


@dataclass
class GroundControlStation:
    """Mission-side aggregation, logging, and decision hosting."""

    bus: RosBus
    uav_manager: UavManager
    decider: MissionDecider = field(default_factory=MissionDecider)
    logs: list[LogEntry] = field(default_factory=list)
    low_battery_warned: set[str] = field(default_factory=set)
    low_battery_threshold: float = 0.25

    def watch_uav(self, uav_id: str) -> None:
        """Subscribe to a UAV's telemetry for logging and health flags."""
        self.bus.subscribe(f"/{uav_id}/telemetry", node="gcs", callback=self._on_telemetry)

    def _on_telemetry(self, message: Message) -> None:
        sample = message.data
        if not isinstance(sample, Telemetry):
            return
        if (
            sample.battery_soc < self.low_battery_threshold
            and sample.uav_id not in self.low_battery_warned
        ):
            self.low_battery_warned.add(sample.uav_id)
            self.log(
                sample.stamp,
                sample.uav_id,
                "warning",
                f"battery low: {100 * sample.battery_soc:.0f}%",
            )

    def log(self, stamp: float, source: str, level: str, message: str) -> LogEntry:
        """Append a structured log entry."""
        if level not in ("info", "warning", "critical"):
            raise ValueError(f"unknown log level {level!r}")
        entry = LogEntry(stamp=stamp, source=source, level=level, message=message)
        self.logs.append(entry)
        return entry

    def logs_at_level(self, level: str) -> list[LogEntry]:
        """All log entries at one severity level."""
        return [e for e in self.logs if e.level == level]

    def mission_decision(self) -> MissionDecision:
        """Run the mission-level decider over all registered UAV networks."""
        return self.decider.decide()
