"""Empirical cumulative distribution functions.

All SafeML distance measures are functionals of the two samples' ECDFs
evaluated on the pooled support; this module provides that shared
machinery once, vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """The ECDF of a one-dimensional sample.

    ``sorted_values`` is the sorted sample; evaluation uses right-continuous
    step semantics, F(x) = (# values <= x) / n.
    """

    sorted_values: np.ndarray

    @classmethod
    def from_sample(cls, sample: np.ndarray) -> "Ecdf":
        """Build an ECDF from an unsorted 1-D sample."""
        arr = np.asarray(sample, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot build an ECDF from an empty sample")
        if not np.isfinite(arr).all():
            raise ValueError("sample contains non-finite values")
        return cls(sorted_values=np.sort(arr))

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self.sorted_values.size)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """F(x) for an array of query points."""
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self.sorted_values, x, side="right") / self.n

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.evaluate(x)


def pooled_support(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted union of two samples — the evaluation grid for distances."""
    return np.sort(np.concatenate([np.asarray(a, float).ravel(), np.asarray(b, float).ravel()]))


def ecdf_pair(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Both ECDFs evaluated on the pooled support.

    Returns ``(grid, F_a(grid), F_b(grid))``.
    """
    grid = pooled_support(a, b)
    fa = Ecdf.from_sample(a).evaluate(grid)
    fb = Ecdf.from_sample(b).evaluate(grid)
    return grid, fa, fb
