"""SafeML: statistical-distance safety monitoring of ML components.

SafeML (paper Sec. III-A2) "detect[s] when the data encountered at runtime
is not similar to the data used for training ... by evaluating the
statistical distance of the (subset of) data distribution", over "a
sliding window of images captured by UAV cameras against a reference set".

This subpackage implements the full measure family from the SafeML line of
work (Aslansefat et al., IMBSA 2020) — Kolmogorov–Smirnov, Kuiper,
Anderson–Darling, Cramér–von Mises, Wasserstein, and the combined DTS
measure — together with permutation p-values and the sliding-window
runtime monitor that maps dissimilarity to a confidence level consumed by
the ConSert layer.
"""

from repro.safeml.ecdf import Ecdf
from repro.safeml.distances import (
    anderson_darling_distance,
    cramer_von_mises_distance,
    dts_distance,
    kolmogorov_smirnov_distance,
    kuiper_distance,
    wasserstein_distance,
    ALL_MEASURES,
)
from repro.safeml.monitor import ConfidenceLevel, SafeMlMonitor, SafeMlReport
from repro.safeml.pvalue import permutation_pvalue
from repro.safeml.joint import JointShiftMonitor
from repro.safeml.multivariate import (
    energy_distance,
    mmd_rbf,
    multivariate_shift_pvalue,
)

__all__ = [
    "Ecdf",
    "anderson_darling_distance",
    "cramer_von_mises_distance",
    "dts_distance",
    "kolmogorov_smirnov_distance",
    "kuiper_distance",
    "wasserstein_distance",
    "ALL_MEASURES",
    "ConfidenceLevel",
    "SafeMlMonitor",
    "SafeMlReport",
    "permutation_pvalue",
    "energy_distance",
    "mmd_rbf",
    "multivariate_shift_pvalue",
    "JointShiftMonitor",
]
