"""Joint-distribution runtime monitor (multivariate SafeML).

The per-feature monitor in :mod:`repro.safeml.monitor` watches marginals;
this monitor watches the *joint* camera-feature distribution with a
multivariate two-sample statistic (energy distance by default), catching
correlation-structure shifts the marginal monitor is blind to. Same
runtime shape: fit on the training reference, slide a window over runtime
frames, report an uncertainty calibrated against a bootstrap null.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.safeml.monitor import ConfidenceLevel, SafeMlReport
from repro.safeml.multivariate import energy_distance, mmd_rbf

JOINT_MEASURES: dict[str, Callable] = {
    "energy": energy_distance,
    "mmd": mmd_rbf,
}


@dataclass
class JointShiftMonitor:
    """Sliding-window joint-distribution monitor.

    Parameters mirror :class:`repro.safeml.monitor.SafeMlMonitor`;
    ``measure`` is "energy" or "mmd".
    """

    measure: str = "energy"
    window_size: int = 50
    null_splits: int = 30
    z_scale: float = 3.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(13))
    _reference: np.ndarray | None = field(default=None, repr=False)
    _null_mean: float = field(default=0.0, repr=False)
    _null_std: float = field(default=1.0, repr=False)
    _window: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.measure not in JOINT_MEASURES:
            raise ValueError(
                f"unknown joint measure {self.measure!r}; pick from "
                f"{sorted(JOINT_MEASURES)}"
            )
        self._distance = JOINT_MEASURES[self.measure]

    def fit(self, reference_features: np.ndarray) -> None:
        """Store the reference and bootstrap the null distance level."""
        ref = np.atleast_2d(np.asarray(reference_features, dtype=float))
        if ref.shape[0] < 2 * self.window_size:
            raise ValueError(
                f"reference needs >= {2 * self.window_size} samples, got "
                f"{ref.shape[0]}"
            )
        self._reference = ref
        null_distances = []
        n = ref.shape[0]
        for _ in range(self.null_splits):
            idx = self.rng.permutation(n)
            window = ref[idx[: self.window_size]]
            rest = ref[idx[self.window_size :]]
            null_distances.append(self._distance(window, rest))
        self._null_mean = float(np.mean(null_distances))
        self._null_std = float(np.std(null_distances) + 1e-12)
        self._window = deque(maxlen=self.window_size)

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._reference is not None

    def observe(self, features: np.ndarray) -> None:
        """Append one runtime feature vector."""
        if not self.fitted:
            raise RuntimeError("call fit() before observe()")
        vec = np.asarray(features, dtype=float).ravel()
        if vec.size != self._reference.shape[1]:
            raise ValueError(
                f"feature vector has {vec.size} dims, reference has "
                f"{self._reference.shape[1]}"
            )
        self._window.append(vec)

    def report(self, stamp: float = 0.0) -> SafeMlReport:
        """Joint-distance report over the current window."""
        if not self._window:
            raise RuntimeError("no runtime samples observed yet")
        window = np.vstack(self._window)
        distance = self._distance(window, self._reference)
        z = (distance - self._null_mean) / self._null_std
        uncertainty = float(norm.cdf(z / self.z_scale))
        return SafeMlReport(
            stamp=stamp,
            distances={"joint": distance},
            z_score=z,
            uncertainty=uncertainty,
            level=ConfidenceLevel.from_uncertainty(uncertainty),
        )
