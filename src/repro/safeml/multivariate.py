"""Multivariate two-sample distances: energy distance and MMD.

The per-feature monitor in :mod:`repro.safeml.monitor` can miss shifts
that only show up in the *joint* distribution (correlations rotate while
marginals stay put). These measures close that gap:

* **Energy distance** (Székely & Rizzo) — metric on distributions,
  zero iff equal; based only on pairwise Euclidean distances.
* **Maximum Mean Discrepancy (MMD)** with an RBF kernel — the kernel
  two-sample statistic, with the median-heuristic bandwidth.

Both are O(n²) in the window size, fine for SafeML-scale windows.
"""

from __future__ import annotations

import numpy as np


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between rows of ``a`` and rows of ``b``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))


def _as_2d(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError("samples must be non-empty (n, d) arrays")
    if not np.isfinite(arr).all():
        raise ValueError("samples contain non-finite values")
    return arr


def energy_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Energy distance between multivariate samples.

    ``E = 2 E|X - Y| - E|X - X'| - E|Y - Y'|``; non-negative, zero iff
    the distributions coincide.
    """
    a = _as_2d(a)
    b = _as_2d(b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("samples must share dimensionality")
    cross = _pairwise_distances(a, b).mean()
    within_a = _pairwise_distances(a, a).mean()
    within_b = _pairwise_distances(b, b).mean()
    return max(0.0, float(2.0 * cross - within_a - within_b))


def median_heuristic_bandwidth(a: np.ndarray, b: np.ndarray) -> float:
    """RBF bandwidth: median pairwise distance over the pooled sample."""
    pooled = np.vstack([_as_2d(a), _as_2d(b)])
    distances = _pairwise_distances(pooled, pooled)
    upper = distances[np.triu_indices_from(distances, k=1)]
    median = float(np.median(upper))
    return median if median > 0.0 else 1.0


def mmd_rbf(a: np.ndarray, b: np.ndarray, bandwidth: float | None = None) -> float:
    """Squared MMD with an RBF kernel (biased V-statistic).

    ``bandwidth`` defaults to the median heuristic.
    """
    a = _as_2d(a)
    b = _as_2d(b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("samples must share dimensionality")
    sigma = bandwidth if bandwidth is not None else median_heuristic_bandwidth(a, b)
    gamma = 1.0 / (2.0 * sigma * sigma)

    def kernel_mean(x: np.ndarray, y: np.ndarray) -> float:
        d = _pairwise_distances(x, y)
        return float(np.exp(-gamma * d * d).mean())

    return max(
        0.0, kernel_mean(a, a) + kernel_mean(b, b) - 2.0 * kernel_mean(a, b)
    )


def multivariate_shift_pvalue(
    a: np.ndarray,
    b: np.ndarray,
    statistic=energy_distance,
    n_permutations: int = 100,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Permutation p-value for a multivariate two-sample statistic."""
    if n_permutations < 1:
        raise ValueError("n_permutations must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    a = _as_2d(a)
    b = _as_2d(b)
    observed = statistic(a, b)
    pooled = np.vstack([a, b])
    n_a = a.shape[0]
    exceed = 0
    for _ in range(n_permutations):
        perm = rng.permutation(pooled.shape[0])
        shuffled = pooled[perm]
        if statistic(shuffled[:n_a], shuffled[n_a:]) >= observed:
            exceed += 1
    return observed, (exceed + 1) / (n_permutations + 1)
