"""The SafeML family of empirical statistical distance measures.

Each function takes two 1-D samples and returns a non-negative scalar
that is zero (up to sampling noise) when the samples come from the same
distribution and grows with distributional shift. The set matches the
measures used in the SafeML publications: Kolmogorov–Smirnov, Kuiper,
Anderson–Darling, Cramér–von Mises, Wasserstein, and the combined
DTS (Distance To Source) measure.
"""

from __future__ import annotations

import numpy as np

from repro.safeml.ecdf import ecdf_pair


def kolmogorov_smirnov_distance(a: np.ndarray, b: np.ndarray) -> float:
    """KS statistic: sup |F_a - F_b| over the pooled support."""
    _, fa, fb = ecdf_pair(a, b)
    return float(np.max(np.abs(fa - fb)))


def kuiper_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Kuiper statistic: sup(F_a - F_b) + sup(F_b - F_a).

    Unlike KS it is equally sensitive at the distribution tails.
    """
    _, fa, fb = ecdf_pair(a, b)
    return float(np.max(fa - fb) + np.max(fb - fa))


def cramer_von_mises_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Cramér–von Mises criterion (integrated squared gap).

    Computed as the mean of (F_a - F_b)^2 over the pooled sample, a
    scale-free variant adequate for monitoring (monotone in the classical
    statistic for fixed sample sizes).
    """
    _, fa, fb = ecdf_pair(a, b)
    return float(np.mean((fa - fb) ** 2))


def anderson_darling_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Anderson–Darling distance.

    The (F_a - F_b)^2 gap weighted by 1 / (H (1 - H)) where H is the pooled
    ECDF, emphasising tail disagreement; grid points where the weight is
    undefined (H = 0 or 1) are dropped.
    """
    grid, fa, fb = ecdf_pair(a, b)
    n = grid.size
    h = np.arange(1, n + 1) / n
    weight_ok = (h > 0.0) & (h < 1.0)
    gap = (fa - fb) ** 2
    weights = np.zeros_like(h)
    weights[weight_ok] = 1.0 / (h[weight_ok] * (1.0 - h[weight_ok]))
    return float(np.mean(gap * weights))


def wasserstein_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1-Wasserstein (earth mover's) distance between the two ECDFs.

    Integral of |F_a - F_b| dx over the pooled support, in data units.
    """
    grid, fa, fb = ecdf_pair(a, b)
    if grid.size < 2:
        return 0.0
    dx = np.diff(grid)
    return float(np.sum(np.abs(fa - fb)[:-1] * dx))


def dts_distance(a: np.ndarray, b: np.ndarray) -> float:
    """DTS: Anderson–Darling-weighted Wasserstein distance.

    The combined measure from the SafeML repository ("distance to source"):
    integrates the squared ECDF gap weighted by the AD tail weight *and*
    the data-unit spacing, capturing both location and tail shift.
    """
    grid, fa, fb = ecdf_pair(a, b)
    if grid.size < 2:
        return 0.0
    n = grid.size
    h = np.arange(1, n + 1) / n
    weight_ok = (h > 0.0) & (h < 1.0)
    weights = np.zeros_like(h)
    weights[weight_ok] = 1.0 / np.sqrt(h[weight_ok] * (1.0 - h[weight_ok]))
    dx = np.diff(grid)
    integrand = ((fa - fb) ** 2) * weights
    return float(np.sum(integrand[:-1] * dx))


ALL_MEASURES = {
    "kolmogorov_smirnov": kolmogorov_smirnov_distance,
    "kuiper": kuiper_distance,
    "cramer_von_mises": cramer_von_mises_distance,
    "anderson_darling": anderson_darling_distance,
    "wasserstein": wasserstein_distance,
    "dts": dts_distance,
}
"""Name -> callable registry used by the monitor and the ablation bench."""
