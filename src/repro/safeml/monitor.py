"""Sliding-window SafeML runtime monitor.

Fits on the training-time reference features, then watches a sliding
window of runtime features (one vector per camera frame). Each report
compares the window with the reference per feature, normalises the
distance against a bootstrap null (what the distance looks like when the
window *is* drawn from the reference), and maps the result to an
uncertainty in [0, 1]: "the greater the dissimilarity between the input
and the reference images, the lower the confidence in the ML model's
outcome" (Sec. III-A2).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.safeml.distances import ALL_MEASURES


class ConfidenceLevel(enum.Enum):
    """Discrete confidence vocabulary offered to the ConSert layer."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @classmethod
    def from_uncertainty(
        cls, uncertainty: float, medium_at: float = 0.75, low_at: float = 0.9
    ) -> "ConfidenceLevel":
        """Map an uncertainty in [0, 1] to a confidence level.

        The defaults follow the paper's Sec. V-B experiment: uncertainty
        above 90% is unacceptable (LOW), ~75% is workable (MEDIUM).
        """
        if not 0.0 <= uncertainty <= 1.0:
            raise ValueError(f"uncertainty out of range: {uncertainty}")
        if uncertainty < medium_at:
            return cls.HIGH
        if uncertainty < low_at:
            return cls.MEDIUM
        return cls.LOW


@dataclass(frozen=True)
class SafeMlReport:
    """One monitor output."""

    stamp: float
    distances: dict[str, float]
    z_score: float
    uncertainty: float
    level: ConfidenceLevel

    @property
    def confidence(self) -> float:
        """1 - uncertainty."""
        return 1.0 - self.uncertainty


@dataclass
class SafeMlMonitor:
    """Per-feature statistical distance monitor with a sliding window.

    Parameters
    ----------
    measure:
        Name from :data:`repro.safeml.distances.ALL_MEASURES` (default the
        combined DTS measure).
    window_size:
        Number of most recent runtime feature vectors compared against the
        reference.
    null_splits:
        Bootstrap resamples used to estimate the null distance
        distribution at fit time.
    z_scale:
        Softness of the z -> uncertainty mapping; the uncertainty is
        ``norm.cdf(z / z_scale)``. Larger values make the monitor less
        twitchy — calibrate against the deployment's tolerable shift.
    """

    measure: str = "dts"
    window_size: int = 50
    null_splits: int = 40
    z_scale: float = 3.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(7))
    _reference: np.ndarray | None = field(default=None, repr=False)
    _null_mean: np.ndarray | None = field(default=None, repr=False)
    _null_std: np.ndarray | None = field(default=None, repr=False)
    _window: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.measure not in ALL_MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; pick from {sorted(ALL_MEASURES)}"
            )
        self._distance: Callable = ALL_MEASURES[self.measure]

    # ----------------------------------------------------------------- fit
    def fit(self, reference_features: np.ndarray) -> None:
        """Store the reference sample and estimate the null distance level.

        ``reference_features`` is (n_samples, n_features). The null is
        estimated by repeatedly carving window-sized subsamples out of the
        reference and measuring their distance to the remainder.
        """
        ref = np.atleast_2d(np.asarray(reference_features, dtype=float))
        if ref.shape[0] < 2 * self.window_size:
            raise ValueError(
                f"reference needs >= {2 * self.window_size} samples, got {ref.shape[0]}"
            )
        self._reference = ref
        n, d = ref.shape
        means = np.zeros(d)
        stds = np.zeros(d)
        for j in range(d):
            null_distances = []
            for _ in range(self.null_splits):
                idx = self.rng.permutation(n)
                window = ref[idx[: self.window_size], j]
                rest = ref[idx[self.window_size :], j]
                null_distances.append(self._distance(window, rest))
            means[j] = float(np.mean(null_distances))
            stds[j] = float(np.std(null_distances) + 1e-12)
        self._null_mean = means
        self._null_std = stds
        self._window = deque(maxlen=self.window_size)

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._reference is not None

    # -------------------------------------------------------------- runtime
    def observe(self, features: np.ndarray) -> None:
        """Append one runtime feature vector to the sliding window."""
        if not self.fitted:
            raise RuntimeError("call fit() before observe()")
        vec = np.asarray(features, dtype=float).ravel()
        if vec.size != self._reference.shape[1]:
            raise ValueError(
                f"feature vector has {vec.size} dims, reference has "
                f"{self._reference.shape[1]}"
            )
        self._window.append(vec)

    @property
    def window_full(self) -> bool:
        """Whether enough runtime samples have arrived for a stable report."""
        return len(self._window) >= self.window_size

    def report(self, stamp: float = 0.0) -> SafeMlReport:
        """Compare the current window against the reference.

        The per-feature distances are z-scored against the bootstrap null
        and averaged; the uncertainty is the Gaussian CDF of that mean z,
        so "window indistinguishable from training" maps to ~0.5 and large
        shifts saturate toward 1.0.
        """
        if not self._window:
            raise RuntimeError("no runtime samples observed yet")
        window = np.vstack(self._window)
        distances: dict[str, float] = {}
        z_scores = []
        for j in range(self._reference.shape[1]):
            d = self._distance(window[:, j], self._reference[:, j])
            distances[f"feature_{j}"] = d
            z_scores.append((d - self._null_mean[j]) / self._null_std[j])
        z_mean = float(np.mean(z_scores))
        uncertainty = float(norm.cdf(z_mean / self.z_scale))
        return SafeMlReport(
            stamp=stamp,
            distances=distances,
            z_score=z_mean,
            uncertainty=uncertainty,
            level=ConfidenceLevel.from_uncertainty(uncertainty),
        )
