"""Permutation p-values for two-sample distance statistics.

SafeML's decision rule asks not just "how far apart are the samples" but
"is this distance surprising under the null of identical distributions".
A permutation test answers that for any of the distance measures without
distributional assumptions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def permutation_pvalue(
    a: np.ndarray,
    b: np.ndarray,
    statistic: Callable[[np.ndarray, np.ndarray], float],
    n_permutations: int = 200,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Permutation test of ``statistic`` for samples ``a`` vs ``b``.

    Returns ``(observed_statistic, p_value)`` where the p-value is the
    add-one-smoothed fraction of label permutations whose statistic is at
    least the observed one.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    observed = statistic(a, b)
    pooled = np.concatenate([a, b])
    n_a = a.size
    exceed = 0
    for _ in range(n_permutations):
        perm = rng.permutation(pooled)
        if statistic(perm[:n_a], perm[n_a:]) >= observed:
            exceed += 1
    p_value = (exceed + 1) / (n_permutations + 1)
    return observed, p_value
