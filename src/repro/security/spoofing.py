"""GPS spoofing detection by inertial cross-checking.

Complements the network-level IDS: even when the attacker's injected
messages are indistinguishable at the transport layer (e.g. RF-level GPS
spoofing rather than ROS injection), the *physics* betrays the attack.
The detector runs two complementary tests against the IMU — a
self-contained sensor the spoofer cannot touch:

**Innovation test** — compares each GPS fix with the one-epoch inertial
prediction; catches abrupt position jumps.

**Cumulative-divergence test** — sums, over a sliding window, the
per-epoch difference between GPS-reported displacement and IMU-integrated
displacement; catches slowly-ramping spoofs that stay under the
single-epoch threshold (the classic "carry-off" attack, and exactly what
the Fig. 6 ramp does).

The verdict is what the GPS-based Localization ConSert consumes (Fig. 1).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.obs import event


@dataclass(frozen=True)
class SpoofVerdict:
    """Current detector state."""

    spoofed: bool
    innovation_m: float
    threshold_m: float
    cumulative_divergence_m: float
    cumulative_threshold_m: float
    consecutive_hits: int
    stamp: float


@dataclass
class GpsSpoofingDetector:
    """Innovation + cumulative-divergence tests against IMU dead reckoning.

    ``base_threshold_m`` covers GPS noise for the single-epoch innovation
    test; ``drift_rate_mps`` inflates it with the dead-reckoning anchor
    age. ``cumulative_window_s`` / ``cumulative_threshold_m`` parameterise
    the windowed divergence test. ``hits_to_alarm`` consecutive
    exceedances (of either test) are required to declare spoofing,
    rejecting single-epoch multipath glitches.
    """

    base_threshold_m: float = 3.0
    drift_rate_mps: float = 0.15
    cumulative_window_s: float = 10.0
    cumulative_threshold_m: float = 2.5
    hits_to_alarm: int = 3
    # A gap in valid fixes longer than this (e.g. a jamming outage) makes
    # the stored deltas meaningless; the detector re-anchors instead of
    # comparing across the gap.
    max_gap_s: float = 2.0
    anchor: tuple[float, float, float] | None = None
    anchor_time: float | None = None
    _last_update: float | None = field(default=None, repr=False)
    _dr_position: tuple[float, float, float] | None = field(default=None, repr=False)
    _last_gps: tuple[float, float, float] | None = field(default=None, repr=False)
    _last_imu: tuple[float, float, float] | None = field(default=None, repr=False)
    _divergences: deque = field(default_factory=deque, repr=False)
    _hits: int = 0
    spoof_detected: bool = False
    detection_time: float | None = None
    history: list[SpoofVerdict] = field(default_factory=list)

    def update(
        self,
        now: float,
        gps_enu: tuple[float, float, float],
        imu_velocity: tuple[float, float, float],
        dt: float,
    ) -> SpoofVerdict:
        """Feed one epoch; returns the current verdict."""
        if (
            self._last_update is not None
            and now - self._last_update > self.max_gap_s
            and not self.spoof_detected
        ):
            # Outage gap: stored deltas span the blackout and would alarm
            # spuriously. Re-anchor on the first fix after the gap.
            self._dr_position = None
            self._last_imu = None
            self._divergences.clear()
            self._hits = 0
        self._last_update = now
        if self._dr_position is None:
            self._dr_position = gps_enu
            self.anchor = gps_enu
            self.anchor_time = now
            self._last_gps = gps_enu
            self._last_imu = imu_velocity
            verdict = SpoofVerdict(
                spoofed=False,
                innovation_m=0.0,
                threshold_m=self.base_threshold_m,
                cumulative_divergence_m=0.0,
                cumulative_threshold_m=self.cumulative_threshold_m,
                consecutive_hits=0,
                stamp=now,
            )
            self.history.append(verdict)
            return verdict

        # --- innovation test (abrupt jumps) ------------------------------
        # End-of-epoch velocity integration, matching the platform's
        # implicit-Euler kinematics (position advances by v_new * dt).
        self._dr_position = tuple(
            p + v * dt for p, v in zip(self._dr_position, imu_velocity)
        )
        innovation = math.dist(gps_enu, self._dr_position)
        age = now - (self.anchor_time if self.anchor_time is not None else now)
        threshold = self.base_threshold_m + self.drift_rate_mps * age

        # --- cumulative-divergence test (slow ramps) ----------------------
        gps_delta = tuple(g - last for g, last in zip(gps_enu, self._last_gps))
        imu_delta = tuple(v * dt for v in imu_velocity)
        self._divergences.append(
            (now, tuple(g - i for g, i in zip(gps_delta, imu_delta)))
        )
        self._last_gps = gps_enu
        self._last_imu = imu_velocity
        cutoff = now - self.cumulative_window_s
        while self._divergences and self._divergences[0][0] < cutoff:
            self._divergences.popleft()
        cum_vec = [0.0, 0.0, 0.0]
        for _, div in self._divergences:
            for i in range(3):
                cum_vec[i] += div[i]
        cumulative = math.sqrt(sum(c * c for c in cum_vec))

        exceeded = innovation > threshold or cumulative > self.cumulative_threshold_m
        if exceeded:
            self._hits += 1
        else:
            self._hits = 0
            # Healthy epoch: refresh the dead-reckoning anchor to the GPS
            # solution, resetting accumulated IMU drift.
            self._dr_position = gps_enu
            self.anchor = gps_enu
            self.anchor_time = now

        if self._hits >= self.hits_to_alarm and not self.spoof_detected:
            self.spoof_detected = True
            self.detection_time = now
            event(
                "warning", "security.spoofing", "gps_spoof_detected",
                sim_time=now,
                innovation_m=round(innovation, 3),
                cumulative_divergence_m=round(cumulative, 3),
            )

        verdict = SpoofVerdict(
            spoofed=self.spoof_detected,
            innovation_m=innovation,
            threshold_m=threshold,
            cumulative_divergence_m=cumulative,
            cumulative_threshold_m=self.cumulative_threshold_m,
            consecutive_hits=self._hits,
            stamp=now,
        )
        self.history.append(verdict)
        return verdict

    def reset(self) -> None:
        """Forget all state (e.g. after landing and re-validation)."""
        self.anchor = None
        self.anchor_time = None
        self._dr_position = None
        self._last_gps = None
        self._divergences.clear()
        self._hits = 0
        self._last_update = None
        self._last_imu = None
        self.spoof_detected = False
        self.detection_time = None
        self.history.clear()
