"""Quantitative attack-tree analysis and the extended tree library.

The Security EDDI attack scenarios carry 'severity' and 'likelihood'
metadata (Sec. III-B); this module makes them computable: ordinal scales
are mapped to numeric values, likelihood propagates leaf-to-root (AND
multiplies, OR takes the complement-product), and risk combines
propagated likelihood with root severity. The threat-landscape summary is
what a design-time security review of the UAV platform reads.

Also ships the additional attack trees for the UAV threat model beyond
the ROS-spoofing tree used in Fig. 6: GPS spoofing at RF level and the
eavesdrop-then-replay scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.attack_trees import AttackNode, AttackTree, GateType

LIKELIHOOD_SCALE = {"low": 0.1, "medium": 0.4, "high": 0.7, "very_high": 0.9}
SEVERITY_SCALE = {"low": 1.0, "medium": 2.0, "high": 3.0, "critical": 4.0}


def leaf_likelihood(node: AttackNode) -> float:
    """Numeric likelihood of a leaf from its ordinal metadata."""
    try:
        return LIKELIHOOD_SCALE[node.likelihood]
    except KeyError:
        raise ValueError(
            f"{node.node_id}: unknown likelihood {node.likelihood!r}"
        ) from None


def propagate_likelihood(node: AttackNode) -> float:
    """Root-goal likelihood under leaf independence.

    AND gates require every child step (product); OR gates succeed if any
    child does (complement product).
    """
    if node.gate is GateType.LEAF:
        return leaf_likelihood(node)
    child_values = [propagate_likelihood(child) for child in node.children]
    if node.gate is GateType.AND:
        out = 1.0
        for value in child_values:
            out *= value
        return out
    survive = 1.0
    for value in child_values:
        survive *= 1.0 - value
    return 1.0 - survive


@dataclass(frozen=True)
class RiskSummary:
    """Quantified risk of one attack tree."""

    tree: str
    root_likelihood: float
    severity: float
    risk: float  # likelihood x severity
    dominant_path: list[str]


def _dominant_path(node: AttackNode) -> list[str]:
    """The most likely way to the goal: maximising children of OR gates."""
    if node.gate is GateType.LEAF:
        return [node.node_id]
    if node.gate is GateType.AND:
        path = [node.node_id]
        for child in node.children:
            path.extend(_dominant_path(child))
        return path
    best = max(node.children, key=propagate_likelihood)
    return [node.node_id] + _dominant_path(best)


def risk_summary(tree: AttackTree) -> RiskSummary:
    """Quantify one tree: propagated likelihood x root severity."""
    likelihood = propagate_likelihood(tree.root)
    try:
        severity = SEVERITY_SCALE[tree.root.severity]
    except KeyError:
        raise ValueError(
            f"{tree.name}: unknown severity {tree.root.severity!r}"
        ) from None
    return RiskSummary(
        tree=tree.name,
        root_likelihood=likelihood,
        severity=severity,
        risk=likelihood * severity,
        dominant_path=_dominant_path(tree.root),
    )


def threat_landscape(trees: list[AttackTree]) -> list[RiskSummary]:
    """Risk-ranked summary over a tree library (highest risk first)."""
    return sorted((risk_summary(t) for t in trees), key=lambda s: s.risk, reverse=True)


# --------------------------------------------------------------------------
# Extended attack-tree library for the UAV platform threat model.
# --------------------------------------------------------------------------

def gps_spoofing_attack_tree() -> AttackTree:
    """RF-level GPS spoofing: divert navigation without touching ROS."""
    root = AttackNode(
        node_id="divert_navigation",
        title="Divert UAV navigation via GPS spoofing",
        gate=GateType.AND,
        capec_id="CAPEC-627",
        severity="critical",
        likelihood="medium",
        mitigation="IMU cross-check detector; collaborative localization fallback.",
        children=[
            AttackNode(
                node_id="acquire_signal_params",
                title="Acquire victim GNSS signal parameters",
                gate=GateType.OR,
                children=[
                    AttackNode(
                        node_id="record_live_signal",
                        title="Record live GNSS in the operating area",
                        capec_id="CAPEC-158",
                        alert_type="rf_survey",
                        likelihood="high",
                        mitigation="RF monitoring around the operating area.",
                    ),
                    AttackNode(
                        node_id="synthesize_ephemeris",
                        title="Synthesize constellation ephemeris",
                        capec_id="CAPEC-148",
                        alert_type="rf_synthesis",
                        likelihood="medium",
                        mitigation="Signal-authentication (OSNMA) receivers.",
                    ),
                ],
            ),
            AttackNode(
                node_id="overpower_receiver",
                title="Overpower the victim receiver with the forged signal",
                capec_id="CAPEC-607",
                alert_type="gps_anomaly",
                severity="high",
                likelihood="medium",
                mitigation="C/N0 monitoring; multi-antenna direction finding.",
            ),
        ],
    )
    return AttackTree(name="gps_spoofing", root=root)


def eavesdrop_replay_attack_tree() -> AttackTree:
    """Capture mission traffic, then replay stale commands later."""
    root = AttackNode(
        node_id="replay_commands",
        title="Replay captured commands to misdirect the fleet",
        gate=GateType.AND,
        capec_id="CAPEC-94",
        severity="high",
        likelihood="low",
        mitigation="Nonces / timestamps on command messages.",
        children=[
            AttackNode(
                node_id="eavesdrop_traffic",
                title="Eavesdrop unencrypted ROS traffic",
                capec_id="CAPEC-158",
                alert_type="promiscuous_probe",
                likelihood="high",
                mitigation="Transport encryption (SROS2/TLS).",
            ),
            AttackNode(
                node_id="inject_replayed",
                title="Re-inject captured command messages",
                capec_id="CAPEC-94",
                alert_type="message_injection",
                likelihood="medium",
                mitigation="Sequence-number and freshness checks.",
            ),
        ],
    )
    return AttackTree(name="eavesdrop_replay", root=root)


def uav_threat_library() -> list[AttackTree]:
    """The platform's full attack-tree library."""
    from repro.security.attack_trees import ros_spoofing_attack_tree

    return [
        ros_spoofing_attack_tree(),
        gps_spoofing_attack_tree(),
        eavesdrop_replay_attack_tree(),
    ]
