"""The Security EDDI engine.

"Each Security EDDI is implemented as a Python script tailored to a
specific attack tree ... Upon detection, the script's logic navigates the
attack tree structure, tracing the attack path from the leaf nodes toward
the root. Reaching the root node implies the adversary's end goal is
achieved, indicating a critical security event." (Sec. III-B)

The engine subscribes to ``ids/alerts/#`` on the MQTT broker, maps each
alert to the matching attack-tree leaves, re-evaluates the tree, and emits
a :class:`SecurityEvent` when the root goal becomes satisfied. Responses
(e.g. triggering Collaborative Localization via the ConSert layer) attach
as callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.security.attack_trees import AttackTree
from repro.security.broker import MqttBroker
from repro.security.ids import Alert


@dataclass(frozen=True)
class SecurityEvent:
    """A critical security event: the attack tree root goal was reached."""

    tree_name: str
    stamp: float
    attack_path: list[str]
    triggering_alert: Alert
    severity: str
    mitigation: str


@dataclass
class SecurityEddi:
    """Runtime security monitor bound to one attack tree."""

    tree: AttackTree
    broker: MqttBroker
    on_critical: list[Callable[[SecurityEvent], None]] = field(default_factory=list)
    events: list[SecurityEvent] = field(default_factory=list)
    alerts_seen: list[Alert] = field(default_factory=list)
    _root_reported: bool = False

    def __post_init__(self) -> None:
        self.broker.subscribe("ids/alerts/#", self._on_alert)

    @property
    def root_achieved(self) -> bool:
        """Whether the monitored attack's end goal has been observed."""
        return self.tree.root_achieved()

    def add_response(self, callback: Callable[[SecurityEvent], None]) -> None:
        """Register a mitigation callback fired on the critical event."""
        self.on_critical.append(callback)

    def reset(self) -> None:
        """Clear runtime state (new mission)."""
        self.tree.reset()
        self._root_reported = False
        self.events.clear()
        self.alerts_seen.clear()

    # ----------------------------------------------------------- internals
    def _on_alert(self, topic: str, payload: Alert) -> None:
        if not isinstance(payload, Alert):
            return
        self.alerts_seen.append(payload)
        matched = self.tree.leaf_by_alert_type(payload.alert_type)
        if not matched:
            return
        for leaf in matched:
            self.tree.mark_achieved(leaf.node_id)
        if self.tree.root_achieved() and not self._root_reported:
            self._root_reported = True
            event = SecurityEvent(
                tree_name=self.tree.name,
                stamp=payload.stamp,
                attack_path=self.tree.attack_path(),
                triggering_alert=payload,
                severity=self.tree.root.severity,
                mitigation=self.tree.root.mitigation,
            )
            self.events.append(event)
            for callback in self.on_critical:
                callback(event)
