"""In-process MQTT-style broker for the security alert pipeline.

The paper's Security EDDIs listen for IDS alerts on MQTT topics. This
broker reproduces the MQTT topic semantics the pipeline needs: exact and
wildcard (``+`` single level, ``#`` multi level) subscriptions, retained
messages, and synchronous delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT topic matching with ``+`` and ``#`` wildcards."""
    p_levels = pattern.split("/")
    t_levels = topic.split("/")
    for i, p in enumerate(p_levels):
        if p == "#":
            return True
        if i >= len(t_levels):
            return False
        if p != "+" and p != t_levels[i]:
            return False
    return len(p_levels) == len(t_levels)


@dataclass
class _BrokerSubscription:
    pattern: str
    callback: Callable[[str, Any], None]
    active: bool = True


@dataclass
class MqttBroker:
    """Synchronous topic broker with retained-message support."""

    _subs: list[_BrokerSubscription] = field(default_factory=list)
    retained: dict[str, Any] = field(default_factory=dict)
    published: list[tuple[str, Any]] = field(default_factory=list)

    def subscribe(
        self, pattern: str, callback: Callable[[str, Any], None]
    ) -> _BrokerSubscription:
        """Subscribe a callback; retained messages replay immediately."""
        sub = _BrokerSubscription(pattern=pattern, callback=callback)
        self._subs.append(sub)
        for topic, payload in self.retained.items():
            if topic_matches(pattern, topic):
                callback(topic, payload)
        return sub

    def unsubscribe(self, sub: _BrokerSubscription) -> None:
        """Deactivate a subscription."""
        sub.active = False

    def publish(self, topic: str, payload: Any, retain: bool = False) -> int:
        """Publish to all matching subscribers; returns delivery count."""
        if "+" in topic or "#" in topic:
            raise ValueError("publish topics may not contain wildcards")
        self.published.append((topic, payload))
        if retain:
            self.retained[topic] = payload
        delivered = 0
        for sub in list(self._subs):
            if sub.active and topic_matches(sub.pattern, topic):
                sub.callback(topic, payload)
                delivered += 1
        return delivered
