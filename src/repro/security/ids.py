"""Rule-based intrusion detection over the simulated ROS traffic.

The IDS plays the role of the paper's network IDS: it inspects transport-
level traffic (where per-message origin is visible, like source addresses
in real packet captures) and "publishes alerts upon detecting suspicious
activity" to MQTT topics that Security EDDIs subscribe to.

Built-in rules:

``provenance``
    The claimed application sender maps to a known producing host; a
    mismatch raises ``message_injection``.
``membership``
    Messages originating from hosts outside the registered fleet raise
    ``unauthorized_publisher``.
``rate``
    A topic exceeding its nominal publish rate (e.g. doubled by a parallel
    spoofer) raises ``rate_anomaly``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from repro.middleware.rosbus import Message, RosBus
from repro.obs import OBS, event
from repro.security.broker import MqttBroker


@dataclass(frozen=True)
class Alert:
    """One IDS alert published on ``ids/alerts/<alert_type>``."""

    alert_type: str
    topic: str
    suspect: str
    detail: str
    stamp: float


@dataclass
class IdsRule:
    """A custom per-message rule: returns an alert type or None."""

    name: str
    check: Callable[[Message], "str | None"]


@dataclass
class IntrusionDetectionSystem:
    """Scans new bus traffic each step and publishes alerts to the broker."""

    bus: RosBus
    broker: MqttBroker
    known_nodes: set[str] = field(default_factory=set)
    rate_limits_hz: dict[str, float] = field(default_factory=dict)
    custom_rules: list[IdsRule] = field(default_factory=list)
    rate_window_s: float = 2.0
    alerts: list[Alert] = field(default_factory=list)
    _cursor: int = 0
    _recent: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))

    def register_node(self, node: str) -> None:
        """Declare a legitimate fleet node (UAV, GCS, platform service)."""
        self.known_nodes.add(node)

    def set_rate_limit(self, topic: str, max_hz: float) -> None:
        """Set the nominal maximum publish rate for a topic."""
        self.rate_limits_hz[topic] = max_hz

    # ----------------------------------------------------------------- scan
    def scan(self, now: float) -> list[Alert]:
        """Inspect traffic recorded since the previous scan."""
        new_alerts: list[Alert] = []
        messages = list(self.bus.traffic)[self._cursor :]
        self._cursor += len(messages)
        for message in messages:
            new_alerts.extend(self._check_message(message))
            new_alerts.extend(self._check_rate(message, now))
        obs_on = OBS.enabled
        for alert in new_alerts:
            self.alerts.append(alert)
            self.broker.publish(f"ids/alerts/{alert.alert_type}", alert)
            if obs_on:
                OBS.metrics.inc("ids_alerts_total", type=alert.alert_type)
                event(
                    "warning", "security.ids", alert.alert_type,
                    sim_time=alert.stamp, topic=alert.topic,
                    suspect=alert.suspect,
                )
        return new_alerts

    def _check_message(self, message: Message) -> list[Alert]:
        alerts = []
        if message.origin not in self.known_nodes:
            alerts.append(
                Alert(
                    alert_type="unauthorized_publisher",
                    topic=message.topic,
                    suspect=message.origin,
                    detail=f"origin {message.origin!r} is not a registered fleet node",
                    stamp=message.stamp,
                )
            )
        if message.is_forged:
            alerts.append(
                Alert(
                    alert_type="message_injection",
                    topic=message.topic,
                    suspect=message.origin,
                    detail=(
                        f"claimed sender {message.sender!r} but true origin "
                        f"{message.origin!r}"
                    ),
                    stamp=message.stamp,
                )
            )
        for rule in self.custom_rules:
            alert_type = rule.check(message)
            if alert_type is not None:
                alerts.append(
                    Alert(
                        alert_type=alert_type,
                        topic=message.topic,
                        suspect=message.origin,
                        detail=f"custom rule {rule.name!r} matched",
                        stamp=message.stamp,
                    )
                )
        return alerts

    def _check_rate(self, message: Message, now: float) -> list[Alert]:
        limit = self.rate_limits_hz.get(message.topic)
        if limit is None:
            return []
        window = self._recent[message.topic]
        window.append(message.stamp)
        cutoff = now - self.rate_window_s
        kept = [t for t in window if t >= cutoff]
        self._recent[message.topic] = kept
        # Normalize by the span the kept samples actually cover, not the
        # nominal window: before a stream has been up for a full window,
        # dividing by rate_window_s underestimates the rate and lets a
        # flood in the first seconds go undetected. The floor keeps a
        # near-instantaneous burst from reading as an unbounded rate.
        span = now - kept[0] if kept else self.rate_window_s
        span = min(max(span, 0.25 * self.rate_window_s), self.rate_window_s)
        observed_hz = len(kept) / span
        if observed_hz > limit:
            return [
                Alert(
                    alert_type="rate_anomaly",
                    topic=message.topic,
                    suspect=message.origin,
                    detail=f"rate {observed_hz:.1f} Hz exceeds limit {limit:.1f} Hz",
                    stamp=message.stamp,
                )
            ]
        return []
