"""Security EDDI framework (paper Sec. III-B).

"Each Security EDDI is implemented as a Python script tailored to a
specific attack tree, capable of parsing and recognizing attack patterns
to detect an adversary's ultimate goal. Supporting components include an
MQTT message protocol broker and an Intrusion Detection System (IDS),
which inspects network traffic and publishes alerts upon detecting
suspicious activity."

This subpackage builds that pipeline end-to-end: attack trees with CAPEC
metadata, an in-process MQTT-style broker, a rule-based IDS over the
simulated ROS traffic, spoofing detectors (GPS and ROS message), and the
Security EDDI engine that traces alerts from attack-tree leaves toward the
root.
"""

from repro.security.attack_trees import AttackNode, AttackTree, GateType
from repro.security.broker import MqttBroker
from repro.security.ids import Alert, IntrusionDetectionSystem, IdsRule
from repro.security.eddi import SecurityEddi, SecurityEvent
from repro.security.spoofing import GpsSpoofingDetector, SpoofVerdict
from repro.security.analysis import (
    RiskSummary,
    gps_spoofing_attack_tree,
    eavesdrop_replay_attack_tree,
    propagate_likelihood,
    risk_summary,
    threat_landscape,
    uav_threat_library,
)

__all__ = [
    "AttackNode",
    "AttackTree",
    "GateType",
    "MqttBroker",
    "Alert",
    "IntrusionDetectionSystem",
    "IdsRule",
    "SecurityEddi",
    "SecurityEvent",
    "GpsSpoofingDetector",
    "SpoofVerdict",
    "RiskSummary",
    "gps_spoofing_attack_tree",
    "eavesdrop_replay_attack_tree",
    "propagate_likelihood",
    "risk_summary",
    "threat_landscape",
    "uav_threat_library",
]
