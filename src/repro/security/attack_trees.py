"""Attack trees with CAPEC-style metadata.

"These attack trees ... outline all possible attack scenarios based on
identified cyber and physical vulnerabilities. Each attack scenario
includes high-level information such as 'capecId', 'title', 'description',
'severity', 'likelihood', and 'mitigation'" (Sec. III-B).

Leaves correspond to detectable attack steps (IDS alert types); internal
AND/OR gates combine steps toward the adversary's root goal. The tree
supports runtime marking of achieved leaves and queries for whether the
root goal is (or is about to be) reached — the logic the Security EDDI
scripts execute.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class GateType(enum.Enum):
    """How child steps combine at an internal node."""

    AND = "and"
    OR = "or"
    LEAF = "leaf"


@dataclass
class AttackNode:
    """One node of an attack tree.

    Metadata mirrors the paper's scenario records; ``alert_type`` binds a
    leaf to the IDS alert that evidences it.
    """

    node_id: str
    title: str
    gate: GateType = GateType.LEAF
    children: list["AttackNode"] = field(default_factory=list)
    capec_id: str | None = None
    description: str = ""
    severity: str = "medium"
    likelihood: str = "medium"
    mitigation: str = ""
    alert_type: str | None = None
    achieved: bool = False

    def __post_init__(self) -> None:
        if self.gate is GateType.LEAF and self.children:
            raise ValueError(f"{self.node_id}: leaf nodes cannot have children")
        if self.gate is not GateType.LEAF and not self.children:
            raise ValueError(f"{self.node_id}: gate nodes need children")

    def evaluate(self) -> bool:
        """Whether this node's (sub)goal is achieved given marked leaves."""
        if self.gate is GateType.LEAF:
            return self.achieved
        results = [child.evaluate() for child in self.children]
        if self.gate is GateType.AND:
            return all(results)
        return any(results)

    def iter_nodes(self) -> list["AttackNode"]:
        """This node and all descendants, pre-order."""
        out = [self]
        for child in self.children:
            out.extend(child.iter_nodes())
        return out


@dataclass
class AttackTree:
    """A named attack tree with a single root goal."""

    name: str
    root: AttackNode

    def leaves(self) -> list[AttackNode]:
        """All leaf attack steps."""
        return [n for n in self.root.iter_nodes() if n.gate is GateType.LEAF]

    def leaf_by_alert_type(self, alert_type: str) -> list[AttackNode]:
        """Leaves evidenced by a given IDS alert type."""
        return [n for n in self.leaves() if n.alert_type == alert_type]

    def mark_achieved(self, node_id: str) -> None:
        """Mark one leaf as achieved (evidence observed)."""
        for node in self.root.iter_nodes():
            if node.node_id == node_id:
                if node.gate is not GateType.LEAF:
                    raise ValueError(f"{node_id} is not a leaf")
                node.achieved = True
                return
        raise KeyError(node_id)

    def reset(self) -> None:
        """Clear all achieved marks."""
        for node in self.root.iter_nodes():
            node.achieved = False

    def root_achieved(self) -> bool:
        """Whether the adversary's end goal is reached."""
        return self.root.evaluate()

    def attack_path(self) -> list[str]:
        """Node ids on the achieved path from leaves toward the root.

        The trace the Security EDDI reports: every node whose subgoal is
        currently satisfied.
        """
        return [n.node_id for n in self.root.iter_nodes() if n.evaluate()]

    def progress(self) -> float:
        """Fraction of leaves achieved — coarse attack-progress metric."""
        leaves = self.leaves()
        if not leaves:
            return 0.0
        return sum(1 for n in leaves if n.achieved) / len(leaves)

    # ------------------------------------------------------- serialisation
    def to_json(self) -> str:
        """Serialise the tree (structure + metadata) to JSON."""

        def encode(node: AttackNode) -> dict:
            return {
                "node_id": node.node_id,
                "title": node.title,
                "gate": node.gate.value,
                "capecId": node.capec_id,
                "description": node.description,
                "severity": node.severity,
                "likelihood": node.likelihood,
                "mitigation": node.mitigation,
                "alert_type": node.alert_type,
                "children": [encode(c) for c in node.children],
            }

        return json.dumps({"name": self.name, "root": encode(self.root)}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "AttackTree":
        """Deserialise a tree produced by :meth:`to_json`."""

        def decode(obj: dict) -> AttackNode:
            return AttackNode(
                node_id=obj["node_id"],
                title=obj["title"],
                gate=GateType(obj["gate"]),
                capec_id=obj.get("capecId"),
                description=obj.get("description", ""),
                severity=obj.get("severity", "medium"),
                likelihood=obj.get("likelihood", "medium"),
                mitigation=obj.get("mitigation", ""),
                alert_type=obj.get("alert_type"),
                children=[decode(c) for c in obj.get("children", [])],
            )

        data = json.loads(text)
        return cls(name=data["name"], root=decode(data["root"]))


def ros_spoofing_attack_tree() -> AttackTree:
    """The ROS message-spoofing attack tree used in the Fig. 6 use case.

    Root goal: manipulate the UAV area-mapping system. The adversary must
    gain access to the ROS network (via network intrusion OR a compromised
    node) AND inject falsified messages.
    """
    root = AttackNode(
        node_id="manipulate_mapping",
        title="Manipulate UAV area mapping",
        gate=GateType.AND,
        capec_id="CAPEC-594",
        description="Falsify pose/waypoint traffic to corrupt area mapping.",
        severity="high",
        likelihood="medium",
        mitigation="Authenticated transport; collaborative localization fallback.",
        children=[
            AttackNode(
                node_id="gain_access",
                title="Gain access to ROS network",
                gate=GateType.OR,
                children=[
                    AttackNode(
                        node_id="network_intrusion",
                        title="Join unauthenticated ROS graph",
                        capec_id="CAPEC-292",
                        alert_type="unauthorized_publisher",
                        severity="high",
                        likelihood="high",
                        mitigation="Network segmentation, SROS2 authentication.",
                    ),
                    AttackNode(
                        node_id="node_compromise",
                        title="Compromise an onboard node",
                        capec_id="CAPEC-233",
                        alert_type="node_anomaly",
                        severity="high",
                        likelihood="low",
                        mitigation="Hardened companion OS, signed binaries.",
                    ),
                ],
            ),
            AttackNode(
                node_id="inject_messages",
                title="Inject falsified ROS messages",
                capec_id="CAPEC-153",
                alert_type="message_injection",
                severity="high",
                likelihood="medium",
                mitigation="Message signing; plausibility gating on subscribers.",
            ),
        ],
    )
    return AttackTree(name="ros_message_spoofing", root=root)
