"""Job model for the campaign service: validation, records, durable store.

A *job* is one campaign run owned by a tenant: which experiment, which
grid (preset name or explicit config list), the root seed, per-campaign
worker count, and a scheduling priority. Jobs move through a small state
machine::

    submitted -> queued -> running -> done | failed | cancelled
                    ^------- (restart / resume) -------'

Every transition is persisted as an atomic on-disk record
(``<jobs_root>/<id>/job.json``), so a killed server can
:meth:`JobStore.recover` on restart: jobs caught in ``queued`` or
``running`` are re-queued and their campaigns resume from the per-sample
checkpoint stream (``run_campaign(..., resume=True)``) — completed
samples are cache hits, only in-flight work re-runs, and the final
manifest fingerprint is identical to an uninterrupted run.

Submission payloads are validated *structurally* before a job exists:
unknown fields, unregistered experiments, unknown grid presets, and —
for custom grids that embed a ``"scenario"`` object — every problem the
PR 6 scenario linter (:func:`repro.scenario.lint_scenario`) reports,
each as a ``{"field", "message"}`` pair naming the offending field
(``grid[3].scenario.uavs[0].battery_wh`` style), so API clients get
machine-actionable errors instead of a stack trace.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.harness.cache import DEFAULT_TENANT, validate_tenant_id

#: Every state a job record may carry.
JOB_STATES = ("submitted", "queued", "running", "done", "failed", "cancelled")

#: States in which a job no longer occupies (or awaits) a worker slot.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Fields a ``POST /jobs`` payload may carry.
KNOWN_JOB_FIELDS = (
    "tenant", "experiment", "grid", "root_seed", "workers", "priority", "batch",
)

#: Upper bound on per-campaign worker processes a job may request.
MAX_JOB_WORKERS = 16


def _error(field_name: str, message: str) -> dict:
    return {"field": field_name, "message": message}


def _validate_int(payload: dict, name: str, errors: list[dict],
                  minimum: int | None = None, maximum: int | None = None) -> None:
    value = payload.get(name)
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        errors.append(_error(name, f"expected an integer, got {value!r}"))
        return
    if minimum is not None and value < minimum:
        errors.append(_error(name, f"must be >= {minimum}, got {value}"))
    if maximum is not None and value > maximum:
        errors.append(_error(name, f"must be <= {maximum}, got {value}"))


def _validate_grid_preset(experiment, preset: str, errors: list[dict]) -> None:
    """Check a preset name against the experiment's declared catalogue.

    Membership is checked against ``experiment.presets`` (cheap) rather
    than resolving the grid — resolving e.g. a fuzz grid generates and
    lints hundreds of scenarios, which does not belong in the submit
    path. Parameterized presets (``profile:count``) validate the base
    name and the count.
    """
    base, sep, count_text = preset.partition(":")
    if base not in experiment.presets:
        errors.append(_error(
            "grid",
            f"unknown grid preset {preset!r} for experiment "
            f"{experiment.name!r}; known presets: {list(experiment.presets)}",
        ))
        return
    if sep:
        try:
            count = int(count_text)
        except ValueError:
            errors.append(_error(
                "grid", f"preset count must be an integer, got {count_text!r}"
            ))
            return
        if count < 1:
            errors.append(_error("grid", f"preset count must be >= 1, got {count}"))


def _validate_custom_grid(configs: list, errors: list[dict]) -> None:
    from repro.scenario import lint_scenario

    if not configs:
        errors.append(_error("grid", "custom grid must contain at least one config"))
        return
    for i, config in enumerate(configs):
        if not isinstance(config, dict):
            errors.append(_error(
                f"grid[{i}]",
                f"expected a JSON object, got {type(config).__name__}",
            ))
            continue
        try:
            json.dumps(config)
        except (TypeError, ValueError):
            errors.append(_error(f"grid[{i}]", "config is not JSON-serializable"))
            continue
        scenario = config.get("scenario")
        if scenario is not None:
            try:
                problems = lint_scenario(scenario)
            except Exception as exc:  # loader crash on grossly malformed input
                problems = [f"unloadable scenario: {type(exc).__name__}: {exc}"]
            for problem in problems:
                errors.append(_error(f"grid[{i}].scenario", problem))


def validate_job_payload(payload: Any) -> list[dict]:
    """Validate a job-submission payload; returns structured field errors.

    Empty list = acceptable. Each error is ``{"field": ..., "message":
    ...}`` with the field path spelled out (``grid[2].scenario.chaos.mode``
    style for embedded scenarios), mirroring the scenario linter's
    naming discipline.
    """
    if not isinstance(payload, dict):
        return [_error("", f"expected a JSON object, got {type(payload).__name__}")]
    errors: list[dict] = []
    for key in sorted(set(payload) - set(KNOWN_JOB_FIELDS)):
        errors.append(_error(
            str(key), f"unknown field (known: {list(KNOWN_JOB_FIELDS)})"
        ))

    tenant = payload.get("tenant", DEFAULT_TENANT)
    problem = validate_tenant_id(tenant)
    if problem is not None:
        errors.append(_error("tenant", problem))

    from repro.experiments.campaigns import get_experiment

    name = payload.get("experiment")
    experiment = None
    if not isinstance(name, str) or not name:
        errors.append(_error(
            "experiment", f"required and must be a string, got {name!r}"
        ))
    else:
        try:
            experiment = get_experiment(name)
        except KeyError as exc:
            errors.append(_error("experiment", exc.args[0]))

    grid = payload.get("grid", "default")
    if isinstance(grid, str):
        if experiment is not None:
            _validate_grid_preset(experiment, grid, errors)
    elif isinstance(grid, list):
        _validate_custom_grid(grid, errors)
    else:
        errors.append(_error(
            "grid",
            "expected a preset name or a list of config objects, "
            f"got {type(grid).__name__}",
        ))

    _validate_int(payload, "root_seed", errors)
    _validate_int(payload, "workers", errors, minimum=1, maximum=MAX_JOB_WORKERS)
    _validate_int(payload, "priority", errors)
    batch = payload.get("batch")
    if batch is not None and not isinstance(batch, bool):
        errors.append(_error("batch", f"expected a boolean, got {batch!r}"))
    return errors


@dataclass
class Job:
    """One campaign run owned by a tenant, as persisted on disk."""

    id: str
    tenant: str
    experiment: str
    grid: str | list
    root_seed: int = 0
    workers: int = 1
    priority: int = 0
    batch: bool = False
    state: str = "submitted"
    seq: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Manifest fingerprint once the campaign finished cleanly.
    fingerprint: str | None = None
    #: ``totals`` block of the finished manifest (schema v3).
    totals: dict | None = None
    #: Structured error for ``failed`` jobs.
    error: dict | None = None
    #: Samples completed when the job was cancelled (progress marker).
    completed: int | None = None

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "experiment": self.experiment,
            "grid": self.grid,
            "root_seed": self.root_seed,
            "workers": self.workers,
            "priority": self.priority,
            "batch": self.batch,
            "state": self.state,
            "seq": self.seq,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "fingerprint": self.fingerprint,
            "totals": self.totals,
            "error": self.error,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_payload(cls, payload: dict, seq: int) -> "Job":
        """Build a fresh job from a *validated* submission payload."""
        return cls(
            id=f"job-{uuid.uuid4().hex[:12]}",
            tenant=payload.get("tenant", DEFAULT_TENANT),
            experiment=payload["experiment"],
            grid=payload.get("grid", "default"),
            root_seed=int(payload.get("root_seed", 0)),
            workers=int(payload.get("workers", 1)),
            priority=int(payload.get("priority", 0)),
            batch=bool(payload.get("batch", False)),
            state="submitted",
            seq=seq,
            submitted_at=time.time(),
        )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobStore:
    """Durable on-disk job records: ``<root>/<id>/job.json``.

    Each job owns a directory holding its record plus the artifacts the
    scheduler and API build on: ``stream.ndjson`` (live per-sample
    checkpoint tail), ``manifest.json`` (written by the campaign on
    completion), ``outcome.json`` (terminal verdict written by the job
    process), and the ``cancel`` marker file (cooperative cancellation
    flag polled by the running campaign). Records are written atomically
    (temp + fsync + rename), same discipline as the result cache.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------- paths
    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def stream_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "stream.ndjson"

    def manifest_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "manifest.json"

    def outcome_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "outcome.json"

    def cancel_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "cancel"

    # ----------------------------------------------------------- store
    def save(self, job: Job) -> None:
        """Atomically persist ``job`` (durable across a server kill)."""
        path = self.record_path(job.id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(job.to_dict(), handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, job_id: str) -> Job | None:
        """The stored job, or None if unknown/corrupt."""
        try:
            with open(self.record_path(job_id), encoding="utf-8") as handle:
                return Job.from_dict(json.load(handle))
        except (OSError, json.JSONDecodeError, TypeError):
            return None

    def list_jobs(self, tenant: str | None = None) -> list[Job]:
        """All stored jobs (optionally one tenant's), in submission order."""
        jobs = []
        if self.root.is_dir():
            for entry in self.root.iterdir():
                if not entry.is_dir():
                    continue
                job = self.load(entry.name)
                if job is not None and (tenant is None or job.tenant == tenant):
                    jobs.append(job)
        return sorted(jobs, key=lambda j: (j.seq, j.id))

    def next_seq(self) -> int:
        """A submission sequence number above every stored job's."""
        jobs = self.list_jobs()
        return (max(j.seq for j in jobs) + 1) if jobs else 1

    def request_cancel(self, job_id: str) -> None:
        """Raise the cooperative-cancel flag the running campaign polls."""
        path = self.cancel_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()

    def cancel_requested(self, job_id: str) -> bool:
        return self.cancel_path(job_id).exists()

    def clear_cancel(self, job_id: str) -> None:
        try:
            self.cancel_path(job_id).unlink()
        except OSError:
            pass

    def recover(self) -> list[Job]:
        """Re-queue jobs interrupted by a server death; returns them.

        Jobs found in ``submitted``/``queued``/``running`` were lost
        mid-flight: their state rewinds to ``queued`` (stale cancel
        markers cleared) and the scheduler re-runs them with
        ``resume=True`` — completed samples come back as cache hits, so
        the resumed manifest fingerprints identically to an
        uninterrupted run. Terminal jobs are left untouched.
        """
        requeued = []
        for job in self.list_jobs():
            if job.terminal:
                continue
            self.clear_cancel(job.id)
            job.state = "queued"
            job.started_at = None
            self.save(job)
            requeued.append(job)
        return requeued
