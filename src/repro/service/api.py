"""Stdlib-only HTTP API over the campaign scheduler.

Hand-rolled HTTP/1.1 on ``asyncio.start_server`` — no framework, no new
runtime dependency, every response ``Connection: close``. The surface:

================================  =====================================
``POST /jobs``                    submit a campaign job (validated; 400
                                  returns ``{"errors": [{field,
                                  message}, ...]}``)
``GET /jobs[?tenant=t]``          list job records
``GET /jobs/<id>``                one job's record + live progress +
                                  manifest totals once it exists
``GET /jobs/<id>/stream``         NDJSON live tail of the per-sample
                                  checkpoint stream (follows until the
                                  job is terminal)
``DELETE /jobs/<id>``             cooperative cancel (job stays
                                  resumable)
``POST /jobs/<id>/resume``        re-queue a terminal job from its
                                  checkpoints
``GET /experiments``              experiment catalogue with grid presets
                                  (valid ``POST /jobs`` payload space)
``GET /metrics``                  Prometheus text exposition
                                  (``text/plain; version=0.0.4``)
``GET /healthz``                  liveness probe
================================  =====================================

:class:`CampaignService` binds a scheduler and this API to a socket;
:func:`serve` is the ``python -m repro serve`` entry (SIGINT/SIGTERM →
graceful shutdown: running jobs checkpoint and rewind to ``queued`` so a
restarted server resumes them); :class:`ServiceThread` hosts the same
service on a background thread for tests and embedding.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.harness.manifest import read_manifest, status_counts
from repro.service.scheduler import CampaignScheduler

#: Largest request body accepted (a custom grid of config objects).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Exposition-format content type Prometheus scrapers negotiate.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 500: "Internal Server Error",
}


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns (method, path, query, body) or None."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _HTTPError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        hline = await reader.readline()
        if hline in (b"\r\n", b"\n", b""):
            break
        if b":" in hline:
            key, value = hline.decode("latin-1").split(":", 1)
            headers[key.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HTTPError(400, "malformed Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise _HTTPError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    split = urlsplit(target)
    return method.upper(), split.path, parse_qs(split.query), body


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
) -> None:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def _respond_json(writer, status: int, payload: dict) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    await _respond(writer, status, body)


class ServiceAPI:
    """Routes HTTP requests onto a :class:`CampaignScheduler`."""

    def __init__(self, scheduler: CampaignScheduler) -> None:
        self.scheduler = scheduler
        self.store = scheduler.store

    async def handle(self, reader, writer) -> None:
        method, route, status = "?", "?", 500
        try:
            request = await asyncio.wait_for(_read_request(reader), timeout=30.0)
            if request is None:
                return
            method, path, query, body = request
            status, route = await self._dispatch(method, path, query, body, writer)
        except _HTTPError as exc:
            status, route = exc.status, "bad-request"
            await self._safe_error(writer, exc.status, str(exc))
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            return
        except Exception as exc:  # one bad request must never kill the server
            status = 500
            await self._safe_error(writer, 500, f"{type(exc).__name__}: {exc}")
        finally:
            self.scheduler.metrics.inc(
                "service_http_requests_total",
                method=method, route=route, status=status,
            )
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _safe_error(self, writer, status: int, message: str) -> None:
        try:
            await _respond_json(writer, status, {"error": message})
        except Exception:
            pass

    # ---------------------------------------------------------- routing
    async def _dispatch(self, method, path, query, body, writer):
        """Route one request; returns (status, route label)."""
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            await _respond_json(writer, 200, {"ok": True})
            return 200, "/healthz"
        if path == "/metrics" and method == "GET":
            text = self._metrics_text()
            await _respond(
                writer, 200, text.encode("utf-8"), content_type=PROM_CONTENT_TYPE
            )
            return 200, "/metrics"
        if path == "/experiments" and method == "GET":
            from repro.experiments.campaigns import experiment_catalog

            await _respond_json(
                writer, 200, {"experiments": experiment_catalog()}
            )
            return 200, "/experiments"
        if parts[:1] == ["jobs"]:
            if len(parts) == 1:
                if method == "POST":
                    return await self._submit(body, writer), "/jobs"
                if method == "GET":
                    return await self._list(query, writer), "/jobs"
                raise _HTTPError(405, f"{method} not allowed on /jobs")
            job_id = parts[1]
            if len(parts) == 2:
                if method == "GET":
                    return await self._status(job_id, writer), "/jobs/{id}"
                if method == "DELETE":
                    return await self._cancel(job_id, writer), "/jobs/{id}"
                raise _HTTPError(405, f"{method} not allowed on /jobs/<id>")
            if len(parts) == 3 and parts[2] == "stream" and method == "GET":
                return await self._stream(job_id, writer), "/jobs/{id}/stream"
            if len(parts) == 3 and parts[2] == "resume" and method == "POST":
                return await self._resume(job_id, writer), "/jobs/{id}/resume"
        await _respond_json(
            writer, 404, {"error": f"no route for {method} {path}"}
        )
        return 404, "unknown"

    def _metrics_text(self) -> str:
        from repro.obs.export import prometheus_text

        return prometheus_text(self.scheduler.metrics_snapshot())

    # --------------------------------------------------------- handlers
    async def _submit(self, body: bytes, writer) -> int:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await _respond_json(
                writer, 400,
                {"errors": [{"field": "", "message": f"invalid JSON body: {exc}"}]},
            )
            return 400
        job, errors = self.scheduler.submit(payload)
        if errors:
            await _respond_json(writer, 400, {"errors": errors})
            return 400
        await _respond_json(writer, 201, {"job": job.to_dict()})
        return 201

    async def _list(self, query, writer) -> int:
        tenant = (query.get("tenant") or [None])[0]
        jobs = [job.to_dict() for job in self.store.list_jobs(tenant=tenant)]
        await _respond_json(writer, 200, {"jobs": jobs})
        return 200

    async def _status(self, job_id: str, writer) -> int:
        job = self.store.load(job_id)
        if job is None:
            await _respond_json(writer, 404, {"error": f"unknown job {job_id!r}"})
            return 404
        payload = {"job": job.to_dict()}
        payload["progress"] = {"streamed": self._streamed(job_id)}
        manifest_path = self.store.manifest_path(job_id)
        if manifest_path.exists():
            try:
                manifest = read_manifest(manifest_path)
            except (OSError, json.JSONDecodeError):
                manifest = None
            if manifest is not None:
                payload["totals"] = manifest.get("totals")
                payload["status_counts"] = status_counts(manifest)
        await _respond_json(writer, 200, payload)
        return 200

    def _streamed(self, job_id: str) -> int:
        """Completed samples so far = lines in the checkpoint stream."""
        try:
            with open(self.store.stream_path(job_id), "rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    async def _cancel(self, job_id: str, writer) -> int:
        job = self.scheduler.cancel(job_id)
        if job is None:
            await _respond_json(writer, 404, {"error": f"unknown job {job_id!r}"})
            return 404
        await _respond_json(writer, 202, {"job": job.to_dict()})
        return 202

    async def _resume(self, job_id: str, writer) -> int:
        job = self.scheduler.requeue(job_id)
        if job is None:
            await _respond_json(writer, 404, {"error": f"unknown job {job_id!r}"})
            return 404
        await _respond_json(writer, 202, {"job": job.to_dict()})
        return 202

    async def _stream(self, job_id: str, writer) -> int:
        """NDJSON live tail of the job's per-sample checkpoint stream."""
        if self.store.load(job_id) is None:
            await _respond_json(writer, 404, {"error": f"unknown job {job_id!r}"})
            return 404
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        path = self.store.stream_path(job_id)
        pos = 0
        pending = b""
        while True:
            data = b""
            try:
                if os.path.getsize(path) < pos:
                    pos, pending = 0, b""  # stream truncated by a relaunch
                with open(path, "rb") as fh:
                    fh.seek(pos)
                    data = fh.read()
                    pos += len(data)
            except OSError:
                pass
            if data:
                pending += data
                lines = pending.split(b"\n")
                pending = lines.pop()
                for line in lines:
                    writer.write(line + b"\n")
                await writer.drain()
            job = self.store.load(job_id)
            if job is None or (job.terminal and not data):
                break
            await asyncio.sleep(0.1)
        return 200


class CampaignService:
    """Scheduler + HTTP API bound to one socket; embeddable."""

    def __init__(
        self,
        jobs_root: str | Path,
        cache_root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs: int = 2,
        grace_s: float = 5.0,
        start_method: str | None = None,
    ) -> None:
        self.scheduler = CampaignScheduler(
            jobs_root, cache_root,
            max_jobs=max_jobs, grace_s=grace_s, start_method=start_method,
        )
        self.api = ServiceAPI(self.scheduler)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> list:
        """Bind the socket and recover interrupted jobs; returns them."""
        recovered = self.scheduler.recover()
        self._server = await asyncio.start_server(
            self.api.handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return recovered

    async def run(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then shut down gracefully."""
        if self._server is None:
            raise RuntimeError("CampaignService.run() before start()")
        async with self._server:
            await self._server.start_serving()
            await self.scheduler.run(stop)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    max_jobs: int = 2,
    cache_root: str | Path = ".repro-service/cache",
    jobs_root: str | Path = ".repro-service/jobs",
    grace_s: float = 5.0,
) -> int:
    """``python -m repro serve``: run the service until SIGINT/SIGTERM.

    Shutdown is graceful — running campaigns stop at the next sample
    boundary (completed samples checkpointed) and their jobs rewind to
    ``queued``; starting the server again against the same ``jobs_root``
    resumes them to a fingerprint identical to an uninterrupted run.
    """

    async def _main() -> None:
        service = CampaignService(
            jobs_root, cache_root,
            host=host, port=port, max_jobs=max_jobs, grace_s=grace_s,
        )
        recovered = await service.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"campaign service listening on http://{service.host}:{service.port} "
            f"(max {max_jobs} concurrent jobs)",
            flush=True,
        )
        if recovered:
            print(
                f"recovered {len(recovered)} interrupted job(s); resuming",
                flush=True,
            )
        await service.run(stop)
        print(
            "campaign service stopped; interrupted jobs are checkpointed "
            "and will resume on restart",
            flush=True,
        )

    asyncio.run(_main())
    return 0


class ServiceThread:
    """Host a :class:`CampaignService` on a background thread.

    The embedding used by the test suite and benchmarks (and handy in
    notebooks): ``start()`` blocks until the socket is bound and exposes
    ``base_url``; ``stop()`` triggers the same graceful shutdown as
    SIGTERM. Job processes are spawned (never forked) because the
    embedding process is multi-threaded by construction.
    """

    def __init__(self, **service_kwargs) -> None:
        self._kwargs = dict(service_kwargs)
        self._kwargs.setdefault("start_method", "spawn")
        self.service: CampaignService | None = None
        self.recovered: list = []
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="campaign-service", daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("campaign service failed to start in 30 s")
        if self._error is not None:
            raise RuntimeError("campaign service failed to start") from self._error
        return self

    async def _main(self) -> None:
        try:
            self._loop = asyncio.get_running_loop()
            self.service = CampaignService(**self._kwargs)
            self.recovered = await self.service.start()
            self._stop = asyncio.Event()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            raise
        self._started.set()
        await self.service.run(self._stop)

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
