"""Asyncio job scheduler: a priority queue feeding campaign processes.

The scheduler owns the job lifecycle between ``queued`` and a terminal
state. Queued jobs sit in a priority heap (higher ``priority`` first,
FIFO within a priority); at most ``max_jobs`` campaigns execute at once,
each in its own child process so the event loop — and the HTTP API it
serves — stays live while simulations grind. The job process runs
:func:`repro.harness.campaign.run_campaign` with ``resume=True`` against
the tenant's private cache shard (:func:`~repro.harness.cache.tenant_cache_dir`),
streams every finished sample to ``stream.ndjson`` via the
:class:`~repro.harness.campaign.CampaignControl` hook, and writes a
terminal ``outcome.json`` the parent folds back into the job record.

Fingerprint faithfulness: the scheduler passes (experiment, grid,
root_seed, workers, batch) through to ``run_campaign`` untouched and
adds no configuration of its own, so a job submitted over HTTP produces
a manifest fingerprint byte-identical to the same campaign run from the
CLI.

Cancellation is cooperative: ``cancel()`` raises an on-disk flag
(``cancel`` marker) the running campaign polls between samples; the
campaign stops at the next sample boundary, in-flight attempts are
terminated un-checkpointed, and the job lands in ``cancelled`` — still
resumable, because completed samples stayed in the cache. Graceful
shutdown uses the same flag against every running job, waits out a grace
period, then terminates stragglers and rewinds their jobs to ``queued``
so a restarted server resumes them (:meth:`CampaignScheduler.recover`).
"""

from __future__ import annotations

import asyncio
import heapq
import json
import multiprocessing
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.harness.cache import tenant_cache_dir
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import Job, JobStore, validate_job_payload


def _write_json(path: Path, obj: dict) -> None:
    path.write_text(json.dumps(obj, sort_keys=True) + "\n", encoding="utf-8")


def _job_entry(job_data: dict, job_dir: str, cache_dir: str) -> None:
    """Job child process: run the campaign, stream samples, report back.

    Runs in its own process (fork or spawn) so a long campaign never
    blocks the scheduler's event loop, and a hard crash takes out only
    this job. The campaign itself may shard further across its own
    worker pool (``job.workers``). The terminal verdict is written to
    ``outcome.json`` — exit codes are deliberately not load-bearing.
    """
    import repro.experiments.campaigns  # noqa: F401  (registers every experiment)
    from repro.harness.campaign import (
        CampaignAborted,
        CampaignCancelled,
        CampaignControl,
        run_campaign,
    )

    job = Job.from_dict(job_data)
    base = Path(job_dir)
    cancel_path = base / "cancel"
    with open(base / "stream.ndjson", "w", encoding="utf-8") as stream:
        def on_record(record: dict) -> None:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            stream.flush()

        control = CampaignControl(
            should_cancel=cancel_path.exists, on_record=on_record
        )
        try:
            result = run_campaign(
                job.experiment,
                grid=job.grid,
                root_seed=job.root_seed,
                workers=job.workers,
                cache_dir=cache_dir,
                manifest_path=base / "manifest.json",
                resume=True,
                batch=job.batch,
                control=control,
            )
            outcome = {
                "state": "done",
                "fingerprint": result.fingerprint,
                "totals": result.manifest["totals"],
            }
        except CampaignCancelled as exc:
            outcome = {
                "state": "cancelled",
                "completed": exc.completed,
                "total": exc.total,
            }
        except CampaignAborted as exc:
            outcome = {
                "state": "failed",
                "error": {"type": "CampaignAborted", "message": str(exc)},
            }
        except BaseException as exc:
            outcome = {
                "state": "failed",
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
    _write_json(base / "outcome.json", outcome)


def _job_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Pick the start method for job processes.

    Fork is fastest (and inherits registered experiments), but forking a
    multi-threaded process risks deadlocks — an embedded service runs
    the event loop on a background thread — so anything beyond the lone
    main thread falls back to spawn, where :func:`_job_entry` re-imports
    the experiment registry itself.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


@dataclass
class _RunningJob:
    job: Job
    process: multiprocessing.process.BaseProcess
    started: float


class CampaignScheduler:
    """Priority queue + bounded pool of campaign job processes."""

    def __init__(
        self,
        jobs_root: str | Path,
        cache_root: str | Path,
        max_jobs: int = 2,
        grace_s: float = 5.0,
        start_method: str | None = None,
    ) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        self.store = JobStore(jobs_root)
        self.cache_root = Path(cache_root)
        self.max_jobs = max_jobs
        self.grace_s = grace_s
        self.metrics = MetricsRegistry()
        self._start_method = start_method
        self._heap: list[tuple[int, int, str]] = []
        self._running: dict[str, _RunningJob] = {}
        self._seq = self.store.next_seq()
        self._stopping = False

    # ------------------------------------------------------------ intake
    def recover(self) -> list[Job]:
        """Re-queue jobs a dead server left in flight; returns them."""
        requeued = self.store.recover()
        for job in requeued:
            heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
        self._seq = self.store.next_seq()
        return requeued

    def submit(self, payload: dict) -> tuple[Job | None, list[dict]]:
        """Validate and enqueue one job; returns (job, field errors)."""
        errors = validate_job_payload(payload)
        if errors:
            self.metrics.inc("service_jobs_rejected_total")
            return None, errors
        job = Job.from_payload(payload, self._seq)
        self._seq += 1
        self.store.save(job)  # durable in "submitted" before it can run
        self._enqueue(job)
        self.metrics.inc(
            "service_jobs_submitted_total",
            experiment=job.experiment, tenant=job.tenant,
        )
        return job, []

    def _enqueue(self, job: Job) -> None:
        job.state = "queued"
        self.store.save(job)
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))

    def requeue(self, job_id: str) -> Job | None:
        """Resume a terminal job: wipe its verdict and queue it again.

        Cancelled and failed jobs pick up from their checkpoints
        (completed samples are cache hits); resuming a ``done`` job is
        an idempotent no-op sweep that reproduces the same fingerprint.
        """
        job = self.store.load(job_id)
        if job is None or not job.terminal:
            return job
        self.store.clear_cancel(job_id)
        try:
            self.store.outcome_path(job_id).unlink()
        except OSError:
            pass
        job.fingerprint = None
        job.totals = None
        job.error = None
        job.completed = None
        job.finished_at = None
        self._enqueue(job)
        return job

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job cooperatively; returns its current record.

        Queued jobs are cancelled outright. Running jobs get the on-disk
        cancel flag and transition once the campaign stops at the next
        sample boundary — completed samples stay checkpointed, so the
        job remains resumable (:meth:`requeue`).
        """
        job = self.store.load(job_id)
        if job is None or job.terminal:
            return job
        if job_id in self._running:
            self.store.request_cancel(job_id)
            return self.store.load(job_id)
        job.state = "cancelled"
        job.finished_at = time.time()
        self.store.save(job)
        self.metrics.inc("service_jobs_finished_total", state="cancelled")
        return job

    # --------------------------------------------------------- execution
    def tick(self) -> None:
        """One scheduler pass: reap finished jobs, fill free slots."""
        self._poll_running()
        self._fill_slots()
        self.metrics.gauge("service_jobs_running", len(self._running))
        self.metrics.gauge("service_jobs_queued", len(self._heap))

    def _fill_slots(self) -> None:
        while (
            self._heap
            and len(self._running) < self.max_jobs
            and not self._stopping
        ):
            _, _, job_id = heapq.heappop(self._heap)
            job = self.store.load(job_id)
            if job is None or job.state != "queued":
                continue  # cancelled (or vanished) while waiting
            self._launch(job)

    def _launch(self, job: Job) -> None:
        job_dir = self.store.job_dir(job.id)
        job_dir.mkdir(parents=True, exist_ok=True)
        self.store.clear_cancel(job.id)
        try:
            self.store.outcome_path(job.id).unlink()
        except OSError:
            pass
        cache_dir = tenant_cache_dir(self.cache_root, job.tenant)
        ctx = _job_context(self._start_method)
        process = ctx.Process(
            target=_job_entry,
            args=(job.to_dict(), str(job_dir), str(cache_dir)),
            name=f"service-{job.id}",
        )
        process.start()
        job.state = "running"
        job.started_at = time.time()
        self.store.save(job)
        self._running[job.id] = _RunningJob(job, process, time.monotonic())

    def _poll_running(self) -> None:
        for job_id, slot in list(self._running.items()):
            if slot.process.is_alive():
                continue
            slot.process.join()
            del self._running[job_id]
            self._finish(job_id, slot)

    def _finish(self, job_id: str, slot: _RunningJob) -> None:
        """Fold a finished job process's outcome into its record."""
        job = self.store.load(job_id) or slot.job
        outcome = None
        try:
            with open(self.store.outcome_path(job_id), encoding="utf-8") as fh:
                outcome = json.load(fh)
        except (OSError, json.JSONDecodeError):
            pass
        if outcome is None:
            outcome = {
                "state": "failed",
                "error": {
                    "type": "JobCrash",
                    "message": (
                        f"job process exited with code {slot.process.exitcode} "
                        "before reporting an outcome"
                    ),
                },
            }
        if self._stopping and outcome["state"] == "cancelled":
            # Shutdown, not a user cancel: rewind to queued so the next
            # server start resumes from the checkpoints.
            self._requeue_for_restart(job)
            return
        job.state = outcome["state"]
        job.fingerprint = outcome.get("fingerprint")
        job.totals = outcome.get("totals")
        job.error = outcome.get("error")
        job.completed = outcome.get("completed")
        job.finished_at = time.time()
        self.store.save(job)
        self.store.clear_cancel(job_id)
        self.metrics.inc("service_jobs_finished_total", state=job.state)
        self.metrics.observe(
            "service_job_duration_seconds",
            max(0.0, job.finished_at - job.submitted_at),
            experiment=job.experiment,
        )

    def _requeue_for_restart(self, job: Job) -> None:
        self.store.clear_cancel(job.id)
        try:
            self.store.outcome_path(job.id).unlink()
        except OSError:
            pass
        job.state = "queued"
        job.started_at = None
        self.store.save(job)

    # ------------------------------------------------------ service loop
    async def run(self, stop: asyncio.Event, poll_s: float = 0.05) -> None:
        """Drive the scheduler until ``stop`` is set, then shut down."""
        while not stop.is_set():
            self.tick()
            try:
                await asyncio.wait_for(stop.wait(), timeout=poll_s)
            except asyncio.TimeoutError:
                pass
        await self.shutdown()

    async def run_until_idle(self, poll_s: float = 0.02) -> None:
        """Drive until the queue and the running set are both empty."""
        while self._heap or self._running:
            self.tick()
            await asyncio.sleep(poll_s)

    async def shutdown(self) -> None:
        """Graceful stop: checkpoint running jobs and rewind them to queued.

        Raises the cooperative cancel flag against every running
        campaign, waits up to ``grace_s`` for them to stop at a sample
        boundary (checkpointing completed work), then terminates
        stragglers. Either way the jobs land back in ``queued`` on disk,
        which is what makes kill-and-restart resume work.
        """
        self._stopping = True
        for job_id in self._running:
            self.store.request_cancel(job_id)
        deadline = time.monotonic() + self.grace_s
        while self._running and time.monotonic() < deadline:
            self._poll_running()
            if self._running:
                await asyncio.sleep(0.05)
        for job_id, slot in list(self._running.items()):
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join()
            del self._running[job_id]
            self._requeue_for_restart(self.store.load(job_id) or slot.job)

    # ----------------------------------------------------------- queries
    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()
