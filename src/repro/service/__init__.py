"""``repro.service`` — campaign-as-a-service: jobs, scheduler, HTTP API.

The campaign harness turned into a long-running multi-tenant backend:
:mod:`repro.service.jobs` defines the validated, durably-persisted job
model (``submitted → queued → running → done|failed|cancelled``),
:mod:`repro.service.scheduler` feeds a priority queue into a bounded
pool of campaign job processes with per-tenant result-cache shards and
graceful-shutdown checkpointing, and :mod:`repro.service.api` serves the
whole thing over a stdlib-only HTTP API (submit / status / NDJSON live
stream / cooperative cancel / Prometheus ``/metrics``).

Start it with ``python -m repro serve``; a job submitted over HTTP
produces a manifest fingerprint byte-identical to the same campaign run
from the CLI.
"""

from repro.service.api import CampaignService, ServiceThread, serve
from repro.service.jobs import Job, JobStore, validate_job_payload
from repro.service.scheduler import CampaignScheduler

__all__ = [
    "CampaignService",
    "CampaignScheduler",
    "Job",
    "JobStore",
    "ServiceThread",
    "serve",
    "validate_job_payload",
]
