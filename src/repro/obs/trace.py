"""Span tracer: nested wall-time + sim-time intervals.

A span brackets one unit of work (``with span("eddi.diagnose",
sim_time=now, uav="u1"): ...``) and records its wall-clock start/duration
relative to the tracer's epoch, the simulation time when it opened, its
nesting depth, and the index of its enclosing span — enough to rebuild
the call tree or a Chrome ``chrome://tracing`` flame view. Spans close in
a ``finally`` block, so an exception inside the body still produces a
well-formed (and correctly un-nested) record before propagating.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One (possibly still open) traced interval."""

    name: str
    sim_time: float | None = None
    labels: dict = field(default_factory=dict)
    start_s: float = 0.0      # offset from the tracer epoch (wall)
    duration_s: float = 0.0
    depth: int = 0
    parent: int | None = None  # index of the enclosing span, if recorded
    index: int = -1

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "sim_time": self.sim_time,
            "labels": dict(self.labels),
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "depth": self.depth,
            "parent": self.parent,
            "index": self.index,
        }


class _OpenSpan:
    """Context manager closing one span; reusable-free (one per entry)."""

    __slots__ = ("_tracer", "span", "_t0", "_record")

    def __init__(self, tracer: "Tracer", span: Span, record: bool) -> None:
        self._tracer = tracer
        self.span = span
        self._record = record
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        if self._record:
            self.span.start_s = self._t0 - self._tracer.epoch
            self._tracer._open(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration_s = time.perf_counter() - self._t0
        if self._record:
            self._tracer._close(self.span)


class Tracer:
    """Collects finished spans; bounded, process-local."""

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_index = 0

    def span(self, name: str, sim_time: float | None = None,
             **labels: object) -> _OpenSpan:
        """Open a recorded span (see module docstring)."""
        return _OpenSpan(self, Span(name=name, sim_time=sim_time,
                                    labels=dict(labels)), record=True)

    def timed(self, name: str, sim_time: float | None = None,
              **labels: object) -> _OpenSpan:
        """A span that measures duration but is never recorded.

        The building block for callers (like the campaign
        :class:`~repro.harness.timing.PhaseTimer`) that need the elapsed
        time regardless of whether observability is on.
        """
        return _OpenSpan(self, Span(name=name, sim_time=sim_time,
                                    labels=dict(labels)), record=False)

    # ----------------------------------------------------------- internal
    def _open(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.parent = self._stack[-1].index if self._stack else None
        span.index = self._next_index
        self._next_index += 1
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Exception-tolerant unwinding: pop through anything left open by
        # a non-context-manager misuse, down to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1

    # ------------------------------------------------------------- export
    def drain(self) -> list[dict]:
        """Return all finished spans as dicts and forget them."""
        out = [s.to_dict() for s in self.spans]
        for record in out:
            record["pid"] = os.getpid()
        self.spans.clear()
        return out

    def clear(self) -> None:
        """Drop every recorded span and reset the epoch."""
        self.spans.clear()
        self._stack.clear()
        self.dropped = 0
        self._next_index = 0
        self.epoch = time.perf_counter()
