"""``python -m repro obs ...`` — work with recorded traces from the shell.

Subcommands::

    python -m repro obs summarize run.jsonl        # human-readable report
    python -m repro obs chrome run.jsonl -o out.json   # chrome://tracing
    python -m repro obs prom run.jsonl             # Prometheus text dump

The trace files come from ``--trace`` on the ``campaign`` and
single-experiment subcommands, or from :func:`repro.obs.capture`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs import read_trace, summarize_trace
from repro.obs.export import prometheus_text, write_chrome_trace
from repro.obs.metrics import merge_snapshots


def add_obs_parser(subparsers) -> None:
    """Attach the ``obs`` subcommand tree to the top-level CLI."""
    obs = subparsers.add_parser(
        "obs", help="summarize or export a recorded observability trace"
    )
    actions = obs.add_subparsers(dest="obs_action", required=True)

    summarize = actions.add_parser(
        "summarize", help="render a human-readable trace report"
    )
    summarize.add_argument("trace", help="JSONL trace file (from --trace)")

    chrome = actions.add_parser(
        "chrome", help="export a Chrome trace-event JSON (chrome://tracing)"
    )
    chrome.add_argument("trace", help="JSONL trace file (from --trace)")
    chrome.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <trace>.chrome.json)",
    )

    prom = actions.add_parser(
        "prom", help="dump the trace's metrics snapshot as Prometheus text"
    )
    prom.add_argument("trace", help="JSONL trace file (from --trace)")


def run_obs_cli(args: argparse.Namespace) -> int:
    """Execute one ``obs`` action; returns the process exit code."""
    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"no such trace file: {trace_path}", file=sys.stderr)
        return 2
    if args.obs_action == "summarize":
        print(summarize_trace(trace_path))
        return 0
    if args.obs_action == "chrome":
        output = (
            Path(args.output) if args.output is not None
            else trace_path.with_suffix(".chrome.json")
        )
        write_chrome_trace(read_trace(trace_path), output)
        print(f"chrome trace: {output}  (open in chrome://tracing or Perfetto)")
        return 0
    if args.obs_action == "prom":
        snapshot = merge_snapshots(
            r["snapshot"] for r in read_trace(trace_path)
            if r.get("kind") == "metrics"
        )
        sys.stdout.write(prometheus_text(snapshot))
        return 0
    raise AssertionError(f"unhandled obs action {args.obs_action!r}")
