"""``repro.obs`` — unified observability: metrics, spans, structured events.

One process-local session (:data:`OBS`) holds a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.trace.Tracer`, and an
:class:`~repro.obs.events.EventLog` behind a single enable switch.
Instrumented code either guards with ``if OBS.enabled:`` (hot paths —
one attribute load and a branch when off) or calls the module-level
helpers :func:`span` and :func:`event`, which collapse to a cached no-op
when disabled. Nothing is ever recorded unless something turned the
session on, so an uninstrumented-feeling zero-cost default is the normal
state of the world.

Typical use::

    from repro import obs

    with obs.capture(trace_path="run.jsonl"):
        run_experiment()
    # run.jsonl now holds spans, events, and a final metrics snapshot

    text = obs.summarize_trace("run.jsonl")   # human-readable report

Campaign workers each run inside :func:`isolated` sessions; their
snapshots fold back together with
:func:`~repro.obs.metrics.merge_snapshots` (see
:mod:`repro.harness.campaign`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import Tracer

__all__ = [
    "OBS",
    "ObsSession",
    "MetricsRegistry",
    "merge_snapshots",
    "enable",
    "disable",
    "reset",
    "span",
    "timed_span",
    "event",
    "isolated",
    "capture",
    "collect",
    "write_trace",
    "read_trace",
    "summarize_trace",
]

TRACE_SCHEMA_VERSION = 1


class ObsSession:
    """The bundle of instruments behind one enable switch."""

    __slots__ = ("enabled", "metrics", "tracer", "events")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog()

    def clear(self) -> None:
        """Forget everything recorded; keeps the enabled flag."""
        self.metrics.clear()
        self.tracer.clear()
        self.events.clear()

    def collect(self) -> dict:
        """Drain spans/events and snapshot metrics into one payload."""
        return {
            "spans": self.tracer.drain(),
            "events": self.events.drain(),
            "metrics": self.metrics.snapshot(),
        }


#: The process-local session every instrumented call site consults.
OBS = ObsSession()


def enable() -> None:
    """Turn recording on (idempotent)."""
    OBS.enabled = True


def disable() -> None:
    """Turn recording off (idempotent); recorded data is kept."""
    OBS.enabled = False


def reset() -> None:
    """Disable and drop everything recorded so far."""
    OBS.enabled = False
    OBS.clear()


class _NullSpan:
    """Reusable, stateless no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, sim_time: float | None = None, **labels: object):
    """A recorded span when the session is on; a cached no-op when off."""
    if not OBS.enabled:
        return _NULL_SPAN
    return OBS.tracer.span(name, sim_time=sim_time, **labels)


def timed_span(name: str, sim_time: float | None = None, **labels: object):
    """A span that always measures its duration.

    It lands in the tracer only when the session is enabled — callers
    that need elapsed time unconditionally (the campaign phase timer)
    use this so timing logic lives in exactly one place.
    """
    if not OBS.enabled:
        return OBS.tracer.timed(name, sim_time=sim_time, **labels)
    return OBS.tracer.span(name, sim_time=sim_time, **labels)


def event(severity: str, subsystem: str, name: str,
          sim_time: float | None = None, **payload: object) -> None:
    """Emit a structured event; no-op when the session is off."""
    if not OBS.enabled:
        return
    OBS.events.emit(
        severity, subsystem, name, sim_time=sim_time,
        wall_s=time.perf_counter() - OBS.tracer.epoch, **payload,
    )


def collect() -> dict:
    """Drain the global session (spans, events, metrics snapshot)."""
    return OBS.collect()


@contextmanager
def isolated(enabled: bool = True):
    """Swap in a fresh session for the duration of the block.

    Everything the block records is private to it; the previous
    session's instruments and enabled flag are restored afterwards.
    Collect the payload *inside* the block (``session.collect()``) or
    keep a reference to the yielded session. Nests cleanly — campaign
    workers use one per sample.
    """
    previous = (OBS.enabled, OBS.metrics, OBS.tracer, OBS.events)
    OBS.metrics = MetricsRegistry()
    OBS.tracer = Tracer()
    OBS.events = EventLog()
    OBS.enabled = enabled
    try:
        yield OBS
    finally:
        OBS.enabled, OBS.metrics, OBS.tracer, OBS.events = previous


@contextmanager
def capture(trace_path: str | Path | None = None, meta: dict | None = None):
    """Record everything in the block; optionally write a JSONL trace.

    Runs in an isolated session, so surrounding state is untouched.
    Yields a dict that gains a ``"payload"`` key (spans, events, metrics
    snapshot) when the block exits; when ``trace_path`` is given the
    payload is also written there as a JSONL trace.
    """
    holder: dict = {}
    with isolated(enabled=True) as session:
        try:
            yield holder
        finally:
            holder["payload"] = session.collect()
    if trace_path is not None:
        write_trace(trace_path, holder["payload"], meta=meta)


# ------------------------------------------------------------ JSONL trace
def write_trace(path: str | Path, payload: dict, meta: dict | None = None,
                append: bool = False) -> Path:
    """Write one obs payload as JSONL (meta, spans, events, metrics)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as handle:
        if not append:
            header = {"kind": "meta", "schema_version": TRACE_SCHEMA_VERSION}
            header.update(meta or {})
            handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in payload.get("spans", ()):
            handle.write(json.dumps({"kind": "span", **record},
                                    sort_keys=True) + "\n")
        for record in payload.get("events", ()):
            handle.write(json.dumps({"kind": "event", **record},
                                    sort_keys=True) + "\n")
        metrics = payload.get("metrics")
        if metrics is not None:
            handle.write(json.dumps({"kind": "metrics", "snapshot": metrics},
                                    sort_keys=True) + "\n")
    return path


def read_trace(path: str | Path) -> list[dict]:
    """Load every record of a JSONL trace file."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSONL: {exc}"
                ) from exc
    return records


def summarize_trace(path: str | Path) -> str:
    """Human-readable report of a trace file (see :mod:`repro.obs.summary`)."""
    from repro.obs.summary import render_summary

    return render_summary(read_trace(path))
