"""Structured event log: the discrete, narratable things that happened.

Where metrics answer "how many / how long" and spans answer "where did
the time go", events answer "what happened, when (in sim time), and with
what payload" — guarantee transitions, fault activations, IDS alerts,
staleness demotions. Each event carries a severity, the emitting
subsystem, the simulation time, and a JSON-able payload; the log is a
bounded in-memory list that the session flushes to the JSONL trace sink.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Accepted severities, mildest first.
SEVERITIES = ("debug", "info", "warning", "error")


@dataclass(frozen=True)
class Event:
    """One structured event."""

    severity: str
    subsystem: str
    name: str
    sim_time: float | None
    wall_s: float  # offset from the session tracer epoch
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "subsystem": self.subsystem,
            "name": self.name,
            "sim_time": self.sim_time,
            "wall_s": round(self.wall_s, 9),
            "payload": dict(self.payload),
        }


class EventLog:
    """Bounded chronological event record."""

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self.events: list[Event] = []
        self.dropped = 0

    def emit(self, severity: str, subsystem: str, name: str,
             sim_time: float | None = None, wall_s: float = 0.0,
             **payload: object) -> None:
        """Append one event (oldest-beyond-capacity are counted, not kept)."""
        if severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            Event(severity=severity, subsystem=subsystem, name=name,
                  sim_time=sim_time, wall_s=wall_s, payload=dict(payload))
        )

    def by_name(self, name: str) -> list[Event]:
        """All events with the given name, in emission order."""
        return [e for e in self.events if e.name == name]

    def drain(self) -> list[dict]:
        """Return all events as dicts and forget them."""
        out = [e.to_dict() for e in self.events]
        for record in out:
            record["pid"] = os.getpid()
        self.events.clear()
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
