"""Render a JSONL trace into the report a human actually wants to read.

Three sections, matching the questions the trace exists to answer:

* **Phases** — wall time aggregated per span name (calls, total,
  mean): where did the run spend its time?
* **Topics** — top bus topics by published message count, with
  delivered/dropped counts from the same snapshot: what was the fleet
  talking about?
* **Guarantee transitions** — every ``guarantee_transition`` event in
  sim-time order: what did the assurance layer decide, and when?

A trailing **events** section tallies everything else (fault
activations, IDS alerts, staleness demotions) by subsystem and name.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.metrics import merge_snapshots, parse_label_key

TOP_TOPICS = 12


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    return f"{seconds * 1e3:8.3f} ms"


def _span_table(spans: list[dict]) -> list[str]:
    agg: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])
    for span in spans:
        slot = agg[span["name"]]
        slot[0] += 1
        slot[1] += span["duration_s"]
    if not agg:
        return ["  (no spans recorded)"]
    width = max(len(name) for name in agg)
    lines = [f"  {'span':<{width}}  {'calls':>7}  {'total':>11}  {'mean':>11}"]
    for name, (calls, total) in sorted(
        agg.items(), key=lambda item: -item[1][1]
    ):
        lines.append(
            f"  {name:<{width}}  {calls:>7}  {_fmt_s(total):>11}"
            f"  {_fmt_s(total / calls):>11}"
        )
    return lines


def _topic_table(snapshot: dict) -> list[str]:
    published = snapshot.get("counters", {}).get("bus_published_total", {})
    if not published:
        return ["  (no bus traffic recorded)"]
    delivered = snapshot.get("counters", {}).get("bus_delivered_total", {})
    dropped_by_topic: dict[str, float] = defaultdict(float)
    for key, count in snapshot.get("counters", {}).get(
        "bus_dropped_total", {}
    ).items():
        dropped_by_topic[parse_label_key(key).get("topic", "")] += count

    rows = []
    for key, count in published.items():
        topic = parse_label_key(key).get("topic", key)
        rows.append((
            topic,
            int(count),
            int(delivered.get(key, 0.0)),
            int(dropped_by_topic.get(topic, 0.0)),
        ))
    rows.sort(key=lambda row: (-row[1], row[0]))
    shown = rows[:TOP_TOPICS]
    width = max(len(row[0]) for row in shown)
    lines = [
        f"  {'topic':<{width}}  {'published':>9}  {'delivered':>9}  {'dropped':>7}"
    ]
    for topic, pub, deliv, drop in shown:
        lines.append(f"  {topic:<{width}}  {pub:>9}  {deliv:>9}  {drop:>7}")
    if len(rows) > TOP_TOPICS:
        lines.append(f"  ... and {len(rows) - TOP_TOPICS} more topics")
    return lines


def _transition_lines(events: list[dict]) -> list[str]:
    transitions = [e for e in events if e["name"] == "guarantee_transition"]
    if not transitions:
        return ["  (no guarantee transitions recorded)"]
    transitions.sort(key=lambda e: (e.get("sim_time") or 0.0))
    lines = []
    for e in transitions:
        payload = e.get("payload", {})
        sim = e.get("sim_time")
        stamp = f"t={sim:8.1f}s" if sim is not None else "t=       ?"
        uav = payload.get("uav", "?")
        lines.append(
            f"  {stamp}  {uav:<8} {payload.get('previous', 'None')}"
            f" -> {payload.get('guarantee', '?')}"
        )
    return lines


def _event_tally(events: list[dict]) -> list[str]:
    other = [e for e in events if e["name"] != "guarantee_transition"]
    if not other:
        return ["  (none)"]
    tally: dict[tuple[str, str, str], int] = defaultdict(int)
    for e in other:
        tally[(e.get("severity", "info"), e.get("subsystem", "?"), e["name"])] += 1
    lines = []
    for (severity, subsystem, name), count in sorted(
        tally.items(), key=lambda item: (-item[1], item[0])
    ):
        lines.append(f"  {count:>6}  [{severity:<7}] {subsystem}:{name}")
    return lines


def render_summary(records: list[dict]) -> str:
    """The full report for one trace file's records."""
    meta = next((r for r in records if r.get("kind") == "meta"), {})
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    snapshot = merge_snapshots(
        r["snapshot"] for r in records if r.get("kind") == "metrics"
    )

    header = "trace summary"
    described = {k: v for k, v in meta.items()
                 if k not in ("kind", "schema_version")}
    if described:
        header += " — " + ", ".join(
            f"{k}={v}" for k, v in sorted(described.items())
        )
    sections = [
        header,
        "",
        f"phases ({len(spans)} spans)",
        *_span_table(spans),
        "",
        "top topics by message count",
        *_topic_table(snapshot),
        "",
        "guarantee transitions",
        *_transition_lines(events),
        "",
        f"other events ({len(events)} events total)",
        *_event_tally(events),
    ]
    return "\n".join(sections)
