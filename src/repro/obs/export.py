"""Trace exporters: Chrome trace-event JSON and Prometheus text format.

The Chrome exporter turns a JSONL trace (see
:func:`repro.obs.write_trace`) into the Trace Event Format consumed by
``chrome://tracing`` and Perfetto: spans become complete ("X") events
with microsecond timestamps, structured events become instant ("i")
marks. Lanes (``tid``) are derived from the labels that matter here —
the sample index for campaign traces, the UAV id for single runs — so a
sharded campaign renders one swim-lane per sample.

The Prometheus exporter renders a metrics snapshot in the plain text
exposition format (``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
series for histograms) so standard tooling can scrape a finished run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import parse_label_key


def _lane(record: dict) -> str:
    """Human-meaningful swim-lane name for a span/event record."""
    labels = record.get("labels") or record.get("payload") or {}
    if "sample" in labels:
        return f"sample {labels['sample']}"
    if "uav" in labels:
        return str(labels["uav"])
    if "scope" in labels:
        return str(labels["scope"])
    return "main"


def chrome_trace(records: Iterable[dict]) -> dict:
    """Convert JSONL trace records into a Chrome trace-event document."""
    trace_events: list[dict] = []
    lanes: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, lane: str) -> int:
        key = (pid, lane)
        if key not in lanes:
            tid = len([k for k in lanes if k[0] == pid])
            lanes[key] = tid
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tid, "args": {"name": lane},
            })
        return lanes[key]

    for record in records:
        kind = record.get("kind")
        pid = int(record.get("pid", 0))
        if kind == "span":
            tid = tid_for(pid, _lane(record))
            args = dict(record.get("labels", {}))
            if record.get("sim_time") is not None:
                args["sim_time"] = record["sim_time"]
            trace_events.append({
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "X",
                "ts": record["start_s"] * 1e6,
                "dur": record["duration_s"] * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        elif kind == "event":
            tid = tid_for(pid, _lane(record))
            args = dict(record.get("payload", {}))
            if record.get("sim_time") is not None:
                args["sim_time"] = record["sim_time"]
            trace_events.append({
                "name": f"{record['subsystem']}:{record['name']}",
                "cat": record.get("severity", "info"),
                "ph": "i",
                "s": "p",
                "ts": record.get("wall_s", 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[dict], path: str | Path) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records), handle)
        handle.write("\n")
    return path


# ----------------------------------------------------------- prometheus
def _escape(value: str) -> str:
    # Label-value escaping per the text exposition format: backslash,
    # double quote, and line feed — an unescaped newline would split one
    # sample line in two and break every scraper.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    # HELP text escaping: only backslash and line feed (quotes are legal).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(key: str) -> str:
    labels = parse_label_key(key)
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


#: HELP strings for the metric families the stack emits; anything not
#: listed falls back to a generic line so every family still carries the
#: ``# HELP``/``# TYPE`` pair scrapers expect.
METRIC_HELP = {
    "bus_dropped_total": "Bus deliveries dropped, by reason.",
    "cache_evictions_total": "Unusable result-cache records evicted.",
    "campaign_retries_total": "Campaign sample attempts retried, by failure kind.",
    "campaign_failures_total": "Campaign samples quarantined after exhausting retries.",
    "service_jobs_submitted_total": "Jobs accepted by the campaign service.",
    "service_jobs_finished_total": "Jobs that reached a terminal state, by state.",
    "service_jobs_running": "Campaign jobs currently executing.",
    "service_jobs_queued": "Campaign jobs waiting for a worker slot.",
    "service_http_requests_total": "HTTP requests served, by method/route/status.",
    "service_job_duration_seconds": "Submit-to-terminal latency of finished jobs.",
}


def _header(lines: list[str], metric: str, kind: str) -> None:
    help_text = METRIC_HELP.get(metric, f"{kind} recorded by repro.obs")
    lines.append(f"# HELP {metric} {_escape_help(help_text)}")
    lines.append(f"# TYPE {metric} {kind}")


def prometheus_text(snapshot: dict) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Every metric family gets a ``# HELP``/``# TYPE`` header and label
    values are escaped (backslash, quote, newline), so the output is
    scrape-valid even for label values derived from error messages.
    Serve it with content type ``text/plain; version=0.0.4``.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _sanitize(name)
        _header(lines, metric, "counter")
        series = snapshot["counters"][name]
        for key in sorted(series):
            lines.append(f"{metric}{_prom_labels(key)} {series[key]:g}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _sanitize(name)
        _header(lines, metric, "gauge")
        series = snapshot["gauges"][name]
        for key in sorted(series):
            lines.append(f"{metric}{_prom_labels(key)} {series[key]:g}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = _sanitize(name)
        _header(lines, metric, "histogram")
        series = snapshot["histograms"][name]
        for key in sorted(series):
            hist = series[key]
            labels = parse_label_key(key)
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                lines.append(
                    f"{metric}_bucket"
                    f"{_prom_labels(_join(labels, le=f'{float(bound):g}'))}"
                    f" {cumulative}"
                )
            cumulative += hist["counts"][-1]
            lines.append(
                f"{metric}_bucket{_prom_labels(_join(labels, le='+Inf'))}"
                f" {cumulative}"
            )
            lines.append(f"{metric}_sum{_prom_labels(key)} {hist['sum']:g}")
            lines.append(f"{metric}_count{_prom_labels(key)} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _join(labels: dict, **extra: str) -> str:
    merged = dict(labels)
    merged.update(extra)
    return ",".join(f"{k}={merged[k]}" for k in sorted(merged))
