"""Labelled metrics with cheap snapshots and cross-process merge.

The registry is process-local and lock-free: the simulation is
single-threaded per process, and the campaign engine's parallelism is
process-level, so concurrency is handled by *merging snapshots* instead
of sharing state. Each pool worker accumulates into its own registry,
the sample record carries a :meth:`MetricsRegistry.snapshot`, and the
parent folds all snapshots with :func:`merge_snapshots` — by
construction the merged result equals what a serial run would have
counted.

Three instrument kinds:

``counter``
    Monotonic sum (messages published, alerts raised). Merge: add.
``gauge``
    Last-known level (queue depth, SoC). Merge: max — the only
    order-independent fold that never invents a value.
``histogram``
    Fixed-bound bucketed distribution (latencies, tick durations) with
    sum/count/min/max. Merge: element-wise add.

Label sets are flattened to a canonical ``k=v,k=v`` string (sorted by
key) so snapshots are plain JSON and diff stably in manifests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

#: Log-spaced default bounds (seconds) suiting both per-message bus
#: latencies and whole-phase wall times.
DEFAULT_BOUNDS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0
)


def label_key(labels: Mapping[str, object]) -> str:
    """Canonical flat form of a label set: ``"a=1,b=x"`` (sorted, '' if none)."""
    if not labels:
        return ""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def parse_label_key(key: str) -> dict[str, str]:
    """Inverse of :func:`label_key` (values come back as strings)."""
    if not key:
        return {}
    return dict(part.split("=", 1) for part in key.split(","))


class MetricsRegistry:
    """Process-local labelled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[str, float]] = {}
        self._gauges: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, dict[str, dict]] = {}
        self._bounds: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------- write
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        series = self._counters.setdefault(name, {})
        key = label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        self._gauges.setdefault(name, {})[label_key(labels)] = float(value)

    def set_histogram_bounds(self, name: str, bounds: Iterable[float]) -> None:
        """Override the bucket upper bounds used for histogram ``name``.

        Must be called before the first :meth:`observe` of ``name``.
        """
        if name in self._histograms:
            raise ValueError(f"histogram {name!r} already has observations")
        self._bounds[name] = tuple(sorted(float(b) for b in bounds))

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        series = self._histograms.setdefault(name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            bounds = self._bounds.get(name, DEFAULT_BOUNDS)
            hist = series[key] = {
                "bounds": list(bounds),
                "counts": [0] * (len(bounds) + 1),
                "sum": 0.0,
                "count": 0,
                "min": None,
                "max": None,
            }
        bucket = len(hist["bounds"])
        for i, bound in enumerate(hist["bounds"]):
            if value <= bound:
                bucket = i
                break
        hist["counts"][bucket] += 1
        hist["sum"] += value
        hist["count"] += 1
        hist["min"] = value if hist["min"] is None else min(hist["min"], value)
        hist["max"] = value if hist["max"] is None else max(hist["max"], value)

    # -------------------------------------------------------------- read
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0.0 if never incremented)."""
        return self._counters.get(name, {}).get(label_key(labels), 0.0)

    def counter_series(self, name: str) -> dict[str, float]:
        """All label series of counter ``name`` as ``{label_key: value}``."""
        return dict(self._counters.get(name, {}))

    def snapshot(self) -> dict:
        """JSON-able deep copy of everything recorded so far."""
        return {
            "counters": {n: dict(s) for n, s in self._counters.items()},
            "gauges": {n: dict(s) for n, s in self._gauges.items()},
            "histograms": {
                n: {k: {**h, "bounds": list(h["bounds"]),
                        "counts": list(h["counts"])}
                    for k, h in s.items()}
                for n, s in self._histograms.items()
            },
        }

    def clear(self) -> None:
        """Drop every recorded series (bounds registrations survive)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def empty_snapshot() -> dict:
    """The snapshot of a registry that recorded nothing."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _merge_hist(into: dict, hist: dict) -> None:
    if into["bounds"] != hist["bounds"]:
        raise ValueError(
            f"cannot merge histograms with bounds {into['bounds']} "
            f"vs {hist['bounds']}"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], hist["counts"])]
    into["sum"] += hist["sum"]
    into["count"] += hist["count"]
    for side, fold in (("min", min), ("max", max)):
        if hist[side] is not None:
            into[side] = (
                hist[side] if into[side] is None else fold(into[side], hist[side])
            )


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold worker snapshots into one, as if a single registry had counted.

    Counters and histograms add; gauges keep the max (order-independent).
    """
    merged = empty_snapshot()
    for snap in snapshots:
        if not snap:
            continue
        for name, series in snap.get("counters", {}).items():
            out = merged["counters"].setdefault(name, {})
            for key, value in series.items():
                out[key] = out.get(key, 0.0) + value
        for name, series in snap.get("gauges", {}).items():
            out = merged["gauges"].setdefault(name, {})
            for key, value in series.items():
                out[key] = max(out[key], value) if key in out else value
        for name, series in snap.get("histograms", {}).items():
            out = merged["histograms"].setdefault(name, {})
            for key, hist in series.items():
                if key in out:
                    _merge_hist(out[key], hist)
                else:
                    out[key] = {
                        **hist,
                        "bounds": list(hist["bounds"]),
                        "counts": list(hist["counts"]),
                    }
    return merged
