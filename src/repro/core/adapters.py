"""Standard EDDI wiring: technology monitors → ConSert evidence.

Every example and integration test wires the same adapters by hand:
SafeDrones into the reliability evidence, GPS quality and the spoof
detector into the localization evidence, camera health into the vision
evidence, the link monitor into the comm evidence. This module ships that
wiring as a factory, so deploying the full Fig. 1 assurance stack on a
simulated UAV is one call::

    eddi, stack = build_uav_eddi(uav, world)
    ...
    guarantee = eddi.step(world.time)   # each cycle

The returned :class:`MonitorStack` exposes the individual monitors for
inspection and for feeding into mission-level components (decider,
co-engineering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.eddi import Eddi, MonitorAdapter
from repro.core.uav_network import UavConSertNetwork
from repro.safedrones.communication import CommLinkMonitor
from repro.safedrones.monitor import SafeDronesMonitor
from repro.safeml.monitor import SafeMlMonitor
from repro.security.spoofing import GpsSpoofingDetector
from repro.uav.uav import Uav
from repro.uav.world import World


@dataclass
class MonitorStack:
    """The technology monitors behind one UAV's EDDI."""

    network: UavConSertNetwork
    safedrones: SafeDronesMonitor
    spoof_detector: GpsSpoofingDetector
    link_monitor: CommLinkMonitor
    safeml: SafeMlMonitor | None = None
    cl_range_m: float = 120.0


def build_uav_eddi(
    uav: Uav,
    world: World,
    safeml: SafeMlMonitor | None = None,
    cl_range_m: float = 120.0,
) -> tuple[Eddi, MonitorStack]:
    """Wire the full Fig. 1 monitor stack onto one UAV.

    ``safeml``, when provided, must already be fitted; its report gates
    the ``safeml_confidence_ok`` evidence (confidence HIGH or MEDIUM).
    Collaborator availability is derived live from the fleet geometry
    (any peer within ``cl_range_m``).
    """
    uav_id = uav.spec.uav_id
    network = UavConSertNetwork(uav_id=uav_id)
    network.set_reliability_level("high")
    stack = MonitorStack(
        network=network,
        safedrones=SafeDronesMonitor(uav_id=uav_id, rotor_count=uav.spec.rotor_count),
        spoof_detector=GpsSpoofingDetector(),
        link_monitor=CommLinkMonitor(),
        safeml=safeml,
        cl_range_m=cl_range_m,
    )

    def update(now: float) -> None:
        # SafeDrones -> reliability level.
        assessment = stack.safedrones.update(
            now,
            uav.battery.soc,
            uav.sensors.temperature.measure(uav.battery.temp_c),
            motors_failed=uav.motors_failed,
        )
        network.set_reliability_level(assessment.level.value)

        # GPS quality + spoof cross-check -> localization/security evidence.
        fix = uav.sensors.gps.measure(uav.dynamics.position, now)
        network.set_gps_quality_ok(fix.quality_ok)
        if fix.valid:
            verdict = stack.spoof_detector.update(
                now,
                world.frame.to_enu(fix.point),
                uav.sensors.imu.measure(uav.dynamics.ground_velocity),
                world.dt,
            )
            network.set_attack_detected(verdict.spoofed)

        # Vision sensor health + SafeML confidence.
        network.set_camera_healthy(uav.sensors.camera.operational)
        network.set_drone_detection_ok(uav.sensors.camera.operational)
        if stack.safeml is not None and stack.safeml.window_full:
            report = stack.safeml.report(now)
            network.set_safeml_confidence_ok(report.level.value != "low")

        # Communication: link quality + collaborator availability.
        network.set_comm_links_ok(stack.link_monitor.assess(now).link_ok)
        neighbors = any(
            peer_id != uav_id
            and _distance(peer.dynamics.position, uav.dynamics.position)
            <= stack.cl_range_m
            for peer_id, peer in world.uavs.items()
        )
        network.set_nearby_uavs_available(neighbors)

    eddi = Eddi(name=f"{uav_id}-eddi", network=network)
    eddi.add_adapter(MonitorAdapter("sesame-stack", update))
    return eddi, stack


def _distance(a: tuple[float, float, float], b: tuple[float, float, float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5


def build_fleet_eddis(
    world: World, cl_range_m: float = 120.0
) -> dict[str, tuple[Eddi, MonitorStack]]:
    """Build the standard EDDI for every UAV in the world."""
    return {
        uav_id: build_uav_eddi(uav, world, cl_range_m=cl_range_m)
        for uav_id, uav in world.uavs.items()
    }
