"""Standard EDDI wiring: technology monitors → ConSert evidence.

Every example and integration test wires the same adapters by hand:
SafeDrones into the reliability evidence, GPS quality and the spoof
detector into the localization evidence, camera health into the vision
evidence, the link monitor into the comm evidence. This module ships that
wiring as a factory, so deploying the full Fig. 1 assurance stack on a
simulated UAV is one call::

    eddi, stack = build_uav_eddi(uav, world)
    ...
    guarantee = eddi.step(world.time)   # each cycle

The returned :class:`MonitorStack` exposes the individual monitors for
inspection and for feeding into mission-level components (decider,
co-engineering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.eddi import Eddi, MonitorAdapter
from repro.core.uav_network import UavConSertNetwork
from repro.middleware.rosbus import Message, RosBus, Subscription
from repro.safedrones.communication import CommLinkMonitor
from repro.safedrones.monitor import SafeDronesMonitor
from repro.safeml.monitor import SafeMlMonitor
from repro.security.spoofing import GpsSpoofingDetector
from repro.uav.uav import Uav
from repro.uav.world import World


@dataclass
class PeerTelemetryMonitor:
    """Tracks telemetry actually *received* from each peer over the bus.

    This is the receiver-side view of the mesh: it records the arrival
    time of every peer telemetry message and estimates a per-peer delivery
    ratio against the fleet's nominal telemetry rate. Unlike the fleet
    geometry (which the simulator knows perfectly), this is exactly the
    evidence a real UAV has about its links — so it is what drives the
    ``comm_links_ok`` / ``peer_telemetry_fresh`` ConSert inputs under a
    degraded transport.
    """

    uav_id: str
    peers: tuple[str, ...]
    nominal_rate_hz: float = 2.0
    window_s: float = 6.0
    arrivals: dict[str, list[float]] = field(default_factory=dict)
    _bus: RosBus | None = field(default=None, repr=False)
    _subs: list[Subscription] = field(default_factory=list, repr=False)
    _attached_at: float = field(default=0.0, repr=False)

    def attach(self, bus: RosBus) -> None:
        """Subscribe to every peer's telemetry topic."""
        self._bus = bus
        self._attached_at = bus.clock
        for peer in self.peers:
            self.arrivals.setdefault(peer, [])
            self._subs.append(
                bus.subscribe(
                    f"/{peer}/telemetry",
                    self.uav_id,
                    lambda message, peer=peer: self._record(peer, message),
                )
            )

    def detach(self) -> None:
        """Unsubscribe from all peer telemetry topics."""
        for sub in self._subs:
            sub.unsubscribe()
        self._subs.clear()

    def _record(self, peer: str, message: Message) -> None:
        # Arrival time, not publish stamp: a delayed copy counts when it
        # actually lands at the receiver.
        now = self._bus.clock if self._bus is not None else message.stamp
        self.arrivals[peer].append(now)

    def _prune(self, peer: str, now: float) -> list[float]:
        cutoff = now - self.window_s
        stamps = [t for t in self.arrivals.get(peer, []) if t >= cutoff]
        self.arrivals[peer] = stamps
        return stamps

    def delivery_ratio(self, peer: str, now: float) -> float:
        """Received vs expected telemetry over the sliding window."""
        stamps = self._prune(peer, now)
        span = min(self.window_s, max(now - self._attached_at, 1.0 / max(self.nominal_rate_hz, 1e-9)))
        expected = self.nominal_rate_hz * span
        return min(1.0, len(stamps) / expected) if expected > 0 else 1.0

    def latest_arrival(self) -> float | None:
        """Most recent telemetry arrival from any peer, or None."""
        stamps = [s[-1] for s in self.arrivals.values() if s]
        return max(stamps) if stamps else None

    def fresh(self, now: float, staleness_s: float) -> bool:
        """Whether any peer telemetry arrived within ``staleness_s``."""
        latest = self.latest_arrival()
        return latest is not None and now - latest <= staleness_s


@dataclass
class MonitorStack:
    """The technology monitors behind one UAV's EDDI."""

    network: UavConSertNetwork
    safedrones: SafeDronesMonitor
    spoof_detector: GpsSpoofingDetector
    link_monitor: CommLinkMonitor
    safeml: SafeMlMonitor | None = None
    cl_range_m: float = 120.0
    telemetry: PeerTelemetryMonitor | None = None


def build_uav_eddi(
    uav: Uav,
    world: World,
    safeml: SafeMlMonitor | None = None,
    cl_range_m: float = 120.0,
) -> tuple[Eddi, MonitorStack]:
    """Wire the full Fig. 1 monitor stack onto one UAV.

    ``safeml``, when provided, must already be fitted; its report gates
    the ``safeml_confidence_ok`` evidence (confidence HIGH or MEDIUM).
    Collaborator availability is derived live from the fleet geometry
    (any peer within ``cl_range_m``).
    """
    uav_id = uav.spec.uav_id
    network = UavConSertNetwork(uav_id=uav_id)
    network.set_reliability_level("high")
    stack = MonitorStack(
        network=network,
        safedrones=SafeDronesMonitor(uav_id=uav_id, rotor_count=uav.spec.rotor_count),
        spoof_detector=GpsSpoofingDetector(),
        link_monitor=CommLinkMonitor(),
        safeml=safeml,
        cl_range_m=cl_range_m,
    )

    def update(now: float) -> None:
        # SafeDrones -> reliability level.
        assessment = stack.safedrones.update(
            now,
            uav.battery.soc,
            uav.sensors.temperature.measure(uav.battery.temp_c),
            motors_failed=uav.motors_failed,
        )
        network.set_reliability_level(assessment.level.value)

        # GPS quality + spoof cross-check -> localization/security evidence.
        fix = uav.sensors.gps.measure(uav.dynamics.position, now)
        network.set_gps_quality_ok(fix.quality_ok)
        if fix.valid:
            verdict = stack.spoof_detector.update(
                now,
                world.frame.to_enu(fix.point),
                uav.sensors.imu.measure(uav.dynamics.ground_velocity),
                world.dt,
            )
            network.set_attack_detected(verdict.spoofed)

        # Vision sensor health + SafeML confidence.
        network.set_camera_healthy(uav.sensors.camera.operational)
        network.set_drone_detection_ok(uav.sensors.camera.operational)
        if stack.safeml is not None and stack.safeml.window_full:
            report = stack.safeml.report(now)
            network.set_safeml_confidence_ok(report.level.value != "low")

        # Communication: link quality + collaborator availability.
        network.set_comm_links_ok(stack.link_monitor.assess(now).link_ok)
        neighbors = any(
            peer_id != uav_id
            and _distance(peer.dynamics.position, uav.dynamics.position)
            <= stack.cl_range_m
            for peer_id, peer in world.uavs.items()
        )
        network.set_nearby_uavs_available(neighbors)

    eddi = Eddi(name=f"{uav_id}-eddi", network=network)
    eddi.add_adapter(MonitorAdapter("sesame-stack", update))
    return eddi, stack


def _distance(a: tuple[float, float, float], b: tuple[float, float, float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5


def attach_degraded_comm(
    eddi: Eddi,
    stack: MonitorStack,
    bus: RosBus,
    peers: tuple[str, ...],
    staleness_s: float = 3.0,
    ratio_threshold: float = 0.55,
    nominal_rate_hz: float = 2.0,
    window_s: float = 6.0,
) -> PeerTelemetryMonitor:
    """Drive the comm ConSert evidence from *received* mesh traffic.

    Wires a :class:`PeerTelemetryMonitor` onto ``bus`` and registers a
    staleness-tracked adapter on ``eddi``:

    - ``comm_links_ok`` holds while at least one peer's windowed telemetry
      delivery ratio stays at or above ``ratio_threshold`` — sustained
      packet loss demotes the guarantee even though *some* packets arrive;
    - ``peer_telemetry_fresh`` holds while any peer telemetry arrived
      within ``staleness_s``; a partition or blackout trips the adapter's
      staleness watermark and the ``on_stale`` hook forces both evidences
      pessimistic every cycle until traffic resumes.

    Replaces the geometry-derived comm evidence the stock adapter writes
    (this adapter runs after it, so its verdict wins).
    """
    telemetry = PeerTelemetryMonitor(
        uav_id=eddi.network.uav_id,
        peers=tuple(peers),
        nominal_rate_hz=nominal_rate_hz,
        window_s=window_s,
    )
    telemetry.attach(bus)
    stack.telemetry = telemetry
    network = eddi.network

    def update(now: float) -> bool:
        fresh = telemetry.fresh(now, staleness_s)
        peers_ok = [
            peer
            for peer in telemetry.peers
            if telemetry.delivery_ratio(peer, now) >= ratio_threshold
        ]
        network.set_comm_links_ok(bool(peers_ok))
        network.set_peer_telemetry_fresh(fresh)
        return fresh

    def on_stale(stale: bool) -> None:
        if stale:
            network.set_comm_links_ok(False)
            network.set_peer_telemetry_fresh(False)
        else:
            network.set_peer_telemetry_fresh(True)

    eddi.add_adapter(
        MonitorAdapter(
            name="degraded-comm",
            update=update,
            max_staleness_s=staleness_s,
            on_stale=on_stale,
        )
    )
    return telemetry


def build_fleet_eddis(
    world: World, cl_range_m: float = 120.0
) -> dict[str, tuple[Eddi, MonitorStack]]:
    """Build the standard EDDI for every UAV in the world."""
    return {
        uav_id: build_uav_eddi(uav, world, cl_range_m=cl_range_m)
        for uav_id, uav in world.uavs.items()
    }
