"""SESAME core: ConSerts and the Executable DDI runtime (paper Sec. II-III).

ConSerts (Conditional Safety Certificates) "evaluate dependable UAV
behaviour during operation ... incorporating other SESAME technologies and
combining their results to assure dependable operation up to the SAR
mission level" (Sec. II-B). EDDIs are "composable, executable models
[that] can combine or interact at runtime to adapt and reconfigure
themselves" (Sec. III).

Modules:

- :mod:`repro.core.conserts` — guarantees, demands, runtime evidence,
  boolean gate trees, hierarchical composition, evaluation.
- :mod:`repro.core.eddi` — the runtime monitor/diagnose/respond loop that
  hosts ConSerts plus technology adapters on each UAV and the GCS.
- :mod:`repro.core.decider` — the mission-level decider combining all UAV
  guarantees (the Σ node of Fig. 1).
- :mod:`repro.core.uav_network` — the full Fig. 1 hierarchical ConSert
  network for the SAR use case, ready to wire to live monitors.
- :mod:`repro.core.ode` — Open-Dependability-Exchange-style packaging of
  dependability models (serialisation for design-time interchange).
- :mod:`repro.core.assurance` — GSN-style assurance cases linking goals to
  runtime evidence.
"""

from repro.core.conserts import (
    AndNode,
    ConSert,
    Demand,
    Guarantee,
    OrNode,
    RuntimeEvidence,
)
from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.eddi import Eddi, EddiResponse, MonitorAdapter
from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.core.ode import OdePackage
from repro.core.assurance import AssuranceCase, Goal, Solution, Strategy
from repro.core.adapters import (
    MonitorStack,
    PeerTelemetryMonitor,
    attach_degraded_comm,
    build_fleet_eddis,
    build_uav_eddi,
)
from repro.core.responses import FleetResponseCoordinator, StandardResponsePolicy
from repro.core.analysis import (
    ValidationResult,
    find_composition_cycles,
    find_unbound_demands,
    guarantee_reachability,
    validate_composition,
)
from repro.core.coengineering import (
    CoAssessment,
    CoEngineeringMonitor,
    DependabilityLevel,
    SecurityInformedEvent,
)

__all__ = [
    "AndNode",
    "ConSert",
    "Demand",
    "Guarantee",
    "OrNode",
    "RuntimeEvidence",
    "MissionDecider",
    "MissionVerdict",
    "Eddi",
    "EddiResponse",
    "MonitorAdapter",
    "UavConSertNetwork",
    "UavGuarantee",
    "OdePackage",
    "AssuranceCase",
    "Goal",
    "Solution",
    "Strategy",
    "CoAssessment",
    "CoEngineeringMonitor",
    "DependabilityLevel",
    "SecurityInformedEvent",
    "ValidationResult",
    "find_composition_cycles",
    "find_unbound_demands",
    "guarantee_reachability",
    "validate_composition",
    "MonitorStack",
    "PeerTelemetryMonitor",
    "attach_degraded_comm",
    "build_fleet_eddis",
    "build_uav_eddi",
    "FleetResponseCoordinator",
    "StandardResponsePolicy",
]
