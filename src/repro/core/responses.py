"""Standard response policy: ConSert guarantees → platform commands.

Closes the EDDI loop's *respond* edge as a reusable component. The paper's
Fig. 1 guarantee vocabulary maps directly onto flight commands:

=============================  =======================================
Guarantee                      Response
=============================  =======================================
continue_mission_extra_tasks   none (and the UAV is takeover-eligible)
continue_mission               none
hold_position                  HOLD until the situation clears
return_to_base                 RETURN_TO_BASE
emergency_land                 EMERGENCY_LAND
=============================  =======================================

Additionally, when the mission decider rules REDISTRIBUTE, the policy
invokes the task redistributor over the dropped UAVs — the "&
Redistribute task among remaining capable UAVs" edge of Fig. 1 — and
when a UAV resumes a mission-capable guarantee out of HOLD, it resumes
the mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.eddi import Eddi, EddiResponse
from repro.core.uav_network import UavGuarantee
from repro.sar.redistribution import RedistributionAssignment, TaskRedistributor
from repro.uav.uav import FlightMode, Uav


@dataclass
class StandardResponsePolicy:
    """Binds one UAV's EDDI guarantees to its flight commands."""

    uav: Uav
    eddi: Eddi
    log: list[tuple[float, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.eddi.on_guarantee(UavGuarantee.HOLD_POSITION, self._hold)
        self.eddi.on_guarantee(UavGuarantee.RETURN_TO_BASE, self._return_to_base)
        self.eddi.on_guarantee(UavGuarantee.EMERGENCY_LAND, self._emergency_land)
        self.eddi.on_guarantee(UavGuarantee.CONTINUE_MISSION, self._resume)
        self.eddi.on_guarantee(UavGuarantee.CONTINUE_MISSION_EXTRA, self._resume)

    def _hold(self, response: EddiResponse) -> None:
        if self.uav.mode is FlightMode.MISSION:
            self.uav.command_mode(FlightMode.HOLD)
            self.log.append((response.stamp, "hold_position"))

    def _return_to_base(self, response: EddiResponse) -> None:
        if self.uav.mode not in (FlightMode.LANDED, FlightMode.EMERGENCY_LAND):
            self.uav.command_mode(FlightMode.RETURN_TO_BASE)
            self.log.append((response.stamp, "return_to_base"))

    def _emergency_land(self, response: EddiResponse) -> None:
        if self.uav.mode is not FlightMode.LANDED:
            self.uav.command_mode(FlightMode.EMERGENCY_LAND)
            self.log.append((response.stamp, "emergency_land"))

    def _resume(self, response: EddiResponse) -> None:
        # Only resume out of a policy-commanded HOLD; never override an
        # operator's explicit RTB or a completed mission.
        if (
            self.uav.mode is FlightMode.HOLD
            and not self.uav.plan.complete
            and response.previous is UavGuarantee.HOLD_POSITION
        ):
            self.uav.command_mode(FlightMode.MISSION)
            self.log.append((response.stamp, "resume_mission"))


@dataclass
class FleetResponseCoordinator:
    """Mission-level response: decider verdicts → fleet actions.

    Call :meth:`step` each EDDI cycle (after the per-UAV EDDIs stepped).
    On a REDISTRIBUTE verdict, each newly dropped UAV's remaining coverage
    is split among the takeover-capable UAVs exactly once.
    """

    decider: MissionDecider
    uavs: dict[str, Uav]
    redistributor: TaskRedistributor = field(default_factory=TaskRedistributor)
    handled_dropouts: set[str] = field(default_factory=set)
    assignments: list[RedistributionAssignment] = field(default_factory=list)

    def step(self, now: float) -> MissionVerdict:
        """Evaluate the mission verdict and apply fleet-level responses."""
        decision = self.decider.decide()
        if decision.verdict is MissionVerdict.REDISTRIBUTE:
            takeover = [self.uavs[u] for u in decision.takeover_uavs]
            for dropped_id in decision.dropped_uavs:
                if dropped_id in self.handled_dropouts:
                    continue
                self.handled_dropouts.add(dropped_id)
                dropped = self.uavs[dropped_id]
                if takeover and not dropped.plan.complete:
                    self.assignments.extend(
                        self.redistributor.execute(dropped, takeover)
                    )
        return decision.verdict
