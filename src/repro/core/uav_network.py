"""The Fig. 1 hierarchical ConSert network for one UAV.

Encodes the paper's "Overview of hierarchical ConSert UAV network for SAR
mission": per-UAV ConSerts for security, GPS / vision / communication
localization, vision sensor health, nearby-drone detection, SafeDrones
reliability, a navigation ConSert composing the localization services, and
the top-level UAV ConSert whose guarantees are the flight decisions
(continue mission with spare capacity, continue mission, hold position,
return to base / land, default emergency landing).

All runtime evidence has named setter methods so the EDDI layer can wire
live monitors without knowing the tree shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.conserts import (
    AndNode,
    ConSert,
    Demand,
    Guarantee,
    OrNode,
    RuntimeEvidence,
)


class UavGuarantee(enum.Enum):
    """Top-level UAV ConSert guarantee vocabulary (Fig. 1)."""

    CONTINUE_MISSION_EXTRA = "continue_mission_extra_tasks"
    CONTINUE_MISSION = "continue_mission"
    HOLD_POSITION = "hold_position"
    RETURN_TO_BASE = "return_to_base"
    EMERGENCY_LAND = "emergency_land"


@dataclass
class UavConSertNetwork:
    """All ConSerts of one UAV, wired per Fig. 1."""

    uav_id: str
    security: ConSert = field(init=False)
    gps_localization: ConSert = field(init=False)
    vision_health: ConSert = field(init=False)
    vision_localization: ConSert = field(init=False)
    comm_localization: ConSert = field(init=False)
    drone_detection: ConSert = field(init=False)
    reliability: ConSert = field(init=False)
    navigation: ConSert = field(init=False)
    uav: ConSert = field(init=False)

    def __post_init__(self) -> None:
        # --- Security EDDI ConSert -------------------------------------
        self._ev_no_attack = RuntimeEvidence(
            "no_attack_detected", True, "Security EDDI reports no active attack"
        )
        self.security = ConSert(
            name=f"{self.uav_id}/security_eddi",
            guarantees=[
                Guarantee("no_attack", AndNode([self._ev_no_attack])),
                Guarantee("attack_detected", None, "default: attack assumed"),
            ],
        )

        # --- GPS-based localization -------------------------------------
        self._ev_gps_quality = RuntimeEvidence(
            "gps_quality_ok", True, "satellites/HDOP within limits"
        )
        self.gps_localization = ConSert(
            name=f"{self.uav_id}/gps_localization",
            guarantees=[
                Guarantee(
                    "gps_localization_ok",
                    AndNode(
                        [
                            self._ev_gps_quality,
                            Demand(
                                "security_clear",
                                frozenset({"no_attack"}),
                                providers=[self.security],
                            ),
                        ]
                    ),
                    "GPS navigation accuracy < 0.5 m",
                ),
                Guarantee("gps_localization_unavailable", None),
            ],
        )

        # --- Vision sensor health ----------------------------------------
        self._ev_camera_ok = RuntimeEvidence("camera_healthy", True)
        self.vision_health = ConSert(
            name=f"{self.uav_id}/vision_sensor_health",
            guarantees=[
                Guarantee("vision_sensor_healthy", AndNode([self._ev_camera_ok])),
                Guarantee("vision_sensor_degraded", None),
            ],
        )

        # --- Vision-based localization (needs healthy camera + SafeML) ---
        self._ev_safeml_ok = RuntimeEvidence(
            "safeml_confidence_ok", True, "perception within training distribution"
        )
        self.vision_localization = ConSert(
            name=f"{self.uav_id}/vision_localization",
            guarantees=[
                Guarantee(
                    "vision_localization_ok",
                    AndNode(
                        [
                            Demand(
                                "camera",
                                frozenset({"vision_sensor_healthy"}),
                                providers=[self.vision_health],
                            ),
                            self._ev_safeml_ok,
                        ]
                    ),
                    "Vision-based navigation accuracy < 1 m",
                ),
                Guarantee("vision_localization_unavailable", None),
            ],
        )

        # --- Communication-based localization -----------------------------
        self._ev_comm_ok = RuntimeEvidence("comm_links_ok", True)
        self._ev_neighbors = RuntimeEvidence(
            "nearby_uavs_available", True, ">=1 collaborator within CL range"
        )
        self._ev_telemetry_fresh = RuntimeEvidence(
            "peer_telemetry_fresh",
            True,
            "peer telemetry received within the staleness window",
        )
        self.comm_localization = ConSert(
            name=f"{self.uav_id}/comm_localization",
            guarantees=[
                Guarantee(
                    "comm_localization_ok",
                    AndNode(
                        [
                            self._ev_comm_ok,
                            self._ev_neighbors,
                            self._ev_telemetry_fresh,
                        ]
                    ),
                    "Collaborative navigation accuracy < 0.75 m",
                ),
                Guarantee("comm_localization_unavailable", None),
            ],
        )

        # --- Vision-based nearby drone detection --------------------------
        self._ev_drone_detect = RuntimeEvidence("drone_detection_ok", True)
        self.drone_detection = ConSert(
            name=f"{self.uav_id}/drone_detection",
            guarantees=[
                Guarantee(
                    "assistant_detection_ok",
                    AndNode(
                        [
                            self._ev_drone_detect,
                            Demand(
                                "camera",
                                frozenset({"vision_sensor_healthy"}),
                                providers=[self.vision_health],
                            ),
                        ]
                    ),
                    "Assistant navigation accuracy < 1 m",
                ),
                Guarantee("assistant_detection_unavailable", None),
            ],
        )

        # --- SafeDrones reliability ---------------------------------------
        self._ev_rel_high = RuntimeEvidence("reliability_high", True)
        self._ev_rel_medium = RuntimeEvidence("reliability_medium", True)
        self.reliability = ConSert(
            name=f"{self.uav_id}/safedrones_reliability",
            guarantees=[
                Guarantee("high_reliability", AndNode([self._ev_rel_high])),
                Guarantee("medium_reliability", AndNode([self._ev_rel_medium])),
                Guarantee("low_reliability", None),
            ],
        )

        # --- Navigation ConSert -------------------------------------------
        def nav_demand(name: str, accepted: str, provider: ConSert) -> Demand:
            return Demand(name, frozenset({accepted}), providers=[provider])

        self.navigation = ConSert(
            name=f"{self.uav_id}/navigation",
            guarantees=[
                Guarantee(
                    "high_performance_navigation",
                    AndNode(
                        [nav_demand("gps", "gps_localization_ok", self.gps_localization)]
                    ),
                    "accuracy < 0.5 m",
                ),
                Guarantee(
                    "collaborative_navigation",
                    AndNode(
                        [
                            nav_demand(
                                "cl", "comm_localization_ok", self.comm_localization
                            )
                        ]
                    ),
                    "accuracy < 0.75 m",
                ),
                Guarantee(
                    "assistant_navigation",
                    AndNode(
                        [
                            nav_demand(
                                "assist",
                                "assistant_detection_ok",
                                self.drone_detection,
                            )
                        ]
                    ),
                    "accuracy < 1 m",
                ),
                Guarantee(
                    "vision_navigation",
                    AndNode(
                        [
                            nav_demand(
                                "vision",
                                "vision_localization_ok",
                                self.vision_localization,
                            )
                        ]
                    ),
                    "accuracy < 1 m",
                ),
                Guarantee("navigation_unavailable", None, "default: emergency landing"),
            ],
        )

        # --- Top-level UAV ConSert ------------------------------------------
        def rel(*accepted: str) -> Demand:
            return Demand(
                "reliability", frozenset(accepted), providers=[self.reliability]
            )

        def nav(*accepted: str) -> Demand:
            return Demand("navigation", frozenset(accepted), providers=[self.navigation])

        precise_nav = ("high_performance_navigation", "collaborative_navigation")
        any_nav = precise_nav + ("assistant_navigation", "vision_navigation")
        self.uav = ConSert(
            name=f"{self.uav_id}/uav",
            guarantees=[
                Guarantee(
                    UavGuarantee.CONTINUE_MISSION_EXTRA.value,
                    AndNode([rel("high_reliability"), nav(*precise_nav)]),
                    "can take over additional tasks",
                ),
                Guarantee(
                    UavGuarantee.CONTINUE_MISSION.value,
                    AndNode(
                        [rel("high_reliability", "medium_reliability"), nav(*any_nav)]
                    ),
                ),
                Guarantee(
                    UavGuarantee.HOLD_POSITION.value,
                    AndNode(
                        [
                            rel("high_reliability", "medium_reliability"),
                            OrNode(
                                [
                                    nav(*any_nav),
                                    Demand(
                                        "camera",
                                        frozenset({"vision_sensor_healthy"}),
                                        providers=[self.vision_health],
                                    ),
                                ]
                            ),
                        ]
                    ),
                    "wait until the critical situation is resolved",
                ),
                Guarantee(
                    UavGuarantee.RETURN_TO_BASE.value,
                    AndNode([nav(*any_nav)]),
                    "abort and return to base",
                ),
                Guarantee(
                    UavGuarantee.EMERGENCY_LAND.value,
                    None,
                    "default: emergency landing",
                ),
            ],
        )

    # ------------------------------------------------------------ setters
    def set_attack_detected(self, detected: bool) -> None:
        """Security EDDI verdict (True = active attack)."""
        self._ev_no_attack.set(not detected)

    def set_gps_quality_ok(self, ok: bool) -> None:
        """GPS satellite-count / HDOP quality gate."""
        self._ev_gps_quality.set(ok)

    def set_camera_healthy(self, healthy: bool) -> None:
        """Vision sensor health state."""
        self._ev_camera_ok.set(healthy)

    def set_safeml_confidence_ok(self, ok: bool) -> None:
        """SafeML perception-confidence gate."""
        self._ev_safeml_ok.set(ok)

    def set_comm_links_ok(self, ok: bool) -> None:
        """Inter-UAV communication link state."""
        self._ev_comm_ok.set(ok)

    def set_nearby_uavs_available(self, available: bool) -> None:
        """Whether >=1 collaborator is within CL range."""
        self._ev_neighbors.set(available)

    def set_peer_telemetry_fresh(self, fresh: bool) -> None:
        """Whether peer telemetry arrived within the staleness window."""
        self._ev_telemetry_fresh.set(fresh)

    def set_drone_detection_ok(self, ok: bool) -> None:
        """Vision-based nearby-drone detection state."""
        self._ev_drone_detect.set(ok)

    def set_reliability_level(self, level: str) -> None:
        """SafeDrones level: 'high' / 'medium' / 'low'."""
        if level not in ("high", "medium", "low"):
            raise ValueError(f"unknown reliability level {level!r}")
        self._ev_rel_high.set(level == "high")
        self._ev_rel_medium.set(level in ("high", "medium"))

    # ---------------------------------------------------------- evaluation
    def evaluate(self) -> UavGuarantee:
        """Evaluate the whole network; returns the UAV-level decision."""
        offered = self.uav.evaluate()
        assert offered is not None  # the default guarantee is unconditional
        return UavGuarantee(offered.name)

    def navigation_guarantee(self) -> str:
        """The navigation-level guarantee currently offered."""
        offered = self.navigation.evaluate()
        assert offered is not None
        return offered.name
