"""The Executable DDI runtime loop.

An EDDI is a "model-based artefact ... with runtime components for
monitoring, diagnosis, and response" (Sec. III). Concretely, each cycle:

1. **Monitor** — every registered adapter samples its technology
   (SafeDrones, SafeML, Security EDDI, GPS quality, ...) and updates the
   runtime evidence in the UAV's ConSert network.
2. **Diagnose** — the ConSert network is evaluated bottom-up, yielding the
   strongest guarantee the UAV can currently offer.
3. **Respond** — when the offered guarantee changes, the matching response
   hook fires (e.g. command HOLD, trigger collaborative localization,
   initiate emergency landing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.obs import OBS, event, span


@dataclass
class MonitorAdapter:
    """Binds one technology monitor into the EDDI cycle.

    ``update(now)`` must sample the technology and push fresh evidence
    into the ConSert network (typically via the network's setters,
    captured in a closure).

    Adapters fed by telemetry that may stop flowing (anything crossing the
    inter-UAV mesh) additionally declare ``max_staleness_s``: ``update``
    then returns True when it saw fresh data this cycle and False when it
    is re-serving old state. The EDDI keeps a ``last_update`` watermark
    and, once the watermark ages past ``max_staleness_s``, calls
    ``on_stale(True)`` every cycle so the adapter can push pessimistic
    evidence (demoting the ConSert guarantee) instead of silently
    reasoning over stale data; ``on_stale(False)`` fires once on
    recovery. ``update`` returning None (the historical signature) counts
    as fresh, so existing adapters are unaffected.
    """

    name: str
    update: Callable[[float], "bool | None"]
    max_staleness_s: float | None = None
    on_stale: Callable[[bool], None] | None = None
    last_update: float | None = None
    stale: bool = False

    def observe(self, now: float) -> None:
        """Run one cycle: sample, refresh the watermark, police staleness."""
        fresh = self.update(now)
        if fresh is None:
            fresh = True
        if fresh or self.last_update is None:
            # First cycle grants a full staleness window before demotion.
            self.last_update = now
        if self.max_staleness_s is None:
            return
        was_stale = self.stale
        self.stale = now - self.last_update > self.max_staleness_s
        if self.on_stale is not None:
            if self.stale:
                # Re-assert every stale cycle: the pessimistic evidence must
                # win over whatever the regular update path just wrote.
                self.on_stale(True)
            elif was_stale:
                self.on_stale(False)


@dataclass(frozen=True)
class EddiResponse:
    """Record of one dispatched response."""

    stamp: float
    guarantee: UavGuarantee
    previous: UavGuarantee | None


@dataclass
class Eddi:
    """Executable DDI for one UAV."""

    name: str
    network: UavConSertNetwork
    adapters: list[MonitorAdapter] = field(default_factory=list)
    responses: dict[UavGuarantee, Callable[[EddiResponse], None]] = field(
        default_factory=dict
    )
    current_guarantee: UavGuarantee | None = None
    response_log: list[EddiResponse] = field(default_factory=list)
    guarantee_trace: list[tuple[float, UavGuarantee]] = field(default_factory=list)

    def add_adapter(self, adapter: MonitorAdapter) -> None:
        """Register a monitoring adapter."""
        self.adapters.append(adapter)

    def on_guarantee(
        self, guarantee: UavGuarantee, callback: Callable[[EddiResponse], None]
    ) -> None:
        """Register a response fired when ``guarantee`` becomes active."""
        self.responses[guarantee] = callback

    def step(self, now: float) -> UavGuarantee:
        """Run one monitor/diagnose/respond cycle; returns the guarantee.

        When :mod:`repro.obs` is enabled, each phase runs inside a span
        (``eddi.monitor`` / ``eddi.diagnose`` / ``eddi.respond``),
        guarantee changes emit ``guarantee_transition`` events, and
        adapter staleness flips emit ``staleness_demotion`` /
        ``staleness_recovered`` events — the audit trail the paper's
        "automates the logging of all actions" GCS requirement asks for.
        """
        obs_on = OBS.enabled
        with span("eddi.monitor", sim_time=now, uav=self.name):
            for adapter in self.adapters:
                was_stale = adapter.stale
                adapter.observe(now)
                if obs_on and adapter.stale != was_stale:
                    event(
                        "warning" if adapter.stale else "info",
                        "core.eddi",
                        "staleness_demotion" if adapter.stale
                        else "staleness_recovered",
                        sim_time=now,
                        uav=self.name,
                        adapter=adapter.name,
                    )
        with span("eddi.diagnose", sim_time=now, uav=self.name):
            guarantee = self.network.evaluate()
        self.guarantee_trace.append((now, guarantee))
        if obs_on:
            OBS.metrics.inc("eddi_cycles_total", uav=self.name)
        if guarantee is not self.current_guarantee:
            response = EddiResponse(
                stamp=now, guarantee=guarantee, previous=self.current_guarantee
            )
            self.response_log.append(response)
            previous = self.current_guarantee
            self.current_guarantee = guarantee
            if obs_on:
                event(
                    "info",
                    "core.eddi",
                    "guarantee_transition",
                    sim_time=now,
                    uav=self.name,
                    previous=previous.value if previous is not None else None,
                    guarantee=guarantee.value,
                )
                OBS.metrics.inc("eddi_guarantee_transitions_total", uav=self.name)
            callback = self.responses.get(guarantee)
            if callback is not None:
                with span("eddi.respond", sim_time=now, uav=self.name,
                          guarantee=guarantee.value):
                    callback(response)
        return guarantee

    def stale_adapters(self) -> list[MonitorAdapter]:
        """Adapters currently past their evidence-staleness window."""
        return [a for a in self.adapters if a.stale]

    def time_in_guarantee(self, guarantee: UavGuarantee) -> float:
        """Total simulated time spent offering ``guarantee``.

        Computed from the guarantee trace assuming uniform step spacing
        between consecutive trace entries.
        """
        if len(self.guarantee_trace) < 2:
            return 0.0
        total = 0.0
        for (t0, g), (t1, _) in zip(self.guarantee_trace, self.guarantee_trace[1:]):
            if g is guarantee:
                total += t1 - t0
        return total
