"""The Executable DDI runtime loop.

An EDDI is a "model-based artefact ... with runtime components for
monitoring, diagnosis, and response" (Sec. III). Concretely, each cycle:

1. **Monitor** — every registered adapter samples its technology
   (SafeDrones, SafeML, Security EDDI, GPS quality, ...) and updates the
   runtime evidence in the UAV's ConSert network.
2. **Diagnose** — the ConSert network is evaluated bottom-up, yielding the
   strongest guarantee the UAV can currently offer.
3. **Respond** — when the offered guarantee changes, the matching response
   hook fires (e.g. command HOLD, trigger collaborative localization,
   initiate emergency landing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.uav_network import UavConSertNetwork, UavGuarantee


@dataclass
class MonitorAdapter:
    """Binds one technology monitor into the EDDI cycle.

    ``update(now)`` must sample the technology and push fresh evidence
    into the ConSert network (typically via the network's setters,
    captured in a closure).
    """

    name: str
    update: Callable[[float], None]


@dataclass(frozen=True)
class EddiResponse:
    """Record of one dispatched response."""

    stamp: float
    guarantee: UavGuarantee
    previous: UavGuarantee | None


@dataclass
class Eddi:
    """Executable DDI for one UAV."""

    name: str
    network: UavConSertNetwork
    adapters: list[MonitorAdapter] = field(default_factory=list)
    responses: dict[UavGuarantee, Callable[[EddiResponse], None]] = field(
        default_factory=dict
    )
    current_guarantee: UavGuarantee | None = None
    response_log: list[EddiResponse] = field(default_factory=list)
    guarantee_trace: list[tuple[float, UavGuarantee]] = field(default_factory=list)

    def add_adapter(self, adapter: MonitorAdapter) -> None:
        """Register a monitoring adapter."""
        self.adapters.append(adapter)

    def on_guarantee(
        self, guarantee: UavGuarantee, callback: Callable[[EddiResponse], None]
    ) -> None:
        """Register a response fired when ``guarantee`` becomes active."""
        self.responses[guarantee] = callback

    def step(self, now: float) -> UavGuarantee:
        """Run one monitor/diagnose/respond cycle; returns the guarantee."""
        for adapter in self.adapters:
            adapter.update(now)
        guarantee = self.network.evaluate()
        self.guarantee_trace.append((now, guarantee))
        if guarantee is not self.current_guarantee:
            response = EddiResponse(
                stamp=now, guarantee=guarantee, previous=self.current_guarantee
            )
            self.response_log.append(response)
            self.current_guarantee = guarantee
            callback = self.responses.get(guarantee)
            if callback is not None:
                callback(response)
        return guarantee

    def time_in_guarantee(self, guarantee: UavGuarantee) -> float:
        """Total simulated time spent offering ``guarantee``.

        Computed from the guarantee trace assuming uniform step spacing
        between consecutive trace entries.
        """
        if len(self.guarantee_trace) < 2:
            return 0.0
        total = 0.0
        for (t0, g), (t1, _) in zip(self.guarantee_trace, self.guarantee_trace[1:]):
            if g is guarantee:
                total += t1 - t0
        return total
