"""Runtime safety-security co-engineering.

The paper (Sec. III-B) notes that "to help ensure compatibility and
interaction of Safety EDDI and Security EDDIs ... a runtime
Safety-Security Co-Engineering concept has been proposed [36]", combining
both views of dependability "in a holistic manner".

This module implements that bridge executably:

* :class:`SecurityInformedEvent` — a fault-tree *complex basic event*
  whose probability is driven by attack-tree progress, so cyber attack
  evidence raises the safety-level probability of failure (security →
  safety direction).
* :class:`CoEngineeringMonitor` — fuses a SafeDrones assessment and a
  Security EDDI state into one holistic dependability verdict, with the
  combination rules the co-engineering workflow prescribes: an achieved
  attack goal caps the dependability level regardless of how healthy the
  hardware looks, and degraded reliability lowers tolerance for partial
  attack progress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.safedrones.monitor import ReliabilityLevel, SafeDronesMonitor
from repro.security.attack_trees import AttackTree
from repro.security.eddi import SecurityEddi


@dataclass
class SecurityInformedEvent:
    """Attack-tree progress exposed as a fault-tree basic event.

    The event's probability is the attack tree's leaf progress scaled by
    ``success_given_goal`` — the conditional probability that the safety
    hazard materialises once the adversary reaches the root goal. While
    the goal is unreached, partial progress contributes proportionally
    (the attack may still complete during the remaining mission).
    """

    name: str
    tree: AttackTree
    success_given_goal: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_given_goal <= 1.0:
            raise ValueError("success_given_goal must be in [0, 1]")

    @property
    def failure_probability(self) -> float:
        """Current hazard probability contributed by the attack."""
        if self.tree.root_achieved():
            return self.success_given_goal
        return self.success_given_goal * self.tree.progress() * 0.5


class DependabilityLevel(enum.Enum):
    """Holistic verdict vocabulary of the co-engineering monitor."""

    DEPENDABLE = "dependable"
    DEGRADED = "degraded"
    COMPROMISED = "compromised"


@dataclass(frozen=True)
class CoAssessment:
    """One fused safety+security assessment."""

    stamp: float
    level: DependabilityLevel
    reliability_level: ReliabilityLevel
    attack_goal_reached: bool
    attack_progress: float
    combined_failure_probability: float


@dataclass
class CoEngineeringMonitor:
    """Fuses one UAV's Safety EDDI and Security EDDI at runtime.

    Combination rules (conservative, per the co-engineering workflow):

    * attack goal reached → COMPROMISED, whatever the hardware says;
    * LOW reliability → DEGRADED at best;
    * MEDIUM reliability tolerates no attack progress — any achieved
      attack step demotes to DEGRADED;
    * otherwise DEPENDABLE.
    """

    safety: SafeDronesMonitor
    security: SecurityEddi
    history: list[CoAssessment] = field(default_factory=list)

    def assess(self, now: float) -> CoAssessment:
        """Produce the fused verdict from the two monitors' current state."""
        latest = self.safety.latest
        reliability = latest.level if latest is not None else ReliabilityLevel.HIGH
        safety_pof = latest.failure_probability if latest is not None else 0.0
        goal_reached = self.security.root_achieved
        progress = self.security.tree.progress()

        if goal_reached:
            level = DependabilityLevel.COMPROMISED
        elif reliability is ReliabilityLevel.LOW:
            level = DependabilityLevel.DEGRADED
        elif reliability is ReliabilityLevel.MEDIUM and progress > 0.0:
            level = DependabilityLevel.DEGRADED
        elif progress >= 0.5:
            level = DependabilityLevel.DEGRADED
        else:
            level = DependabilityLevel.DEPENDABLE

        security_event = SecurityInformedEvent("attack", self.security.tree)
        combined = 1.0 - (1.0 - safety_pof) * (
            1.0 - security_event.failure_probability
        )
        assessment = CoAssessment(
            stamp=now,
            level=level,
            reliability_level=reliability,
            attack_goal_reached=goal_reached,
            attack_progress=progress,
            combined_failure_probability=combined,
        )
        self.history.append(assessment)
        return assessment
