"""Squad-level ConSerts: hierarchical composition for leader–follower swarms.

The paper's decider (:mod:`repro.core.decider`) composes *UAV* ConSerts
directly into one mission verdict — fine for a flat three-UAV fleet,
but a K×ρ swarm needs an intermediate certificate layer: each squad
(one explorer leader plus its ρ followers) offers its own conditional
guarantee, and the mission decider demands *squad* guarantees instead of
per-UAV ones. That is ConSert composition as Reich et al. intend it —
demands bind to provider certificates and re-resolve every evaluation —
just one level deeper.

Squad guarantee ladder (strongest first):

``squad_tasking_full``
    Leader healthy and every follower alive — full service rate.
``squad_tasking``
    Leader healthy and at least one follower alive — degraded rate.
``squad_patrol_only``
    Leader healthy but no followers — detection continues, visits stall.
``squad_lost`` (default)
    Leader demoted/down: followers must re-home, tasks must transfer.

The mission ConSert then offers ``swarm_as_planned`` (every squad full),
``swarm_tasking_degraded`` (every squad at least tasking),
``swarm_rehome_needed`` (some squad lost but another can still task —
the signal :mod:`repro.swarm.sim` acts on), and the default
``swarm_lost``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.conserts import (
    AndNode,
    ConSert,
    Demand,
    Guarantee,
    OrNode,
    RuntimeEvidence,
)

SQUAD_TASKING_FULL = "squad_tasking_full"
SQUAD_TASKING = "squad_tasking"
SQUAD_PATROL_ONLY = "squad_patrol_only"
SQUAD_LOST = "squad_lost"

TASKING = frozenset({SQUAD_TASKING_FULL, SQUAD_TASKING})
"""Squad guarantees under which the squad still services tasks."""

SWARM_AS_PLANNED = "swarm_as_planned"
SWARM_TASKING_DEGRADED = "swarm_tasking_degraded"
SWARM_REHOME_NEEDED = "swarm_rehome_needed"
SWARM_LOST = "swarm_lost"


class SquadConSert:
    """Conditional safety certificate for one leader + its followers.

    Evidence is fed by the simulation/assurance plane each cycle:
    ``leader_ok`` (the leader is up and not demoted),
    ``followers_available`` (≥ 1 follower heartbeating), and
    ``full_strength`` (the roster matches the planned ρ).
    """

    def __init__(self, squad_id: str) -> None:
        self.squad_id = squad_id
        self.leader_ok = RuntimeEvidence(
            "leader_ok", value=True, description="leader alive and not demoted"
        )
        self.followers_available = RuntimeEvidence(
            "followers_available", value=True, description="at least one live follower"
        )
        self.full_strength = RuntimeEvidence(
            "full_strength", value=True, description="roster at planned strength"
        )
        self.consert = ConSert(
            name=f"squad:{squad_id}",
            guarantees=[
                Guarantee(
                    SQUAD_TASKING_FULL,
                    condition=AndNode([
                        self.leader_ok, self.followers_available, self.full_strength,
                    ]),
                ),
                Guarantee(
                    SQUAD_TASKING,
                    condition=AndNode([self.leader_ok, self.followers_available]),
                ),
                Guarantee(SQUAD_PATROL_ONLY, condition=self.leader_ok),
                Guarantee(SQUAD_LOST),
            ],
        )

    def update(
        self, leader_ok: bool, live_followers: int, planned_followers: int
    ) -> None:
        """Refresh the squad's runtime evidence from observed state."""
        self.leader_ok.set(leader_ok)
        self.followers_available.set(live_followers >= 1)
        self.full_strength.set(live_followers >= planned_followers)

    def evaluate(self) -> str:
        """Name of the strongest satisfiable squad guarantee."""
        guarantee = self.consert.evaluate()
        assert guarantee is not None  # ladder ends in an unconditional default
        return guarantee.name


@dataclass(frozen=True)
class SwarmDecision:
    """One mission-level verdict over all squad certificates."""

    verdict: str
    squad_guarantees: dict[str, str]
    tasking_squads: list[str]
    lost_squads: list[str]

    def to_dict(self) -> dict[str, object]:
        return {
            "verdict": self.verdict,
            "squad_guarantees": dict(sorted(self.squad_guarantees.items())),
            "tasking_squads": list(self.tasking_squads),
            "lost_squads": list(self.lost_squads),
        }


@dataclass
class SwarmMissionDecider:
    """Mission ConSert demanding squad guarantees (the Σ node, one level up).

    Mirrors :class:`repro.core.decider.MissionDecider`, but its demands
    bind to :class:`SquadConSert` providers rather than UAV networks:
    the composition is certificate → certificate, so adding a squad never
    changes the mission tree's shape — it just binds more providers.
    """

    squads: dict[str, SquadConSert] = field(default_factory=dict)
    history: list[SwarmDecision] = field(default_factory=list)

    def add_squad(self, squad: SquadConSert) -> None:
        self.squads[squad.squad_id] = squad

    def _mission_consert(self) -> ConSert:
        ordered = [self.squads[k] for k in sorted(self.squads)]
        all_full = AndNode([
            Demand(
                f"{s.squad_id}_full",
                accepted_guarantees=frozenset({SQUAD_TASKING_FULL}),
                providers=[s.consert],
            )
            for s in ordered
        ])
        all_tasking = AndNode([
            Demand(
                f"{s.squad_id}_tasking",
                accepted_guarantees=TASKING,
                providers=[s.consert],
            )
            for s in ordered
        ])
        any_tasking = OrNode([
            Demand(
                f"{s.squad_id}_any",
                accepted_guarantees=TASKING,
                providers=[s.consert],
            )
            for s in ordered
        ])
        return ConSert(
            name="swarm-mission",
            guarantees=[
                Guarantee(SWARM_AS_PLANNED, condition=all_full),
                Guarantee(SWARM_TASKING_DEGRADED, condition=all_tasking),
                Guarantee(SWARM_REHOME_NEEDED, condition=any_tasking),
                Guarantee(SWARM_LOST),
            ],
        )

    def decide(self) -> SwarmDecision:
        """Evaluate every squad certificate and produce the swarm verdict."""
        if not self.squads:
            raise RuntimeError("no squads registered with the decider")
        guarantees = {
            squad_id: self.squads[squad_id].evaluate()
            for squad_id in sorted(self.squads)
        }
        mission = self._mission_consert().evaluate()
        assert mission is not None
        decision = SwarmDecision(
            verdict=mission.name,
            squad_guarantees=guarantees,
            tasking_squads=[s for s, g in guarantees.items() if g in TASKING],
            lost_squads=[s for s, g in guarantees.items() if g == SQUAD_LOST],
        )
        self.history.append(decision)
        return decision
