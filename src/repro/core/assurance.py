"""GSN-style assurance cases.

"The core of a DDI is an assurance case — a clear, organized argument
that demonstrates that the system meets dependability requirements",
linking "requirements, assumptions, architecture models, dependability
analyses, and verification documents into a cohesive narrative"
(Sec. III). This module implements the Goal Structuring Notation subset
needed to express and check such arguments: goals decomposed through
strategies down to solutions (evidence), with structural validation
(no undeveloped goals, no dangling strategies) and live evidence status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Solution:
    """A leaf evidence item.

    ``check`` optionally binds the solution to a live predicate (e.g. "the
    SafeDrones monitor reports PoF below threshold"); static documentary
    evidence uses the default always-true check.
    """

    sol_id: str
    statement: str
    check: Callable[[], bool] = lambda: True

    def supported(self) -> bool:
        """Whether the evidence currently holds."""
        return bool(self.check())


@dataclass
class Strategy:
    """An argumentation step decomposing a goal into subgoals."""

    strat_id: str
    statement: str
    subgoals: list["Goal"] = field(default_factory=list)

    def add_goal(self, goal: "Goal") -> "Goal":
        """Attach a subgoal."""
        self.subgoals.append(goal)
        return goal

    def supported(self) -> bool:
        """A strategy holds when every subgoal holds."""
        return bool(self.subgoals) and all(g.supported() for g in self.subgoals)


@dataclass
class Goal:
    """A claim, supported either by strategies or directly by solutions."""

    goal_id: str
    statement: str
    strategies: list[Strategy] = field(default_factory=list)
    solutions: list[Solution] = field(default_factory=list)

    def add_strategy(self, strategy: Strategy) -> Strategy:
        """Attach a decomposition strategy."""
        self.strategies.append(strategy)
        return strategy

    def add_solution(self, solution: Solution) -> Solution:
        """Attach direct evidence."""
        self.solutions.append(solution)
        return solution

    @property
    def developed(self) -> bool:
        """Whether the goal has any support structure at all."""
        return bool(self.strategies) or bool(self.solutions)

    def supported(self) -> bool:
        """A goal holds when all strategies hold and all solutions hold.

        An undeveloped goal is unsupported by definition.
        """
        if not self.developed:
            return False
        return all(s.supported() for s in self.strategies) and all(
            s.supported() for s in self.solutions
        )


@dataclass
class AssuranceCase:
    """A rooted assurance argument."""

    name: str
    root: Goal

    def undeveloped_goals(self) -> list[Goal]:
        """All goals lacking any strategies or solutions."""
        found: list[Goal] = []

        def walk(goal: Goal) -> None:
            if not goal.developed:
                found.append(goal)
            for strategy in goal.strategies:
                for sub in strategy.subgoals:
                    walk(sub)

        walk(self.root)
        return found

    def is_complete(self) -> bool:
        """Structurally complete: no undeveloped goals anywhere."""
        return not self.undeveloped_goals()

    def evaluate(self) -> bool:
        """Whether the root claim currently holds given live evidence."""
        return self.root.supported()

    def render(self) -> str:
        """Human-readable indented rendering of the argument."""
        lines: list[str] = []

        def walk_goal(goal: Goal, depth: int) -> None:
            status = "OK" if goal.supported() else "FAIL"
            lines.append(f"{'  ' * depth}[{goal.goal_id}] {goal.statement} ({status})")
            for solution in goal.solutions:
                mark = "OK" if solution.supported() else "FAIL"
                lines.append(
                    f"{'  ' * (depth + 1)}(sol {solution.sol_id}) "
                    f"{solution.statement} ({mark})"
                )
            for strategy in goal.strategies:
                lines.append(
                    f"{'  ' * (depth + 1)}<{strategy.strat_id}> {strategy.statement}"
                )
                for sub in strategy.subgoals:
                    walk_goal(sub, depth + 2)

        walk_goal(self.root, 0)
        return "\n".join(lines)
