"""Static analysis of ConSert compositions (design-time checks).

Before a ConSert network ships in a DDI, the integrator wants to know:

* Are there **unbound demands** (a demand with no provider will never be
  satisfied — the guarantee above it is dead)?
* Are there **composition cycles** (A demands from B demands from A —
  evaluation would recurse forever at runtime)?
* Which guarantees are **reachable at all** under some evidence
  assignment, and which are dead weight?
* What is the network's **fallback ladder** — for each ConSert, the
  guarantee offered as evidence degrades monotonically?

These checks run on the executable models themselves, so design-time
analysis and the runtime artefact can never drift apart.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.conserts import ConSert, Demand, RuntimeEvidence


def _demands_of(consert: ConSert) -> list[Demand]:
    return consert.demand_nodes()


def find_unbound_demands(conserts: list[ConSert]) -> list[tuple[str, str]]:
    """(consert, demand) pairs whose demand has no bound provider."""
    out = []
    for consert in conserts:
        for demand in _demands_of(consert):
            if not demand.providers:
                out.append((consert.name, demand.name))
    return out


def find_composition_cycles(conserts: list[ConSert]) -> list[list[str]]:
    """Cycles in the provider graph (consert -> its demand providers).

    Returns each cycle as the list of ConSert names along it; an empty
    list means the composition is evaluation-safe.
    """
    graph: dict[str, set[str]] = {c.name: set() for c in conserts}
    for consert in conserts:
        for demand in _demands_of(consert):
            for provider in demand.providers:
                graph.setdefault(consert.name, set()).add(provider.name)

    cycles: list[list[str]] = []
    visiting: list[str] = []
    done: set[str] = set()

    def visit(name: str) -> None:
        if name in done:
            return
        if name in visiting:
            cycles.append(visiting[visiting.index(name) :] + [name])
            return
        visiting.append(name)
        for neighbor in sorted(graph.get(name, ())):
            visit(neighbor)
        visiting.pop()
        done.add(name)

    for name in sorted(graph):
        visit(name)
    return cycles


@dataclass(frozen=True)
class ReachabilityReport:
    """Which guarantees of one ConSert are offerable at all."""

    consert: str
    reachable: list[str]
    unreachable: list[str]


def _collect_evidence(conserts: list[ConSert]) -> list[RuntimeEvidence]:
    seen: dict[int, RuntimeEvidence] = {}
    for consert in conserts:
        for evidence in consert.evidence_nodes():
            seen[id(evidence)] = evidence
    return list(seen.values())


def guarantee_reachability(
    conserts: list[ConSert], max_evidence: int = 16
) -> list[ReachabilityReport]:
    """Exhaustively test evidence assignments for offerable guarantees.

    Exact over all 2^n evidence assignments; refuses networks with more
    than ``max_evidence`` distinct evidence nodes (use sampling or
    per-subtree analysis beyond that).
    """
    evidence_nodes = _collect_evidence(conserts)
    if len(evidence_nodes) > max_evidence:
        raise ValueError(
            f"{len(evidence_nodes)} evidence nodes exceed max_evidence="
            f"{max_evidence}"
        )
    original = [e.value for e in evidence_nodes]
    offered: dict[str, set[str]] = {c.name: set() for c in conserts}
    try:
        for assignment in itertools.product((False, True), repeat=len(evidence_nodes)):
            for evidence, value in zip(evidence_nodes, assignment):
                evidence.value = value
            for consert in conserts:
                guarantee = consert.evaluate()
                if guarantee is not None:
                    offered[consert.name].add(guarantee.name)
    finally:
        for evidence, value in zip(evidence_nodes, original):
            evidence.value = value
    reports = []
    for consert in conserts:
        names = consert.guarantee_names()
        reachable = [n for n in names if n in offered[consert.name]]
        reports.append(
            ReachabilityReport(
                consert=consert.name,
                reachable=reachable,
                unreachable=[n for n in names if n not in offered[consert.name]],
            )
        )
    return reports


@dataclass(frozen=True)
class ValidationResult:
    """Combined design-time validation verdict for a composition."""

    unbound_demands: list[tuple[str, str]]
    cycles: list[list[str]]
    unreachable_guarantees: list[tuple[str, str]]

    @property
    def ok(self) -> bool:
        """Whether the composition passes every check."""
        return not (
            self.unbound_demands or self.cycles or self.unreachable_guarantees
        )


def validate_composition(
    conserts: list[ConSert], check_reachability: bool = True, max_evidence: int = 16
) -> ValidationResult:
    """Run all static checks over a ConSert composition."""
    unbound = find_unbound_demands(conserts)
    cycles = find_composition_cycles(conserts)
    unreachable: list[tuple[str, str]] = []
    if check_reachability and not cycles:
        for report in guarantee_reachability(conserts, max_evidence):
            unreachable.extend((report.consert, name) for name in report.unreachable)
    return ValidationResult(
        unbound_demands=unbound,
        cycles=cycles,
        unreachable_guarantees=unreachable,
    )
