"""Open Dependability Exchange (ODE) style model packaging.

"Safety models can be sourced from development tools compatible with the
Open Dependability Exchange (ODE) metamodel for seamless export"
(Sec. III-A). This module provides the interchange layer: a package
bundling the design-time dependability models of one system (ConSert
structure, fault trees, attack trees) with provenance metadata,
serialisable to JSON and reconstructible into executable runtime models —
which is precisely the DDI -> EDDI generation step of the paper.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.conserts import AndNode, ConSert, Demand, Guarantee, OrNode, RuntimeEvidence
from repro.security.attack_trees import AttackTree


def conserts_to_dict(consert: ConSert) -> dict[str, Any]:
    """Serialise a ConSert's structure (evidence values are design-time)."""

    def encode(node: Any) -> dict[str, Any]:
        if isinstance(node, RuntimeEvidence):
            return {"kind": "evidence", "name": node.name, "description": node.description}
        if isinstance(node, Demand):
            return {
                "kind": "demand",
                "name": node.name,
                "accepted": sorted(node.accepted_guarantees),
                "providers": [p.name for p in node.providers],
            }
        if isinstance(node, AndNode):
            return {"kind": "and", "children": [encode(c) for c in node.children]}
        if isinstance(node, OrNode):
            return {"kind": "or", "children": [encode(c) for c in node.children]}
        raise TypeError(f"unknown node type {type(node)!r}")

    return {
        "name": consert.name,
        "guarantees": [
            {
                "name": g.name,
                "description": g.description,
                "condition": encode(g.condition) if g.condition is not None else None,
            }
            for g in consert.guarantees
        ],
    }


def consert_from_dict(
    data: dict[str, Any], providers: dict[str, ConSert] | None = None
) -> ConSert:
    """Rebuild an executable ConSert from its serialised form.

    ``providers`` maps provider names to already-reconstructed ConSerts so
    demands re-bind across the package; unresolvable providers are left
    unbound (the integrator binds them later).
    """
    providers = providers or {}
    evidence_cache: dict[str, RuntimeEvidence] = {}

    def decode(node: dict[str, Any]) -> Any:
        kind = node["kind"]
        if kind == "evidence":
            if node["name"] not in evidence_cache:
                evidence_cache[node["name"]] = RuntimeEvidence(
                    node["name"], False, node.get("description", "")
                )
            return evidence_cache[node["name"]]
        if kind == "demand":
            demand = Demand(
                node["name"],
                frozenset(node["accepted"]),
                description="",
            )
            for provider_name in node.get("providers", ()):
                if provider_name in providers:
                    demand.bind(providers[provider_name])
            return demand
        if kind == "and":
            return AndNode([decode(c) for c in node["children"]])
        if kind == "or":
            return OrNode([decode(c) for c in node["children"]])
        raise ValueError(f"unknown node kind {kind!r}")

    return ConSert(
        name=data["name"],
        guarantees=[
            Guarantee(
                g["name"],
                decode(g["condition"]) if g["condition"] is not None else None,
                g.get("description", ""),
            )
            for g in data["guarantees"]
        ],
    )


@dataclass
class OdePackage:
    """A DDI package: dependability models plus provenance metadata."""

    system_name: str
    version: str = "1.0"
    conserts: list[dict[str, Any]] = field(default_factory=list)
    attack_trees: list[str] = field(default_factory=list)  # AttackTree JSON blobs
    metadata: dict[str, str] = field(default_factory=dict)

    def add_consert(self, consert: ConSert) -> None:
        """Attach a ConSert model to the package."""
        self.conserts.append(conserts_to_dict(consert))

    def add_attack_tree(self, tree: AttackTree) -> None:
        """Attach an attack-tree model to the package."""
        self.attack_trees.append(tree.to_json())

    def to_json(self) -> str:
        """Serialise the whole package."""
        return json.dumps(
            {
                "system": self.system_name,
                "version": self.version,
                "metadata": self.metadata,
                "conserts": self.conserts,
                "attack_trees": [json.loads(t) for t in self.attack_trees],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "OdePackage":
        """Load a package serialised by :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            system_name=data["system"],
            version=data.get("version", "1.0"),
            conserts=data.get("conserts", []),
            attack_trees=[json.dumps(t) for t in data.get("attack_trees", [])],
            metadata=data.get("metadata", {}),
        )

    def instantiate_conserts(self) -> dict[str, ConSert]:
        """Generate executable ConSerts (the DDI -> EDDI step).

        Reconstructs in package order, so providers serialised before
        their consumers re-bind automatically.
        """
        built: dict[str, ConSert] = {}
        for data in self.conserts:
            consert = consert_from_dict(data, providers=built)
            built[consert.name] = consert
        return built

    def instantiate_attack_trees(self) -> list[AttackTree]:
        """Reconstruct executable attack trees."""
        return [AttackTree.from_json(t) for t in self.attack_trees]
