"""Conditional Safety Certificates (ConSerts).

Implements the ConSerts runtime model (Reich et al., SAFECOMP 2020, cited
as the paper's integrating technology): a component offers an ordered list
of **guarantees**, each conditioned on a boolean tree over **runtime
evidence** (locally monitored conditions) and **demands** (guarantees that
must currently be offered by other ConSerts it composes with). Evaluation
selects the strongest satisfiable guarantee, falling back to an
unconditional default — e.g. "Emergency Landing" in the paper's Fig. 1.

Composition is hierarchical and dynamic: demands bind to provider ConSerts
at integration time and re-resolve every evaluation, which is exactly the
"runtime assurance" shift the EDDI concept is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Node = Union["RuntimeEvidence", "Demand", "AndNode", "OrNode"]


@dataclass
class RuntimeEvidence:
    """A monitored boolean condition feeding a ConSert tree.

    ``value`` is updated by the hosting EDDI each cycle (e.g. "SafeML
    confidence is HIGH", "GPS quality ok", "no spoofing detected").
    """

    name: str
    value: bool = False
    description: str = ""

    def set(self, value: bool) -> None:
        """Update the monitored value."""
        self.value = bool(value)

    def satisfied(self) -> bool:
        """Current truth value."""
        return self.value


@dataclass
class Demand:
    """A requirement on guarantees offered by other ConSerts.

    Satisfied when any bound provider currently offers a guarantee whose
    name is in ``accepted_guarantees``.
    """

    name: str
    accepted_guarantees: frozenset[str]
    providers: list["ConSert"] = field(default_factory=list)
    description: str = ""

    def bind(self, provider: "ConSert") -> "Demand":
        """Attach a provider ConSert; returns self for chaining."""
        self.providers.append(provider)
        return self

    def satisfied(self) -> bool:
        """Whether any bound provider offers an accepted guarantee now."""
        for provider in self.providers:
            offered = provider.evaluate()
            if offered is not None and offered.name in self.accepted_guarantees:
                return True
        return False


@dataclass
class AndNode:
    """All children must be satisfied."""

    children: list[Node]

    def satisfied(self) -> bool:
        """Conjunction over children."""
        return all(child.satisfied() for child in self.children)


@dataclass
class OrNode:
    """At least one child must be satisfied."""

    children: list[Node]

    def satisfied(self) -> bool:
        """Disjunction over children."""
        return any(child.satisfied() for child in self.children)


@dataclass
class Guarantee:
    """One conditional guarantee of a ConSert.

    ``condition=None`` marks an unconditional (default) guarantee. ``rank``
    is informational; the offering order is the position in the ConSert's
    guarantee list (first = strongest).
    """

    name: str
    condition: Node | None = None
    description: str = ""
    rank: int = 0

    def satisfied(self) -> bool:
        """Whether this guarantee can currently be offered."""
        return True if self.condition is None else self.condition.satisfied()


@dataclass
class ConSert:
    """An ordered set of guarantees for one component or service.

    ``evaluate()`` returns the first (strongest) satisfiable guarantee.
    A well-formed ConSert ends with an unconditional default so evaluation
    never comes back empty; ``evaluate`` returns ``None`` only for
    ill-formed certificates with no satisfiable guarantee.
    """

    name: str
    guarantees: list[Guarantee] = field(default_factory=list)

    def __post_init__(self) -> None:
        for rank, guarantee in enumerate(self.guarantees):
            guarantee.rank = rank

    def add_guarantee(self, guarantee: Guarantee) -> Guarantee:
        """Append a guarantee (weaker than all existing ones)."""
        guarantee.rank = len(self.guarantees)
        self.guarantees.append(guarantee)
        return guarantee

    def evaluate(self) -> Guarantee | None:
        """The strongest currently satisfiable guarantee, or None."""
        for guarantee in self.guarantees:
            if guarantee.satisfied():
                return guarantee
        return None

    def guarantee_names(self) -> list[str]:
        """Names of all guarantees, strongest first."""
        return [g.name for g in self.guarantees]

    def evidence_nodes(self) -> list[RuntimeEvidence]:
        """Every RuntimeEvidence leaf reachable from this ConSert's trees."""
        found: list[RuntimeEvidence] = []
        seen: set[int] = set()

        def walk(node: Node) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            if isinstance(node, RuntimeEvidence):
                found.append(node)
            elif isinstance(node, (AndNode, OrNode)):
                for child in node.children:
                    walk(child)
            # Demands stop the walk: their providers own their own evidence.

        for guarantee in self.guarantees:
            if guarantee.condition is not None:
                walk(guarantee.condition)
        return found

    def evidence_by_name(self, name: str) -> RuntimeEvidence:
        """Look up a RuntimeEvidence leaf by name (raises KeyError)."""
        for evidence in self.evidence_nodes():
            if evidence.name == name:
                return evidence
        raise KeyError(name)

    def demand_nodes(self) -> list[Demand]:
        """Every Demand leaf in this ConSert's trees."""
        found: list[Demand] = []
        seen: set[int] = set()

        def walk(node: Node) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            if isinstance(node, Demand):
                found.append(node)
            elif isinstance(node, (AndNode, OrNode)):
                for child in node.children:
                    walk(child)

        for guarantee in self.guarantees:
            if guarantee.condition is not None:
                walk(guarantee.condition)
        return found
