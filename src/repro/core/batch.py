"""Batched (structure-of-arrays) assurance plane: ConSert + SafeML + EDDI.

PR 4 vectorized the fleet *physics*; this module vectorizes the fleet's
*safety layer*. The scalar reference path steps one EDDI at a time
(:func:`repro.core.adapters.build_uav_eddi` + :class:`repro.core.eddi.Eddi`
+ :class:`repro.core.decider.MissionDecider`), which is linear in fleet
size. Here the same monitor → evidence → ConSert → response cycle runs as
fleet-wide array operations:

* ConSert gate trees are compiled once into boolean-array programs
  (:class:`CompiledConSerts`) and evaluated for all UAVs at once;
* the SafeDrones battery/processor/propulsion models run as stacked
  arrays (:class:`BatchSafeDrones`) — one ``scipy.linalg.expm`` call over
  an ``(n, 4, 4)`` stack instead of ``n`` scalar solves;
* SafeML ECDF statistical distances are computed as stacked array
  operations across every (monitor, feature) task
  (:func:`stacked_safeml_reports`).

Selection mirrors the fleet engine: :func:`build_assurance` keys off the
same ``engine="scalar"|"vectorized"`` vocabulary ``World`` threads
through scenarios, experiments, and CLIs.

Bit-exactness contract
----------------------
The batched plane must agree with the scalar stack to the last bit — the
outputs feed discrete branches (guarantee demotion, mission verdicts)
where any ULP difference compounds. The rules (same as
:mod:`repro.uav.fleet`):

* every arithmetic expression mirrors the scalar code's operation order
  exactly;
* transcendentals the scalar code computes with :mod:`math`
  (``math.exp`` in the Arrhenius/SoC/processor factors, ``math.dist`` in
  the spoof detector) stay per-row :mod:`math` calls — ``np.exp`` is NOT
  bit-identical to ``math.exp``;
* sensor noise comes from the same per-channel fleet streams
  (``ch_temp``/``ch_gps``/``ch_quality``/``ch_imu``), consumed in the
  same per-row order the scalar adapter consumes them.

``tests/test_assurance_equivalence.py`` is the differential proof.

Known, documented deviations (none observable by the equivalence suite):

* no ``eddi.monitor`` / ``eddi.diagnose`` / ``eddi.respond`` obs spans —
  counters and events still fire;
* within one cycle, obs events are grouped by phase (all spoof-detected
  events, then all guarantee transitions) instead of interleaved per UAV;
* :class:`BatchSafeDrones` keeps only the latest assessment arrays, not
  a per-UAV history list (``assessment(row)`` synthesizes the newest
  :class:`ReliabilityAssessment` on demand);
* error raising: validations run phase-by-phase over all rows and report
  the first offending row, so when *different* UAVs would raise from
  *different* phases the scalar stack may name another one first;
* ``PeerTelemetryMonitor`` / ``attach_degraded_comm`` are not batched —
  ``peer_telemetry_fresh`` stays at its default (exactly like the stock
  ``build_fleet_eddis`` wiring);
* adopting UAVs after the plane was built is unsupported (``step``
  raises ``RuntimeError`` if the fleet grew).
"""

from __future__ import annotations

import math
from dataclasses import fields as dataclass_fields

import numpy as np
from scipy.linalg import expm
from scipy.stats import norm

from repro.core.adapters import build_fleet_eddis
from repro.core.conserts import AndNode, ConSert, Demand, OrNode, RuntimeEvidence
from repro.core.decider import (
    CAPABLE,
    MissionDecider,
    MissionDecision,
    MissionVerdict,
)
from repro.core.eddi import EddiResponse
from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.obs import OBS, event
from repro.safedrones.battery import BOLTZMANN_EV, BatteryReliabilityModel
from repro.safedrones.communication import CommLinkMonitor
from repro.safedrones.markov import MarkovModelError
from repro.safedrones.monitor import ReliabilityAssessment, ReliabilityLevel
from repro.safedrones.processor import ProcessorReliabilityModel
from repro.safedrones.propulsion import PropulsionModel
from repro.safeml.monitor import ConfidenceLevel, SafeMlReport
from repro.security.spoofing import GpsSpoofingDetector
from repro.uav.world import ENGINES


# --------------------------------------------------------------------------
# Compiled ConSert network: gate trees -> boolean array programs
# --------------------------------------------------------------------------
class CompiledConSerts:
    """The Fig. 1 ConSert network compiled to boolean NumPy programs.

    Every UAV shares the same network *shape* (only the evidence values
    differ), so the trees are walked once on a template
    :class:`UavConSertNetwork` and turned into closures over

    * ``evidence``: ``{evidence name -> (n,) bool array}`` and
    * ``offers``: ``{consert field -> (n,) intp array}`` of the guarantee
      index each row's ConSert currently offers (``-1`` = none).

    Demands become boolean lookup tables over the provider's offer index
    (index ``-1`` lands on a trailing always-False slot, mirroring a
    provider that offers nothing). Evaluation order is a topological sort
    of the demand graph, so provider offers exist before consumers read
    them — exactly the bottom-up order lazy scalar evaluation induces.
    """

    def __init__(self) -> None:
        template = UavConSertNetwork(uav_id="__batch__")
        template.set_reliability_level("high")
        fields: list[str] = []
        for f in dataclass_fields(UavConSertNetwork):
            if isinstance(getattr(template, f.name, None), ConSert):
                fields.append(f.name)
        self.fields = tuple(fields)
        owner = {id(getattr(template, name)): name for name in fields}

        deps: dict[str, set[str]] = {}
        for name in fields:
            consert = getattr(template, name)
            found: set[str] = set()
            for demand in consert.demand_nodes():
                for provider in demand.providers:
                    pname = owner.get(id(provider))
                    if pname is None:
                        raise ValueError(
                            f"ConSert {consert.name!r} demands from a provider "
                            "outside the network"
                        )
                    found.add(pname)
            deps[name] = found
        ordered: list[str] = []
        placed: set[str] = set()
        remaining = set(fields)
        while remaining:
            ready = [
                name for name in fields
                if name in remaining and not (deps[name] - placed)
            ]
            if not ready:
                raise ValueError("ConSert demand graph has a cycle")
            for name in ready:
                ordered.append(name)
                placed.add(name)
                remaining.discard(name)
        self.order = tuple(ordered)

        self.guarantee_names = {
            name: tuple(getattr(template, name).guarantee_names())
            for name in fields
        }
        defaults: dict[str, bool] = {}
        for name in fields:
            for node in getattr(template, name).evidence_nodes():
                defaults[node.name] = bool(node.value)
        self.evidence_defaults = defaults

        self.programs = {}
        for name in fields:
            progs = []
            for guarantee in getattr(template, name).guarantees:
                if guarantee.condition is None:
                    progs.append(None)
                else:
                    progs.append(self._compile(guarantee.condition, owner))
            self.programs[name] = tuple(progs)
        #: Enum singletons in offer-index order for the top-level ConSert,
        #: so batched results preserve ``is`` identity with scalar ones.
        self.uav_guarantees = tuple(
            UavGuarantee(gname) for gname in self.guarantee_names["uav"]
        )

    def _compile(self, node, owner):
        if isinstance(node, RuntimeEvidence):
            def run(evidence, offers, _name=node.name):
                return evidence[_name]
            return run
        if isinstance(node, Demand):
            branches = []
            for provider in node.providers:
                pfield = owner[id(provider)]
                names = self.guarantee_names[pfield]
                lut = np.zeros(len(names) + 1, dtype=bool)
                for gi, gname in enumerate(names):
                    if gname in node.accepted_guarantees:
                        lut[gi] = True
                branches.append((pfield, lut))
            if len(branches) == 1:
                pfield, lut = branches[0]

                def run(evidence, offers, _p=pfield, _lut=lut):
                    return _lut[offers[_p]]
                return run

            def run(evidence, offers, _branches=tuple(branches)):
                out = None
                for pfield, lut in _branches:
                    cond = lut[offers[pfield]]
                    out = cond if out is None else (out | cond)
                return out
            return run
        if isinstance(node, (AndNode, OrNode)):
            children = tuple(self._compile(child, owner) for child in node.children)
            if len(children) == 1:
                return children[0]
            if isinstance(node, AndNode):
                def run(evidence, offers, _children=children):
                    out = _children[0](evidence, offers)
                    for child in _children[1:]:
                        out = out & child(evidence, offers)
                    return out
                return run

            def run(evidence, offers, _children=children):
                out = _children[0](evidence, offers)
                for child in _children[1:]:
                    out = out | child(evidence, offers)
                return out
            return run
        raise TypeError(f"cannot compile ConSert node {type(node)!r}")

    def evaluate(self, evidence: dict, n: int) -> dict:
        """Offer index per row for every ConSert (``-1`` = none offered)."""
        offers: dict[str, np.ndarray] = {}
        for name in self.order:
            offer = np.full(n, -1, dtype=np.intp)
            pending = np.ones(n, dtype=bool)
            for gi, prog in enumerate(self.programs[name]):
                if prog is None:
                    offer[pending] = gi
                    break
                cond = prog(evidence, offers)
                offer[pending & cond] = gi
                pending = pending & ~cond
                if not pending.any():
                    break
            offers[name] = offer
        return offers


_COMPILED: CompiledConSerts | None = None


def compiled_conserts() -> CompiledConSerts:
    """The process-wide compiled network (shape is identical for all UAVs)."""
    global _COMPILED
    if _COMPILED is None:
        _COMPILED = CompiledConSerts()
    return _COMPILED


# --------------------------------------------------------------------------
# Batched SafeDrones: battery/processor/propulsion over the whole fleet
# --------------------------------------------------------------------------
class BatchSafeDrones:
    """Fleet-wide :class:`~repro.safedrones.monitor.SafeDronesMonitor`.

    One battery Markov distribution row per UAV, integrated with a single
    stacked ``expm`` call; Arrhenius/SoC/processor thermal factors stay
    per-row ``math.exp`` (bit-exactness). Propulsion PoF is a pure
    function of ``(rotor_count, motors_failed)`` for a fixed horizon and
    is memoized — ``expm`` is deterministic, so the cached value is the
    bits the scalar monitor recomputes every cycle.
    """

    def __init__(
        self,
        n: int,
        rotor_counts,
        pof_abort_threshold: float = 0.9,
        mission_horizon_s: float = 600.0,
        soc_collapse_threshold: float = 0.15,
    ) -> None:
        self.n = n
        self.pof_abort_threshold = pof_abort_threshold
        self.mission_horizon_s = mission_horizon_s
        self.soc_collapse_threshold = soc_collapse_threshold
        battery = BatteryReliabilityModel()
        self._base_q = battery.chain.q.copy()
        self._bat_ea_b = battery.activation_energy_ev / BOLTZMANN_EV
        self._bat_inv_tref = 1.0 / (battery.reference_temp_c + 273.15)
        self._bat_gamma = battery.soc_stress_gamma
        self._bat_knee = battery.soc_stress_knee
        processor = ProcessorReliabilityModel()
        self._proc_ser = processor.ser_rate_per_hour
        self._proc_wearout = processor.wearout_rate_per_hour
        self._proc_ea_b = processor.activation_energy_ev / BOLTZMANN_EV
        self._proc_inv_tref = 1.0 / (processor.reference_temp_c + 273.15)
        self._dist = np.zeros((n, 4))
        if n:
            self._dist[:, 0] = 1.0
        self._last_time: float | None = None
        self._last_soc: np.ndarray | None = None
        self.battery_fault_detected = np.zeros(n, dtype=bool)
        self._motors = [0] * n
        self._hazard = [0.0] * n
        self._rotor_counts = [int(r) for r in rotor_counts]
        self._prop_models: dict[int, PropulsionModel] = {}
        self._prop_cache: dict[tuple[int, int], float] = {}
        self._updated = False
        self._stamp = 0.0
        self.failure_probability = np.zeros(n)
        self.battery_pof = np.zeros(n)
        self.propulsion_pof = np.zeros(n)
        self.processor_pof = np.zeros(n)
        self.rel_high = np.zeros(n, dtype=bool)
        self.rel_medium = np.zeros(n, dtype=bool)
        self.abort_recommended = np.zeros(n, dtype=bool)

    def _propulsion_pof(self, rotor_count: int, motors_failed: int) -> float:
        key = (rotor_count, motors_failed)
        pof = self._prop_cache.get(key)
        if pof is None:
            model = self._prop_models.get(rotor_count)
            if model is None:
                model = PropulsionModel(rotor_count=rotor_count)
                self._prop_models[rotor_count] = model
            model.motors_failed = motors_failed
            pof = model.failure_probability(self.mission_horizon_s)
            self._prop_cache[key] = pof
        return pof

    def update(self, now: float, soc, temp_c, motors_failed=None) -> np.ndarray:
        """Feed one fleet-wide telemetry sample; returns total PoF per row.

        ``soc`` / ``temp_c`` are (n,) arrays; ``motors_failed`` is an
        optional per-row int sequence (motor-state sync, exactly the
        scalar monitor's ``while ... record_motor_failure()`` loop).
        """
        n = self.n
        mexp = math.exp
        soc = np.asarray(soc, dtype=float)
        temp_c = np.asarray(temp_c, dtype=float)
        soc_l = soc.tolist()
        temp_l = temp_c.tolist()

        if motors_failed is not None:
            motors = self._motors
            for k in range(n):
                m = motors_failed[k]
                if motors[k] < m:
                    motors[k] = m

        if self._last_soc is not None and n:
            last_l = self._last_soc.tolist()
            threshold = self.soc_collapse_threshold
            fault = self.battery_fault_detected
            dist = self._dist
            for k in range(n):
                if not fault[k] and last_l[k] - soc_l[k] >= threshold:
                    fault[k] = True
                    # register_cell_fault: shift surviving mass one stage.
                    p0 = float(dist[k, 0])
                    p1 = float(dist[k, 1])
                    tail = float(dist[k, 2]) + float(dist[k, 3])
                    dist[k, 0] = 0.0
                    dist[k, 1] = p0
                    dist[k, 2] = p1
                    dist[k, 3] = tail
        self._last_soc = soc.copy()

        first = self._last_time is None
        if first:
            self._last_time = now
            dt = 0.0
        else:
            dt = now - self._last_time
            if dt < 0.0:
                raise ValueError("time went backwards")
            self._last_time = now

        if not first and dt != 0.0 and n:
            dist = self._dist
            sums = np.sum(dist, axis=1)
            if not np.isclose(sums, 1.0, atol=1e-9).all():
                raise MarkovModelError("p0 must sum to 1")
            ea_b = self._bat_ea_b
            inv_tref = self._bat_inv_tref
            gamma = self._bat_gamma
            knee = self._bat_knee
            facts = [0.0] * n
            for k in range(n):
                t = max(temp_l[k], -200.0) + 273.15
                arrhenius = mexp(ea_b * (inv_tref - 1.0 / t))
                s = min(max(soc_l[k], 0.0), 1.0)
                socf = 1.0 if s >= knee else mexp(gamma * (knee - s))
                facts[k] = arrhenius * socf
            factors = np.array(facts, dtype=float)
            generators = (self._base_q[None, :, :] * factors[:, None, None]) * dt
            transitions = expm(generators)
            pts = np.empty_like(dist)
            for k in range(n):
                pts[k] = dist[k] @ transitions[k]
            pts = np.clip(pts, 0.0, None)
            totals = np.sum(pts, axis=1)
            bad = ~((totals >= 0.97) & (totals <= 1.03))
            if bad.any():
                k = int(np.flatnonzero(bad)[0])
                raise MarkovModelError(
                    f"transient solve lost normalisation (sum={float(totals[k]):.6f})"
                )
            self._dist = pts / totals[:, None]

            ser = self._proc_ser
            wearout_rate = self._proc_wearout
            p_ea_b = self._proc_ea_b
            p_inv_tref = self._proc_inv_tref
            hazard = self._hazard
            for k in range(n):
                t = (temp_l[k] + 15.0) + 273.15
                wearout = wearout_rate * mexp(p_ea_b * (p_inv_tref - 1.0 / t))
                hazard[k] = hazard[k] + ((ser + wearout) / 3600.0) * dt

        battery_pof = self._dist[:, 3].copy()
        hazard = self._hazard
        proc = [0.0] * n
        for k in range(n):
            proc[k] = 1.0 - mexp(-hazard[k])
        proc_pof = np.array(proc, dtype=float)
        rotors = self._rotor_counts
        motors = self._motors
        prop = [0.0] * n
        for k in range(n):
            prop[k] = self._propulsion_pof(rotors[k], motors[k])
        prop_pof = np.array(prop, dtype=float)

        # Fault-tree CBE range checks, in scalar evaluation order; the
        # positive-form mask makes NaN raise exactly like the scalar path.
        bad = ~((battery_pof >= 0.0) & (battery_pof <= 1.0 + 1e-9))
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"battery_failure: model probability {float(battery_pof[k])} "
                "out of range"
            )
        bad = ~((proc_pof >= 0.0) & (proc_pof <= 1.0 + 1e-9))
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"processor_failure: model probability {float(proc_pof[k])} "
                "out of range"
            )
        clipped_b = np.minimum(battery_pof, 1.0)
        clipped_p = np.minimum(proc_pof, 1.0)
        total = 1.0 - (1.0 - clipped_b) * (1.0 - clipped_p)
        total = 1.0 - (1.0 - total) * (1.0 - prop_pof)
        bad = ~((total >= 0.0) & (total <= 1.0))
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"probability of failure out of range: {float(total[k])}"
            )

        self._stamp = now
        self.failure_probability = total
        self.battery_pof = battery_pof
        self.propulsion_pof = prop_pof
        self.processor_pof = proc_pof
        self.rel_high = total < 0.2
        self.rel_medium = total < 0.6
        self.abort_recommended = total >= self.pof_abort_threshold
        self._updated = True
        return total

    def assessment(self, row: int) -> ReliabilityAssessment | None:
        """The latest per-row assessment (None before the first update)."""
        if not self._updated:
            return None
        total = float(self.failure_probability[row])
        return ReliabilityAssessment(
            stamp=self._stamp,
            failure_probability=total,
            battery_pof=float(self.battery_pof[row]),
            propulsion_pof=float(self.propulsion_pof[row]),
            processor_pof=float(self.processor_pof[row]),
            level=ReliabilityLevel.from_failure_probability(total),
            battery_fault_detected=bool(self.battery_fault_detected[row]),
            abort_recommended=bool(self.abort_recommended[row]),
        )


# --------------------------------------------------------------------------
# Stacked SafeML: every (monitor, feature) distance as one array pass
# --------------------------------------------------------------------------
def _ad_weights(n_grid: int, sqrt: bool) -> np.ndarray:
    """Anderson–Darling tail weights on an ``n_grid``-point pooled grid."""
    h = np.arange(1, n_grid + 1) / n_grid
    weight_ok = (h > 0.0) & (h < 1.0)
    weights = np.zeros_like(h)
    if sqrt:
        weights[weight_ok] = 1.0 / np.sqrt(h[weight_ok] * (1.0 - h[weight_ok]))
    else:
        weights[weight_ok] = 1.0 / (h[weight_ok] * (1.0 - h[weight_ok]))
    return weights


def _stacked_ks(grid, fa, fb):
    return np.max(np.abs(fa - fb), axis=1)


def _stacked_kuiper(grid, fa, fb):
    return np.max(fa - fb, axis=1) + np.max(fb - fa, axis=1)


def _stacked_cvm(grid, fa, fb):
    return np.mean((fa - fb) ** 2, axis=1)


def _stacked_ad(grid, fa, fb):
    weights = _ad_weights(grid.shape[1], sqrt=False)
    gap = (fa - fb) ** 2
    return np.mean(gap * weights, axis=1)


def _stacked_wasserstein(grid, fa, fb):
    if grid.shape[1] < 2:
        return np.zeros(grid.shape[0])
    dx = np.diff(grid, axis=1)
    return np.sum(np.abs(fa - fb)[:, :-1] * dx, axis=1)


def _stacked_dts(grid, fa, fb):
    if grid.shape[1] < 2:
        return np.zeros(grid.shape[0])
    weights = _ad_weights(grid.shape[1], sqrt=True)
    dx = np.diff(grid, axis=1)
    integrand = ((fa - fb) ** 2) * weights
    return np.sum(integrand[:, :-1] * dx, axis=1)


#: Stacked twins of :data:`repro.safeml.distances.ALL_MEASURES` — same
#: names, row-wise identical arithmetic (axis=1 reductions).
_STACKED_MEASURES = {
    "kolmogorov_smirnov": _stacked_ks,
    "kuiper": _stacked_kuiper,
    "cramer_von_mises": _stacked_cvm,
    "anderson_darling": _stacked_ad,
    "wasserstein": _stacked_wasserstein,
    "dts": _stacked_dts,
}


def stacked_safeml_reports(monitors, now: float) -> list[SafeMlReport]:
    """One :meth:`SafeMlMonitor.report` per monitor, computed stacked.

    Groups every (monitor, feature) distance task by
    ``(measure, window length, reference length)`` so same-shaped tasks
    share one sort/ECDF/measure pass. Monitors with a measure outside the
    stacked registry (custom callables) fall back to their own scalar
    ``_distance`` — same result, just not batched.
    """
    windows = []
    for monitor in monitors:
        if not monitor._window:
            raise RuntimeError("no runtime samples observed yet")
        windows.append(np.vstack(monitor._window))

    groups: dict[tuple, list] = {}
    results: dict[tuple[int, int], float] = {}
    for mi, monitor in enumerate(monitors):
        reference = monitor._reference
        window = windows[mi]
        stacked = monitor.measure in _STACKED_MEASURES
        for j in range(reference.shape[1]):
            if not stacked:
                results[(mi, j)] = float(
                    monitor._distance(window[:, j], reference[:, j])
                )
                continue
            key = (monitor.measure, window.shape[0], reference.shape[0])
            groups.setdefault(key, []).append(
                (mi, j, window[:, j], reference[:, j])
            )

    for (measure, n_window, n_reference), tasks in groups.items():
        a = np.stack([task[2] for task in tasks])
        b = np.stack([task[3] for task in tasks])
        if not (np.isfinite(a).all() and np.isfinite(b).all()):
            raise ValueError("sample contains non-finite values")
        grid = np.sort(np.concatenate([a, b], axis=1), axis=1)
        sorted_a = np.sort(a, axis=1)
        sorted_b = np.sort(b, axis=1)
        fa = np.empty_like(grid)
        fb = np.empty_like(grid)
        for r in range(len(tasks)):
            fa[r] = np.searchsorted(sorted_a[r], grid[r], side="right") / n_window
            fb[r] = np.searchsorted(sorted_b[r], grid[r], side="right") / n_reference
        values = _STACKED_MEASURES[measure](grid, fa, fb)
        for r, (mi, j, _, _) in enumerate(tasks):
            results[(mi, j)] = float(values[r])

    reports = []
    for mi, monitor in enumerate(monitors):
        distances: dict[str, float] = {}
        z_scores = []
        for j in range(monitor._reference.shape[1]):
            d = results[(mi, j)]
            distances[f"feature_{j}"] = d
            z_scores.append((d - monitor._null_mean[j]) / monitor._null_std[j])
        z_mean = float(np.mean(z_scores))
        uncertainty = float(norm.cdf(z_mean / monitor.z_scale))
        reports.append(
            SafeMlReport(
                stamp=now,
                distances=distances,
                z_score=z_mean,
                uncertainty=uncertainty,
                level=ConfidenceLevel.from_uncertainty(uncertainty),
            )
        )
    return reports


# --------------------------------------------------------------------------
# Assurance planes: one step()/decide() facade per engine
# --------------------------------------------------------------------------
class ScalarAssurancePlane:
    """The reference assurance plane: per-UAV EDDIs + mission decider.

    Thin facade over :func:`build_fleet_eddis` and
    :class:`MissionDecider` exposing the same accessor surface as
    :class:`BatchAssurancePlane`, so the differential suite (and callers)
    can drive either engine through one API. Works on scalar *and*
    vectorized worlds (adopted sensors consume the shared fleet streams
    through their ChannelRng proxies).
    """

    engine = "scalar"

    def __init__(self, world, cl_range_m: float = 120.0) -> None:
        self.world = world
        self.cl_range_m = cl_range_m
        self.eddis = build_fleet_eddis(world, cl_range_m=cl_range_m)
        self.decider = MissionDecider()
        for _, stack in self.eddis.values():
            self.decider.add_uav(stack.network)
        self._last_now = world.time

    def step(self, now: float) -> dict[str, UavGuarantee]:
        """Run one assurance cycle for every UAV; uav_id -> guarantee."""
        self._last_now = now
        return {uid: eddi.step(now) for uid, (eddi, _) in self.eddis.items()}

    def decide(self) -> MissionDecision:
        """Evaluate the mission-level Σ node over all UAVs."""
        return self.decider.decide()

    @property
    def decider_history(self) -> list[MissionDecision]:
        return self.decider.history

    @property
    def uav_ids(self) -> list[str]:
        return list(self.eddis)

    def guarantee_trace(self, uav_id: str):
        return self.eddis[uav_id][0].guarantee_trace

    def response_log(self, uav_id: str):
        return self.eddis[uav_id][0].response_log

    def current_guarantee(self, uav_id: str):
        return self.eddis[uav_id][0].current_guarantee

    def consert_offers(self, uav_id: str) -> dict[str, str | None]:
        """Currently offered guarantee name per ConSert (None = none)."""
        network = self.eddis[uav_id][1].network
        out: dict[str, str | None] = {}
        for name in compiled_conserts().fields:
            offered = getattr(network, name).evaluate()
            out[name] = offered.name if offered is not None else None
        return out

    def evidence(self, uav_id: str) -> dict[str, bool]:
        """Current value of every runtime-evidence input."""
        network = self.eddis[uav_id][1].network
        out: dict[str, bool] = {}
        for name in compiled_conserts().fields:
            for node in getattr(network, name).evidence_nodes():
                out[node.name] = bool(node.value)
        return out

    def assessment(self, uav_id: str) -> ReliabilityAssessment | None:
        return self.eddis[uav_id][1].safedrones.latest

    def safeml_report(self, uav_id: str) -> SafeMlReport | None:
        """The SafeML report as of the last step (recomputed; pure).

        Read it before observing new features — the scalar monitor keeps
        no report history, so this re-runs ``report()`` on the current
        window (bit-identical while the window is unchanged).
        """
        stack = self.eddis[uav_id][1]
        if stack.safeml is not None and stack.safeml.window_full:
            return stack.safeml.report(self._last_now)
        return None

    def set_safeml(self, uav_id: str, monitor) -> None:
        self.eddis[uav_id][1].safeml = monitor

    def safeml_monitor(self, uav_id: str):
        return self.eddis[uav_id][1].safeml

    def spoof_detector(self, uav_id: str) -> GpsSpoofingDetector:
        return self.eddis[uav_id][1].spoof_detector

    def link_monitor(self, uav_id: str) -> CommLinkMonitor:
        return self.eddis[uav_id][1].link_monitor

    def on_guarantee(self, uav_id: str, guarantee, callback) -> None:
        self.eddis[uav_id][0].on_guarantee(guarantee, callback)


class BatchAssurancePlane:
    """Structure-of-arrays assurance plane over a vectorized world.

    Requires ``World(engine="vectorized")`` — the plane consumes sensor
    noise straight from the fleet's prefetched channels (the same per-row
    streams the scalar adapter consumes through its sensors), reads fleet
    state from the shared arrays, and pushes evidence through the
    compiled ConSert programs.
    """

    engine = "vectorized"

    def __init__(self, world, cl_range_m: float = 120.0) -> None:
        fleet = world._fleet
        if fleet is None:
            raise ValueError(
                "vectorized assurance needs World(engine='vectorized')"
            )
        self.world = world
        self.fleet = fleet
        self.cl_range_m = cl_range_m
        self.compiled = compiled_conserts()
        items = list(world.uavs.items())
        self._ids = [uav_id for uav_id, _ in items]
        self._uav_list = [uav for _, uav in items]
        n = len(items)
        if n != fleet.arrays.n:
            raise RuntimeError("world UAV registry and fleet arrays disagree")
        self._n = n
        self._row = {uav_id: k for k, uav_id in enumerate(self._ids)}
        self._names = [f"{uav_id}-eddi" for uav_id in self._ids]
        self.evidence_arrays = {
            name: np.full(n, default, dtype=bool)
            for name, default in self.compiled.evidence_defaults.items()
        }
        self.safedrones = BatchSafeDrones(
            n, [uav.spec.rotor_count for uav in self._uav_list]
        )
        self._detectors = [GpsSpoofingDetector() for _ in range(n)]
        self._links = [CommLinkMonitor() for _ in range(n)]
        self._safeml: list = [None] * n
        self._safeml_reports: list = [None] * n
        self._current: list = [None] * n
        self._traces: list[list] = [[] for _ in range(n)]
        self._response_logs: list[list] = [[] for _ in range(n)]
        self._responses: list[dict] = [{} for _ in range(n)]
        self.decider_history: list[MissionDecision] = []
        self._gps = [uav.sensors.gps for uav in self._uav_list]
        self._imus = [uav.sensors.imu for uav in self._uav_list]
        self._cams = [uav.sensors.camera for uav in self._uav_list]
        # Plane-local spoof/noise caches: the adapter samples sensors at
        # plane-step time (after attackers may have mutated offsets this
        # tick), so the fleet engine's own caches cannot be reused.
        self._spoof = np.zeros((n, 3))
        self._spoof_cache: list = [None] * n
        self._spoofed = np.zeros(n, dtype=bool)
        self._noise = np.zeros(n)
        self._noise_cache: list = [None] * n
        for k, gps in enumerate(self._gps):
            offset = gps.spoof_offset_m
            self._spoof_cache[k] = offset
            self._spoof[k] = offset
            self._spoofed[k] = any(abs(o) > 1e-9 for o in offset)
            self._noise_cache[k] = gps.noise_std_m
            self._noise[k] = gps.noise_std_m
        self._imu_std = np.array(
            [imu.noise_std_mps for imu in self._imus], dtype=float
        )
        self._temp_std = np.array(
            [uav.sensors.temperature.noise_std_c for uav in self._uav_list],
            dtype=float,
        )

    # ----------------------------------------------------------------- step
    def step(self, now: float) -> dict[str, UavGuarantee]:
        """Run one fleet-wide monitor/diagnose/respond cycle."""
        fleet = self.fleet
        arrays = fleet.arrays
        n = self._n
        if arrays.n != n:
            raise RuntimeError(
                "fleet grew after the assurance plane was built; rebuild "
                "with build_assurance()"
            )
        if n == 0:
            return {}
        dt = self.world.dt
        evidence = self.evidence_arrays

        # --- gather per-UAV flags (one tight pass, change-detected) -------
        spoof_cache = self._spoof_cache
        noise_cache = self._noise_cache
        gps_list = self._gps
        imus = self._imus
        cams = self._cams
        uav_list = self._uav_list
        valid_rows: list[int] = []
        imu_rows: list[int] = []
        soc_l = [0.0] * n
        temp_true = [0.0] * n
        motors = [0] * n
        cam_ok = np.zeros(n, dtype=bool)
        for k in range(n):
            uav = uav_list[k]
            gps = gps_list[k]
            offset = gps.spoof_offset_m
            if offset is not spoof_cache[k]:
                spoof_cache[k] = offset
                self._spoof[k] = offset
                self._spoofed[k] = any(abs(o) > 1e-9 for o in offset)
            std = gps.noise_std_m
            if std != noise_cache[k]:
                noise_cache[k] = std
                self._noise[k] = std
            battery = uav.battery
            soc_l[k] = battery.soc
            temp_true[k] = battery.temp_c
            motors[k] = uav.motors_failed
            cam_ok[k] = cams[k].operational
            if not (gps.denied or not gps.healthy):
                valid_rows.append(k)
                if imus[k].healthy:
                    imu_rows.append(k)

        # --- SafeDrones -> reliability evidence ---------------------------
        zt = fleet.ch_temp.take_all()[:n, 0]
        temp_meas = np.array(temp_true, dtype=float) + self._temp_std * zt
        self.safedrones.update(
            now, np.array(soc_l, dtype=float), temp_meas, motors
        )
        evidence["reliability_high"][:] = self.safedrones.rel_high
        evidence["reliability_medium"][:] = self.safedrones.rel_medium

        # --- GPS quality + spoof cross-check ------------------------------
        quality = np.zeros(n, dtype=bool)
        n_valid = len(valid_rows)
        n_imu = len(imu_rows)
        if n_valid:
            pos = arrays.position[:n]
            if n_valid == n:
                z = fleet.ch_gps.take_all()[:n]
                u = fleet.ch_quality.take_all()[:n]
                noisy = (pos + self._spoof) + self._noise[:, None] * z
                spoofed = self._spoofed
            else:
                va = np.array(valid_rows)
                z = fleet.ch_gps.take(va)
                u = fleet.ch_quality.take(va)
                noisy = (pos[va] + self._spoof[va]) + self._noise[va, None] * z
                spoofed = self._spoofed[va]
            _, _, _, east, north, up = fleet._roundtrip(noisy)
            sats = np.where(
                spoofed,
                6 + (u[:, 0] * 3.0).astype(np.int64),
                7 + (u[:, 0] * 6.0).astype(np.int64),
            )
            hdop = np.where(
                spoofed, 1.2 + 1.0 * u[:, 1], 0.7 + 0.7 * u[:, 1]
            )
            ok = (sats >= 6) & (hdop <= 2.5)
            if n_valid == n:
                quality[:] = ok
            else:
                quality[va] = ok

            if n_imu:
                if n_imu == n:
                    zi = fleet.ch_imu.take_all()[:n]
                    imu_vel = (
                        arrays.velocity[:n] + arrays.drift[:n]
                    ) + self._imu_std[:, None] * zi
                else:
                    ia = np.array(imu_rows)
                    zi = fleet.ch_imu.take(ia)
                    imu_vel = (
                        arrays.velocity[ia] + arrays.drift[ia]
                    ) + self._imu_std[ia, None] * zi
                iv_l = imu_vel.tolist()

            no_attack = evidence["no_attack_detected"]
            detectors = self._detectors
            east_l = east.tolist()
            north_l = north.tolist()
            up_l = up.tolist()
            ii = 0
            for i, k in enumerate(valid_rows):
                if ii < n_imu and imu_rows[ii] == k:
                    imu_velocity = tuple(iv_l[ii])
                    ii += 1
                else:
                    imu_velocity = (0.0, 0.0, 0.0)
                verdict = detectors[k].update(
                    now, (east_l[i], north_l[i], up_l[i]), imu_velocity, dt
                )
                no_attack[k] = not verdict.spoofed
        evidence["gps_quality_ok"][:] = quality

        # --- vision health + SafeML confidence ----------------------------
        evidence["camera_healthy"][:] = cam_ok
        evidence["drone_detection_ok"][:] = cam_ok
        entries = [
            (k, monitor)
            for k, monitor in enumerate(self._safeml)
            if monitor is not None and monitor.window_full
        ]
        if entries:
            reports = stacked_safeml_reports(
                [monitor for _, monitor in entries], now
            )
            confidence = evidence["safeml_confidence_ok"]
            for (k, _), report in zip(entries, reports):
                self._safeml_reports[k] = report
                confidence[k] = report.level.value != "low"

        # --- communication: link quality + collaborator availability ------
        comm = evidence["comm_links_ok"]
        links = self._links
        for k in range(n):
            comm[k] = links[k].assess(now).link_ok
        neighbors = evidence["nearby_uavs_available"]
        if n <= 1:
            neighbors[:] = False
        else:
            pos = arrays.position[:n]
            de = pos[:, 0][:, None] - pos[:, 0][None, :]
            dn = pos[:, 1][:, None] - pos[:, 1][None, :]
            du = pos[:, 2][:, None] - pos[:, 2][None, :]
            dist = ((de * de + dn * dn) + du * du) ** 0.5
            near = dist <= self.cl_range_m
            np.fill_diagonal(near, False)
            neighbors[:] = near.any(axis=1)

        # --- diagnose + respond (the Eddi.step bookkeeping, batched) ------
        offers = self.compiled.evaluate(evidence, n)
        uav_offer = offers["uav"].tolist()
        uav_enum = self.compiled.uav_guarantees
        obs_on = OBS.enabled
        names = self._names
        current = self._current
        traces = self._traces
        out: dict[str, UavGuarantee] = {}
        for k in range(n):
            guarantee = uav_enum[uav_offer[k]]
            traces[k].append((now, guarantee))
            if obs_on:
                OBS.metrics.inc("eddi_cycles_total", uav=names[k])
            if guarantee is not current[k]:
                previous = current[k]
                response = EddiResponse(
                    stamp=now, guarantee=guarantee, previous=previous
                )
                self._response_logs[k].append(response)
                current[k] = guarantee
                if obs_on:
                    event(
                        "info",
                        "core.eddi",
                        "guarantee_transition",
                        sim_time=now,
                        uav=names[k],
                        previous=previous.value if previous is not None else None,
                        guarantee=guarantee.value,
                    )
                    OBS.metrics.inc(
                        "eddi_guarantee_transitions_total", uav=names[k]
                    )
                callback = self._responses[k].get(guarantee)
                if callback is not None:
                    callback(response)
            out[self._ids[k]] = guarantee
        return out

    # --------------------------------------------------------------- decide
    def decide(self) -> MissionDecision:
        """Mission-level Σ verdict (the MissionDecider logic, batched)."""
        n = self._n
        if n == 0:
            raise RuntimeError("no UAVs registered with the decider")
        offers = self.compiled.evaluate(self.evidence_arrays, n)
        uav_offer = offers["uav"].tolist()
        uav_enum = self.compiled.uav_guarantees
        guarantees = {
            self._ids[k]: uav_enum[uav_offer[k]] for k in range(n)
        }
        capable = [u for u, g in guarantees.items() if g in CAPABLE]
        takeover = [
            u for u, g in guarantees.items()
            if g is UavGuarantee.CONTINUE_MISSION_EXTRA
        ]
        dropped = [u for u, g in guarantees.items() if g not in CAPABLE]
        if not dropped:
            verdict = MissionVerdict.AS_PLANNED
        elif capable and len(takeover) >= len(dropped):
            verdict = MissionVerdict.REDISTRIBUTE
        else:
            verdict = MissionVerdict.CANNOT_COMPLETE
        decision = MissionDecision(
            verdict=verdict,
            uav_guarantees=guarantees,
            capable_uavs=capable,
            takeover_uavs=takeover,
            dropped_uavs=dropped,
        )
        self.decider_history.append(decision)
        return decision

    # ------------------------------------------------------------ accessors
    @property
    def uav_ids(self) -> list[str]:
        return list(self._ids)

    def guarantee_trace(self, uav_id: str):
        return self._traces[self._row[uav_id]]

    def response_log(self, uav_id: str):
        return self._response_logs[self._row[uav_id]]

    def current_guarantee(self, uav_id: str):
        return self._current[self._row[uav_id]]

    def consert_offers(self, uav_id: str) -> dict[str, str | None]:
        """Currently offered guarantee name per ConSert (None = none)."""
        row = self._row[uav_id]
        offers = self.compiled.evaluate(self.evidence_arrays, self._n)
        out: dict[str, str | None] = {}
        for name in self.compiled.fields:
            gi = int(offers[name][row])
            out[name] = self.compiled.guarantee_names[name][gi] if gi >= 0 else None
        return out

    def evidence(self, uav_id: str) -> dict[str, bool]:
        """Current value of every runtime-evidence input."""
        row = self._row[uav_id]
        return {
            name: bool(values[row])
            for name, values in self.evidence_arrays.items()
        }

    def assessment(self, uav_id: str) -> ReliabilityAssessment | None:
        return self.safedrones.assessment(self._row[uav_id])

    def safeml_report(self, uav_id: str) -> SafeMlReport | None:
        return self._safeml_reports[self._row[uav_id]]

    def set_safeml(self, uav_id: str, monitor) -> None:
        row = self._row[uav_id]
        self._safeml[row] = monitor
        self._safeml_reports[row] = None

    def safeml_monitor(self, uav_id: str):
        return self._safeml[self._row[uav_id]]

    def spoof_detector(self, uav_id: str) -> GpsSpoofingDetector:
        return self._detectors[self._row[uav_id]]

    def link_monitor(self, uav_id: str) -> CommLinkMonitor:
        return self._links[self._row[uav_id]]

    def on_guarantee(self, uav_id: str, guarantee, callback) -> None:
        self._responses[self._row[uav_id]][guarantee] = callback


def build_assurance(world, cl_range_m: float = 120.0, engine: str | None = None):
    """Build the assurance plane for ``world`` under the chosen engine.

    ``engine=None`` follows ``world.engine`` — the same switch scenarios
    and CLIs already thread. The scalar plane runs on either world
    engine; the batched plane requires a vectorized world (it consumes
    the fleet's shared noise channels directly).
    """
    if engine is None:
        engine = world.engine
    if engine == "scalar":
        return ScalarAssurancePlane(world, cl_range_m=cl_range_m)
    if engine == "vectorized":
        return BatchAssurancePlane(world, cl_range_m=cl_range_m)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
