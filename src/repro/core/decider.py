"""Mission-level decider: the Σ node over all UAV ConSerts (Fig. 1).

"At the mission level, a decider is used to propose the outputs of all
UAVs and determine whether the mission can be fulfilled or if a fallback
like an emergency landing needs to be initiated" — with three mission
guarantees: *mission to be completed as planned*, *task redistribution
needed* (AND redistribute among remaining capable UAVs), and *mission
cannot be fully completed*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.uav_network import UavConSertNetwork, UavGuarantee

CAPABLE = {
    UavGuarantee.CONTINUE_MISSION_EXTRA,
    UavGuarantee.CONTINUE_MISSION,
}
"""UAV guarantees that count as mission-capable."""


class MissionVerdict(enum.Enum):
    """Mission ConSert guarantee vocabulary."""

    AS_PLANNED = "mission_completed_as_planned"
    REDISTRIBUTE = "task_redistribution_needed"
    CANNOT_COMPLETE = "mission_cannot_be_fully_completed"


@dataclass(frozen=True)
class MissionDecision:
    """One decider output."""

    verdict: MissionVerdict
    uav_guarantees: dict[str, UavGuarantee]
    capable_uavs: list[str]
    takeover_uavs: list[str]
    dropped_uavs: list[str]


@dataclass
class MissionDecider:
    """Combines every UAV's top-level guarantee into a mission verdict.

    If all UAVs can continue: mission as planned. If some UAVs dropped out
    but the remaining fleet includes spare capacity (UAVs offering the
    "can take over additional tasks" guarantee) for every dropped UAV's
    workload: redistribute. Otherwise the mission cannot be fully
    completed with the current fleet.
    """

    networks: dict[str, UavConSertNetwork] = field(default_factory=dict)
    history: list[MissionDecision] = field(default_factory=list)

    def add_uav(self, network: UavConSertNetwork) -> None:
        """Register one UAV's ConSert network."""
        self.networks[network.uav_id] = network

    def decide(self) -> MissionDecision:
        """Evaluate all UAV networks and produce the mission verdict."""
        if not self.networks:
            raise RuntimeError("no UAVs registered with the decider")
        guarantees = {
            uav_id: network.evaluate() for uav_id, network in self.networks.items()
        }
        capable = [u for u, g in guarantees.items() if g in CAPABLE]
        takeover = [
            u for u, g in guarantees.items() if g is UavGuarantee.CONTINUE_MISSION_EXTRA
        ]
        dropped = [u for u, g in guarantees.items() if g not in CAPABLE]

        if not dropped:
            verdict = MissionVerdict.AS_PLANNED
        elif capable and len(takeover) >= len(dropped):
            verdict = MissionVerdict.REDISTRIBUTE
        else:
            verdict = MissionVerdict.CANNOT_COMPLETE

        decision = MissionDecision(
            verdict=verdict,
            uav_guarantees=guarantees,
            capable_uavs=capable,
            takeover_uavs=takeover,
            dropped_uavs=dropped,
        )
        self.history.append(decision)
        return decision

    def redistribution_plan(self) -> dict[str, str]:
        """Map each dropped UAV to a takeover UAV (after a REDISTRIBUTE).

        Simple round-robin assignment; raises if the last decision did not
        call for redistribution.
        """
        if not self.history:
            raise RuntimeError("decide() has not run yet")
        decision = self.history[-1]
        if decision.verdict is not MissionVerdict.REDISTRIBUTE:
            raise RuntimeError("last verdict did not call for redistribution")
        plan: dict[str, str] = {}
        takeover = decision.takeover_uavs
        for i, dropped in enumerate(decision.dropped_uavs):
            plan[dropped] = takeover[i % len(takeover)]
        return plan
