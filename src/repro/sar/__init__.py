"""Search-and-rescue algorithms and mission orchestration (paper Sec. IV).

Implements the SAR workload the paper's platform runs: boustrophedon area
coverage with per-UAV partitioning (the red / light red / green scan lines
of Fig. 4), an altitude-dependent person-detection model whose uncertainty
behaviour drives the Sec. V-B accuracy experiment, and the mission
orchestrator with availability / accuracy / completion-time metrics.
"""

from repro.sar.coverage import boustrophedon_path, partition_area, swath_width_m
from repro.sar.detection import DetectionModel, DetectionOutcome
from repro.sar.mission import SarMission, MissionMetrics
from repro.sar.redistribution import RedistributionAssignment, TaskRedistributor
from repro.sar.patterns import expanding_square, sector_search
from repro.sar.thermal import DualModalityDetector, LightCondition, fused_accuracy

__all__ = [
    "boustrophedon_path",
    "partition_area",
    "swath_width_m",
    "DetectionModel",
    "DetectionOutcome",
    "SarMission",
    "MissionMetrics",
    "RedistributionAssignment",
    "TaskRedistributor",
    "expanding_square",
    "sector_search",
    "DualModalityDetector",
    "LightCondition",
    "fused_accuracy",
]
