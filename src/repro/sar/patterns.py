"""Standard SAR search patterns beyond the boustrophedon sweep.

Search-and-rescue doctrine (IAMSAR-style) prescribes different patterns
for different prior knowledge about the missing person's location:

* **Expanding square** — datum known with good confidence: spiral
  outward from the last known position, covering the highest-probability
  area first.
* **Sector search** — datum known, small search radius: repeated passes
  through the datum along rotating spokes, maximising coverage density at
  the centre.
* **Parallel track (boustrophedon)** — datum weak, large area: the
  uniform sweep implemented in :mod:`repro.sar.coverage`.

All generators emit ENU waypoints compatible with
:class:`repro.uav.dynamics.WaypointPlan`.
"""

from __future__ import annotations

import math

from repro.sar.coverage import swath_width_m


def expanding_square(
    datum: tuple[float, float],
    altitude_m: float,
    max_radius_m: float,
    half_fov_deg: float = 35.0,
    overlap: float = 0.15,
) -> list[tuple[float, float, float]]:
    """Expanding-square (square spiral) pattern around a datum.

    Leg lengths grow by one track spacing every two legs, which tiles the
    plane with the camera swath; the pattern stops once the leg length
    would exceed ``2 * max_radius_m``.
    """
    if max_radius_m <= 0.0:
        raise ValueError("max_radius_m must be positive")
    spacing = swath_width_m(altitude_m, half_fov_deg, overlap)
    east0, north0 = datum
    east, north = east0, north0
    waypoints = [(east, north, altitude_m)]
    # Headings cycle N, E, S, W; leg length grows every second leg.
    directions = [(0.0, 1.0), (1.0, 0.0), (0.0, -1.0), (-1.0, 0.0)]
    leg = spacing
    i = 0
    while leg <= 2.0 * max_radius_m:
        de, dn = directions[i % 4]
        cand_east = east + de * leg
        cand_north = north + dn * leg
        # Containment: stop before any vertex leaves the declared search
        # radius — the search area assignment is a hard boundary.
        if math.hypot(cand_east - east0, cand_north - north0) > max_radius_m:
            break
        east, north = cand_east, cand_north
        waypoints.append((east, north, altitude_m))
        if i % 2 == 1:
            leg += spacing
        i += 1
    return waypoints


def sector_search(
    datum: tuple[float, float],
    altitude_m: float,
    radius_m: float,
    n_sectors: int = 3,
) -> list[tuple[float, float, float]]:
    """Sector-search pattern: spokes through the datum, rotating turns.

    Each sector flies out along a spoke, across an arc chord, and back
    through the datum — the pattern's repeated datum passes give maximum
    coverage density where the person most likely is.
    """
    if radius_m <= 0.0:
        raise ValueError("radius_m must be positive")
    if n_sectors < 1:
        raise ValueError("need at least one sector")
    east0, north0 = datum
    waypoints = [(east0, north0, altitude_m)]
    # The classic pattern turns 120 degrees per sector for 3 sectors;
    # generalise to 360/n + 60 so chords interleave.
    turn_deg = 360.0 / n_sectors + 60.0
    heading = 0.0
    for _ in range(n_sectors * 2):
        theta = math.radians(heading)
        out = (
            east0 + radius_m * math.sin(theta),
            north0 + radius_m * math.cos(theta),
            altitude_m,
        )
        waypoints.append(out)
        # The chord crosses half a sector (180/n degrees) so its far end
        # lands back on the search-radius circle; the historical constant
        # 60.0 is the n_sectors == 3 special case.
        chord_heading = heading + 180.0 / n_sectors
        phi = math.radians(chord_heading)
        chord = (
            east0 + radius_m * math.sin(phi),
            north0 + radius_m * math.cos(phi),
            altitude_m,
        )
        waypoints.append(chord)
        waypoints.append((east0, north0, altitude_m))
        heading += turn_deg
    return waypoints


def sector_partition(
    area_m: float,
    k_sectors: int,
) -> list[tuple[float, float]]:
    """Partition a square ``[0, area] × [0, area]`` into K vertical strips.

    Returns each sector's ``(east_min, east_max)``. Strips (rather than a
    2D tiling) keep leader patrol legs long and turns few, and make the
    sector → leader mapping trivially deterministic: sector ``k`` belongs
    to the ``k``-th leader in sorted order.
    """
    if area_m <= 0.0:
        raise ValueError("area_m must be positive")
    if k_sectors < 1:
        raise ValueError("need at least one sector")
    width = area_m / k_sectors
    return [(k * width, (k + 1) * width) for k in range(k_sectors)]


def sector_sweep(
    area_m: float,
    k_sectors: int,
    sector: int,
    altitude_m: float,
    spacing_m: float,
) -> list[tuple[float, float, float]]:
    """Boustrophedon patrol sweep of one vertical strip of the search area.

    The sweep serpentines north–south across the strip with track spacing
    ``spacing_m`` (for detection work, ~2× the detect radius tiles the
    strip). Leaders loop the returned waypoint list forever, so the last
    leg is laid out to hand over near the first waypoint's side of the
    strip, keeping the loop closed without a long dead transit.
    """
    if spacing_m <= 0.0:
        raise ValueError("spacing_m must be positive")
    east_min, east_max = sector_partition(area_m, k_sectors)[sector]
    # Centre the tracks inside the strip: n tracks at >= spacing apart.
    strip = east_max - east_min
    n_tracks = max(1, int(strip // spacing_m))
    pitch = strip / n_tracks
    waypoints: list[tuple[float, float, float]] = []
    for i in range(n_tracks):
        east = east_min + (i + 0.5) * pitch
        if i % 2 == 0:
            waypoints.append((east, 0.0, altitude_m))
            waypoints.append((east, area_m, altitude_m))
        else:
            waypoints.append((east, area_m, altitude_m))
            waypoints.append((east, 0.0, altitude_m))
    return waypoints


def pattern_length_m(waypoints: list[tuple[float, float, float]]) -> float:
    """Total path length of a pattern."""
    return sum(math.dist(a, b) for a, b in zip(waypoints, waypoints[1:]))


def coverage_radius_profile(
    waypoints: list[tuple[float, float, float]],
    datum: tuple[float, float],
    radii_m: list[float],
    altitude_m: float,
) -> dict[float, float]:
    """Fraction of each datum-centred ring that the pattern's swath covers.

    Samples each ring at 1-degree resolution and checks whether any path
    vertex-to-vertex segment passes within half a swath width — a cheap
    but faithful coverage proxy for comparing patterns.
    """
    swath_half = swath_width_m(altitude_m) / 2.0
    segments = list(zip(waypoints, waypoints[1:]))

    def min_distance(point: tuple[float, float]) -> float:
        best = math.inf
        px, py = point
        for (x1, y1, _), (x2, y2, _) in segments:
            dx, dy = x2 - x1, y2 - y1
            norm = dx * dx + dy * dy
            if norm == 0.0:
                d = math.hypot(px - x1, py - y1)
            else:
                t = max(0.0, min(1.0, ((px - x1) * dx + (py - y1) * dy) / norm))
                d = math.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
            best = min(best, d)
        return best

    out = {}
    for radius in radii_m:
        covered = 0
        for deg in range(0, 360, 4):
            theta = math.radians(deg)
            point = (
                datum[0] + radius * math.sin(theta),
                datum[1] + radius * math.cos(theta),
            )
            if min_distance(point) <= swath_half:
                covered += 1
        out[radius] = covered / 90.0
    return out
