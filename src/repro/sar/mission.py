"""SAR mission orchestration and metrics.

Wires the coverage planner, the detection model, and the UAV fleet into a
steppable mission: each UAV scans its strip, detection attempts fire when
ground-truth persons enter the camera swath, and metrics (coverage,
detection accuracy, completion time, per-UAV productive time) accumulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


from repro.plan.astar import route_waypoints
from repro.sar.coverage import CameraConfig, boustrophedon_path, partition_area
from repro.sar.detection import DetectionModel, DetectionOutcome
from repro.uav.uav import FlightMode, Uav
from repro.uav.world import World


@dataclass
class MissionMetrics:
    """Accumulated mission statistics."""

    persons_total: int = 0
    persons_found: int = 0
    attempts: list[DetectionOutcome] = field(default_factory=list)
    cells_total: int = 0
    cells_visited: set[tuple[int, int]] = field(default_factory=set)
    started_at: float = 0.0
    completed_at: float | None = None
    productive_time_s: dict[str, float] = field(default_factory=dict)

    @property
    def detection_accuracy(self) -> float:
        """Fraction of in-swath detection attempts that succeeded."""
        if not self.attempts:
            return float("nan")
        return sum(1 for a in self.attempts if a.detected) / len(self.attempts)

    @property
    def find_rate(self) -> float:
        """Fraction of ground-truth persons found."""
        if self.persons_total == 0:
            return float("nan")
        return self.persons_found / self.persons_total

    @property
    def coverage_fraction(self) -> float:
        """Fraction of area grid cells overflown inside the swath."""
        if self.cells_total == 0:
            return 0.0
        return len(self.cells_visited) / self.cells_total

    @property
    def duration_s(self) -> float | None:
        """Mission wall time, if completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class SarMission:
    """A multi-UAV coverage-search mission over a rectangular area."""

    world: World
    altitude_m: float = 20.0
    cell_size_m: float = 10.0
    detector: DetectionModel = None  # type: ignore[assignment]
    # Camera geometry used for BOTH track spacing and detection gating;
    # defaults to the world's scenario-loaded camera, then to stock optics.
    camera: CameraConfig = None  # type: ignore[assignment]
    metrics: MissionMetrics = field(default_factory=MissionMetrics)
    rescan_queue: list[tuple[float, float]] = field(default_factory=list)
    _detect_cooldown: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = DetectionModel(rng=self.world.rng)
        if self.camera is None:
            world_camera = getattr(self.world, "camera", None)
            self.camera = world_camera if world_camera is not None else CameraConfig()
        east, north = self.world.area_size_m
        self.metrics.cells_total = math.ceil(east / self.cell_size_m) * math.ceil(
            north / self.cell_size_m
        )
        self.metrics.persons_total = len(self.world.persons)

    # ----------------------------------------------------------------- plan
    def assign_paths(self, altitude_m: float | None = None) -> dict[str, list]:
        """Partition the area and start every UAV on its strip.

        When the world carries an obstacle field (an ``"obstacles"``
        scenario block), each strip's lawnmower track is routed around the
        obstacles leg by leg before launch.
        """
        if altitude_m is not None:
            self.altitude_m = altitude_m
        uav_ids = sorted(self.world.uavs)
        strips = partition_area(self.world.area_size_m, len(uav_ids))
        obstacles = getattr(self.world, "obstacles", None)
        plans: dict[str, list] = {}
        for uav_id, bounds in zip(uav_ids, strips):
            uav = self.world.uavs[uav_id]
            path = boustrophedon_path(
                bounds, self.altitude_m, self.camera.half_fov_deg,
                self.camera.overlap,
            )
            if obstacles is not None:
                path = route_waypoints(obstacles, uav.dynamics.position, path)
            uav.start_mission(path)
            plans[uav_id] = path
        self.metrics.started_at = self.world.time
        self.metrics.persons_total = len(self.world.persons)
        return plans

    def set_fleet_altitude(self, altitude_m: float) -> None:
        """Command every mission UAV to re-fly remaining track at a new altitude.

        Remaining waypoints keep their ground track; only the altitude
        changes — the paper's 'descend to increase SAR accuracy' response.
        In an obstacle world the re-flown track is re-routed through the
        planner, since a track that was clear at the old altitude may clip
        a rooftop at the new one.
        """
        self.altitude_m = altitude_m
        obstacles = getattr(self.world, "obstacles", None)
        for uav in self.world.uavs.values():
            if uav.mode is FlightMode.MISSION:
                remaining = uav.plan.waypoints[uav.plan.index :]
                track = [(e, n, altitude_m) for e, n, _ in remaining]
                if obstacles is not None and track:
                    track = route_waypoints(
                        obstacles, uav.dynamics.position, track
                    )
                uav.plan.replace(track)

    # ----------------------------------------------------------------- step
    def step(self) -> None:
        """Advance the world one tick and run scanning for every UAV."""
        self.world.step()
        now = self.world.time
        for uav in self.world.uavs.values():
            if uav.mode is not FlightMode.MISSION:
                continue
            self.metrics.productive_time_s[uav.spec.uav_id] = (
                self.metrics.productive_time_s.get(uav.spec.uav_id, 0.0)
                + self.world.dt
            )
            self._scan(uav, now)
        if self.mission_complete and self.metrics.completed_at is None:
            self.metrics.completed_at = now

    def _scan(self, uav: Uav, now: float) -> None:
        east, north, alt = uav.dynamics.position
        if alt < 1.0:
            return
        swath = self.camera.swath_width_m(max(alt, 1.0)) / 2.0
        # Every cell whose centre lies inside the camera swath counts as
        # covered, bounded to the search area.
        east_max, north_max = self.world.area_size_m
        reach = int(swath // self.cell_size_m) + 1
        center_col = int(east // self.cell_size_m)
        center_row = int(north // self.cell_size_m)
        for col in range(center_col - reach, center_col + reach + 1):
            for row in range(center_row - reach, center_row + reach + 1):
                cell_east = (col + 0.5) * self.cell_size_m
                cell_north = (row + 0.5) * self.cell_size_m
                if not (0.0 <= cell_east <= east_max and 0.0 <= cell_north <= north_max):
                    continue
                if math.hypot(cell_east - east, cell_north - north) <= swath:
                    self.metrics.cells_visited.add((col, row))
        for person in self.world.persons:
            dx = person.position[0] - east
            dy = person.position[1] - north
            if math.hypot(dx, dy) > swath:
                continue
            key = (uav.spec.uav_id, person.person_id)
            if now - self._detect_cooldown.get(key, -1e9) < 2.0:
                continue
            self._detect_cooldown[key] = now
            outcome = self.detector.attempt(person.person_id, alt, now)
            self.metrics.attempts.append(outcome)
            if outcome.detected and not person.detected:
                person.detected = True
                person.detected_by = uav.spec.uav_id
                person.detected_at = now
                self.metrics.persons_found += 1
            elif not outcome.detected:
                # Missed while in swath: candidate for SINADRA re-scan.
                self.rescan_queue.append(person.position)

    @property
    def mission_complete(self) -> bool:
        """All UAVs finished their plans (no longer in MISSION mode)."""
        return all(
            uav.mode is not FlightMode.MISSION for uav in self.world.uavs.values()
        )

    def run(self, max_time_s: float = 3600.0) -> MissionMetrics:
        """Step until the mission completes or the time budget expires."""
        while not self.mission_complete and self.world.time < max_time_s:
            self.step()
        return self.metrics
