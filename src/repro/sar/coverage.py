"""Area coverage planning for multi-UAV SAR.

The paper's three UAVs scan a designated area collaboratively (Fig. 4).
We partition the rectangle into per-UAV strips and plan a boustrophedon
(lawnmower) path in each strip whose track spacing follows the camera
swath at the flight altitude — "coordinated strategies to cover large
areas efficiently".
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CameraConfig:
    """Downward-camera geometry shared by planning and detection gating.

    Coverage plans space their tracks by the swath this camera yields and
    the mission's detection gate uses the *same* swath, so the two can
    never disagree about what "inside the camera footprint" means.
    Loaded from the optional ``"camera"`` scenario block; the defaults
    match the historical module-level constants.
    """

    half_fov_deg: float = 35.0
    overlap: float = 0.15

    def swath_width_m(self, altitude_m: float) -> float:
        """Effective ground swath at ``altitude_m`` for this camera."""
        return swath_width_m(altitude_m, self.half_fov_deg, self.overlap)


def swath_width_m(altitude_m: float, half_fov_deg: float = 35.0, overlap: float = 0.15) -> float:
    """Effective ground swath of the downward camera at ``altitude_m``.

    Twice the half-FOV ground projection, shrunk by the required lateral
    ``overlap`` between adjacent tracks.
    """
    if altitude_m <= 0.0:
        raise ValueError("altitude must be positive")
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    full = 2.0 * altitude_m * math.tan(math.radians(half_fov_deg))
    return full * (1.0 - overlap)


def partition_area(
    area_size_m: tuple[float, float], n_uavs: int
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Split the rectangle into ``n_uavs`` equal vertical strips.

    Returns per-UAV ``((east_min, east_max), (north_min, north_max))``.
    """
    if n_uavs < 1:
        raise ValueError("need at least one UAV")
    east_extent, north_extent = area_size_m
    if east_extent <= 0.0 or north_extent <= 0.0:
        raise ValueError("area dimensions must be positive")
    strip = east_extent / n_uavs
    return [
        ((i * strip, (i + 1) * strip), (0.0, north_extent)) for i in range(n_uavs)
    ]


def boustrophedon_path(
    bounds: tuple[tuple[float, float], tuple[float, float]],
    altitude_m: float,
    half_fov_deg: float = 35.0,
    overlap: float = 0.15,
) -> list[tuple[float, float, float]]:
    """Lawnmower waypoints covering ``bounds`` at ``altitude_m``.

    Tracks run north-south, spaced by the camera swath; alternate tracks
    reverse direction. Track positions are centred so coverage reaches
    both east/west edges.
    """
    (east_min, east_max), (north_min, north_max) = bounds
    if east_max <= east_min or north_max <= north_min:
        raise ValueError("degenerate bounds")
    spacing = swath_width_m(altitude_m, half_fov_deg, overlap)
    width = east_max - east_min
    n_tracks = max(1, math.ceil(width / spacing))
    # Centre the tracks within the strip.
    actual_spacing = width / n_tracks
    waypoints: list[tuple[float, float, float]] = []
    for i in range(n_tracks):
        east = east_min + (i + 0.5) * actual_spacing
        if i % 2 == 0:
            waypoints.append((east, north_min, altitude_m))
            waypoints.append((east, north_max, altitude_m))
        else:
            waypoints.append((east, north_max, altitude_m))
            waypoints.append((east, north_min, altitude_m))
    return waypoints


def path_length_m(waypoints: list[tuple[float, float, float]]) -> float:
    """Total length of a waypoint polyline."""
    return sum(
        math.dist(a, b) for a, b in zip(waypoints, waypoints[1:])
    )


def estimated_coverage_time_s(
    waypoints: list[tuple[float, float, float]], speed_mps: float
) -> float:
    """Time to fly the path at constant ``speed_mps``."""
    if speed_mps <= 0.0:
        raise ValueError("speed must be positive")
    return path_length_m(waypoints) / speed_mps
