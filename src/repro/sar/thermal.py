"""Dual-modality person detection: RGB + thermal fusion.

The paper's UAVs carry "high-resolution cameras, thermal imaging, and
other advanced sensor technology ... ideal for ... conditions with low
visibility" (Sec. I). This module models the two modalities' opposite
strengths — RGB degrades at night and in poor visibility, thermal is
light-independent but degrades with ambient heat (background clutter
approaches body temperature) — and fuses them, reproducing why the
dual-sensor aircraft keeps working through the day/night cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sar.detection import detection_accuracy


class LightCondition(enum.Enum):
    """Illumination regimes for the RGB channel."""

    DAY = "day"
    DUSK = "dusk"
    NIGHT = "night"


RGB_LIGHT_FACTOR = {
    LightCondition.DAY: 1.0,
    LightCondition.DUSK: 0.75,
    LightCondition.NIGHT: 0.15,
}


def rgb_accuracy(
    altitude_m: float, light: LightCondition, visibility_ok: bool = True
) -> float:
    """RGB detection accuracy under the given conditions."""
    base = detection_accuracy(altitude_m)
    factor = RGB_LIGHT_FACTOR[light]
    if not visibility_ok:
        factor *= 0.6
    # Scale the *detection power* (above-chance part), not the raw value.
    return 0.5 + (base - 0.5) * factor


def thermal_accuracy(altitude_m: float, ambient_c: float) -> float:
    """Thermal detection accuracy: contrast = body vs ambient temperature.

    Peak performance in cool conditions; approaches chance as ambient
    nears body temperature (hot desert noon) where the person vanishes
    into the background.
    """
    base = detection_accuracy(altitude_m)
    contrast = max(0.0, 36.0 - ambient_c) / 20.0  # ~1.0 at 16 C, 0 at 36 C
    factor = min(1.0, 0.25 + 0.75 * contrast)
    return 0.5 + (base - 0.5) * factor


def fused_accuracy(
    altitude_m: float,
    light: LightCondition,
    ambient_c: float,
    visibility_ok: bool = True,
) -> float:
    """Late-fusion accuracy of the dual-modality detector.

    Independent-channel OR fusion on the miss probabilities of the
    above-chance detection power — the standard noisy-OR late fusion.
    """
    rgb_power = 2.0 * (rgb_accuracy(altitude_m, light, visibility_ok) - 0.5)
    thermal_power = 2.0 * (thermal_accuracy(altitude_m, ambient_c) - 0.5)
    fused_power = 1.0 - (1.0 - rgb_power) * (1.0 - thermal_power)
    return 0.5 + 0.5 * fused_power


@dataclass
class DualModalityDetector:
    """Stochastic dual-modality detector for mission simulations."""

    rng: np.random.Generator
    light: LightCondition = LightCondition.DAY
    ambient_c: float = 25.0
    visibility_ok: bool = True
    thermal_available: bool = True

    def accuracy(self, altitude_m: float) -> float:
        """Current effective detection accuracy."""
        if self.thermal_available:
            return fused_accuracy(
                altitude_m, self.light, self.ambient_c, self.visibility_ok
            )
        return rgb_accuracy(altitude_m, self.light, self.visibility_ok)

    def attempt(self, altitude_m: float) -> bool:
        """One detection attempt on a person inside the swath."""
        return bool(self.rng.random() < self.accuracy(altitude_m))

    def modality_report(self, altitude_m: float) -> dict[str, float]:
        """Per-channel and fused accuracies (for the GUI sensor panel)."""
        return {
            "rgb": rgb_accuracy(altitude_m, self.light, self.visibility_ok),
            "thermal": (
                thermal_accuracy(altitude_m, self.ambient_c)
                if self.thermal_available
                else float("nan")
            ),
            "fused": self.accuracy(altitude_m),
        }


@dataclass
class ModalityMissionDetector:
    """Adapter: run a SAR mission with the dual-modality detector.

    Exposes the interface :class:`repro.sar.mission.SarMission` expects
    (``attempt`` returning a DetectionOutcome, ``false_positive``) while
    the detection probability comes from the modality fusion model — the
    drop-in that turns any coverage mission into a night-ops or hot-noon
    mission.
    """

    detector: DualModalityDetector

    def attempt(self, person_id: str, altitude_m: float, stamp: float):
        from repro.sar.detection import DetectionOutcome

        return DetectionOutcome(
            person_id=person_id,
            detected=self.detector.attempt(altitude_m),
            altitude_m=altitude_m,
            stamp=stamp,
        )

    def false_positive(self, altitude_m: float) -> bool:
        """Spurious detections: slightly elevated for thermal clutter."""
        rate = 0.002 if self.detector.thermal_available else 0.001
        return bool(self.detector.rng.random() < rate)
