"""Altitude-dependent person detection model.

Substitute for the tiny YOLOv4 person detector: what the Sec. V-B
experiment needs is (a) detection accuracy that degrades with altitude —
people shrink to few-pixel blobs — and (b) camera-frame *features* whose
distribution shifts with altitude relative to the training distribution,
which is exactly the signal SafeML and DeepKnowledge monitor.

The feature model emits one 4-vector per frame: apparent person scale,
scene texture energy, contrast, and motion blur. Training references are
captured at the nominal survey altitude; flying higher shifts scale and
contrast downward and blur upward, which the statistical monitors convert
into the paper's uncertainty levels (>90% high, ~75% after descending).

Accuracy calibration: 99.8% at the low operating altitude (paper's
headline), degrading smoothly with altitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

TRAINING_ALTITUDE_M = 20.0
"""Altitude band at which the detector's training data was captured."""


def detection_accuracy(altitude_m: float) -> float:
    """Probability a person inside the swath is correctly detected.

    99.8% at the 20 m training altitude, falling quadratically with
    altitude (apparent-area scaling) toward ~97% at 60 m.
    """
    if altitude_m <= 0.0:
        raise ValueError("altitude must be positive")
    excess = max(0.0, altitude_m - TRAINING_ALTITUDE_M)
    return max(0.5, 0.998 - 2.0e-5 * excess**2)


def feature_means(altitude_m: float) -> np.ndarray:
    """Mean camera-frame feature vector as a function of altitude.

    Features: [apparent_scale, texture_energy, contrast, motion_blur].
    """
    scale = TRAINING_ALTITUDE_M / altitude_m
    return np.array(
        [
            scale,  # apparent person scale shrinks with altitude
            0.8 + 0.1 * scale,  # ground texture energy
            0.7 * scale + 0.2,  # contrast against background
            0.1 / scale,  # blur grows as objects shrink
        ]
    )


FEATURE_STD = np.array([0.08, 0.06, 0.07, 0.03])
"""Per-frame feature noise (same at all altitudes)."""


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of one detection attempt against a ground-truth person."""

    person_id: str
    detected: bool
    altitude_m: float
    stamp: float


@dataclass
class DetectionModel:
    """Stochastic detector + feature generator bound to one RNG."""

    rng: np.random.Generator

    def sample_features(self, altitude_m: float, n_frames: int = 1) -> np.ndarray:
        """Camera feature vectors for ``n_frames`` at ``altitude_m``."""
        means = feature_means(altitude_m)
        return self.rng.normal(
            means, FEATURE_STD, size=(n_frames, means.size)
        )

    def training_reference(self, n_frames: int = 400) -> np.ndarray:
        """Feature sample representative of the training set."""
        return self.sample_features(TRAINING_ALTITUDE_M, n_frames)

    def attempt(
        self, person_id: str, altitude_m: float, stamp: float
    ) -> DetectionOutcome:
        """One detection attempt on a person inside the camera swath."""
        p = detection_accuracy(altitude_m)
        return DetectionOutcome(
            person_id=person_id,
            detected=bool(self.rng.random() < p),
            altitude_m=altitude_m,
            stamp=stamp,
        )

    def false_positive(self, altitude_m: float) -> bool:
        """Whether an empty frame yields a spurious detection.

        False positives grow mildly with altitude (texture confusion).
        """
        rate = 0.001 + 2e-5 * max(0.0, altitude_m - TRAINING_ALTITUDE_M)
        return bool(self.rng.random() < rate)
