"""Task redistribution among remaining capable UAVs.

Implements the mission-level response of the paper's Fig. 1: when the
decider rules "task redistribution needed & redistribute task among
remaining capable UAVs", the dropped UAV's unfinished coverage must be
handed to peers with spare capacity. The planner splits the remaining
waypoint chain into contiguous segments, assigns each segment to the
takeover UAV that can reach it cheapest (greedy marginal-cost insertion),
and appends the segment to that UAV's plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.uav.uav import FlightMode, Uav


@dataclass(frozen=True)
class RedistributionAssignment:
    """One takeover: which UAV absorbs which waypoint segment."""

    from_uav: str
    to_uav: str
    waypoints: list[tuple[float, float, float]]
    added_path_length_m: float


@dataclass
class TaskRedistributor:
    """Splits and reassigns a dropped UAV's remaining coverage.

    ``max_segments`` bounds fragmentation: the remaining chain is cut into
    at most this many contiguous segments (never more than the number of
    takeover UAVs).
    """

    max_segments: int = 2

    @staticmethod
    def remaining_waypoints(uav: Uav) -> list[tuple[float, float, float]]:
        """The dropped UAV's unfinished portion of its plan."""
        return list(uav.plan.waypoints[uav.plan.index :])

    @staticmethod
    def _chain_length(
        start: tuple[float, float, float], chain: list[tuple[float, float, float]]
    ) -> float:
        length = 0.0
        prev = start
        for waypoint in chain:
            length += math.dist(prev, waypoint)
            prev = waypoint
        return length

    def _segments(
        self, waypoints: list[tuple[float, float, float]], n: int
    ) -> list[list[tuple[float, float, float]]]:
        """Cut the chain into up to ``n`` contiguous, non-empty segments."""
        n = max(1, min(n, self.max_segments, len(waypoints)))
        size = math.ceil(len(waypoints) / n)
        return [waypoints[i : i + size] for i in range(0, len(waypoints), size)]

    def plan(
        self, dropped: Uav, takeover: list[Uav]
    ) -> list[RedistributionAssignment]:
        """Compute assignments without mutating any UAV."""
        if not takeover:
            raise ValueError("no takeover UAVs available")
        remaining = self.remaining_waypoints(dropped)
        if not remaining:
            return []
        assignments = []
        loads = {uav.spec.uav_id: 0.0 for uav in takeover}
        for segment in self._segments(remaining, len(takeover)):
            best_uav = None
            best_cost = math.inf
            for uav in takeover:
                # Cost: fly from the end of the UAV's current plan (or its
                # position) to the segment, then cover it — plus the load
                # already assigned this round, to balance the fleet.
                if uav.plan.waypoints and not uav.plan.complete:
                    anchor = uav.plan.waypoints[-1]
                else:
                    anchor = uav.dynamics.position
                cost = (
                    self._chain_length(anchor, segment)
                    + loads[uav.spec.uav_id]
                )
                if cost < best_cost:
                    best_cost = cost
                    best_uav = uav
            loads[best_uav.spec.uav_id] += best_cost
            assignments.append(
                RedistributionAssignment(
                    from_uav=dropped.spec.uav_id,
                    to_uav=best_uav.spec.uav_id,
                    waypoints=segment,
                    added_path_length_m=best_cost,
                )
            )
        return assignments

    def execute(
        self, dropped: Uav, takeover: list[Uav]
    ) -> list[RedistributionAssignment]:
        """Plan and apply: append segments to the takeover UAVs' plans.

        Takeover UAVs that had already finished (or were idle) are put
        back into MISSION mode with the new segment as their plan.
        """
        assignments = self.plan(dropped, takeover)
        by_id = {uav.spec.uav_id: uav for uav in takeover}
        for assignment in assignments:
            uav = by_id[assignment.to_uav]
            if uav.mode is FlightMode.MISSION and not uav.plan.complete:
                uav.plan.waypoints.extend(assignment.waypoints)
            else:
                uav.start_mission(list(assignment.waypoints))
        return assignments
