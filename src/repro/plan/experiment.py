"""``planner-ablation`` campaign: fixed patterns vs planned tours.

The paper's fleets "cover large areas efficiently"; this campaign asks
whether that should mean fixed coverage patterns or planned inspection
tours once the world has obstacles in it. Every grid point runs the same
procedurally-built urban scenario (buildings + masts over a 320 m block)
under one of two strategies:

``pattern``
    The classic per-UAV boustrophedon strips from
    :class:`repro.sar.mission.SarMission.assign_paths`, routed around the
    obstacle field leg by leg.
``planned``
    Inspection-point tours from :mod:`repro.plan.routing`: a swath-spaced
    lattice of viewpoints, partitioned across the fleet in disjoint
    east-bands, ordered nearest-neighbour + 2-opt, then obstacle-routed.

Each sample records path length, time-to-first/all-found, find rate,
coverage and energy, plus a ``planned_path_clearance`` oracle block
asserting every launched plan clears the raw voxel grid — the CI smoke
job requires zero violations and a byte-identical manifest fingerprint
across worker counts. Run it like every other sweep::

    python -m repro campaign planner-ablation --preset smoke
    python -m repro campaign planner-ablation --preset default --workers 4
"""

from __future__ import annotations

import math

from repro.harness.campaign import (
    CampaignExperiment,
    CampaignResult,
    register_experiment,
)
from repro.harness.timing import PhaseTimer
from repro.plan.routing import inspection_points, plan_inspection_tours
from repro.sar.mission import SarMission
from repro.scenario import load_scenario

#: Scenario seed pinned across grid points unless a point overrides it.
PINNED_SEED = 211

#: Strategies compared by the ablation.
STRATEGIES = ("pattern", "planned")


def urban_config(seed: int, persons: int) -> dict:
    """The campaign's urban world: one scenario, parameterised by seed.

    Built programmatically (not read from disk) so the sample function
    stays a pure function of its config — file contents can't leak into
    the manifest fingerprint. ``scenarios/urban_sar.json`` archives the
    same world shape for the scenario CLI and oracle suites.
    """
    return {
        "description": f"planner-ablation urban block seed={seed}",
        "seed": int(seed),
        "area_size_m": [320.0, 320.0],
        "dt": 0.5,
        "persons": int(persons),
        "camera": {"half_fov_deg": 35.0, "overlap": 0.15},
        "obstacles": {
            "cell_m": 4.0,
            "inflation_m": 3.0,
            "boxes": [
                {"min": [60.0, 40.0, 0.0], "max": [110.0, 120.0, 28.0]},
                {"min": [150.0, 60.0, 0.0], "max": [210.0, 110.0, 35.0]},
                {"min": [70.0, 190.0, 0.0], "max": [140.0, 250.0, 22.0]},
                {"min": [200.0, 180.0, 0.0], "max": [260.0, 260.0, 30.0]},
            ],
            "cylinders": [
                {"center": [260.0, 80.0], "radius": 10.0, "height": 38.0},
                {"center": [40.0, 290.0], "radius": 8.0, "height": 20.0},
            ],
        },
        "uavs": [
            {"id": "uav1", "base": [10.0, 10.0, 0.0], "rotors": 4},
            {"id": "uav2", "base": [160.0, 10.0, 0.0], "rotors": 4},
            {"id": "uav3", "base": [310.0, 10.0, 0.0], "rotors": 6},
        ],
    }


def _clearance_block(world, plans: dict[str, list]) -> dict:
    """``planned_path_clearance`` verdict for the launched plans.

    Checked against the *raw* grid — exactly what the harness oracle does
    during fuzzing — so a planner regression fails the campaign's oracle
    block (and the CI smoke job) rather than hiding in a metric.
    """
    violations = []
    grid = world.obstacles.grid
    for uav_id in sorted(plans):
        legs = [tuple(world.uavs[uav_id].spec.base_position)] + [
            tuple(wp) for wp in plans[uav_id]
        ]
        for a, b in zip(legs, legs[1:]):
            if not grid.segment_free(a, b):
                violations.append(
                    {
                        "oracle": "planned_path_clearance",
                        "uav": uav_id,
                        "message": (
                            f"leg {tuple(round(v, 1) for v in a)} -> "
                            f"{tuple(round(v, 1) for v in b)} crosses an "
                            "obstacle"
                        ),
                    }
                )
    return {
        "passed": not violations,
        "checked": ["planned_path_clearance"],
        "violations": violations,
    }


def planner_ablation_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """One ablation sample: the urban scenario under one strategy."""
    strategy = config.get("strategy", "pattern")
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy: expected one of {STRATEGIES}, got {strategy!r}"
        )
    run_seed = int(config.get("seed", seed))
    persons = int(config.get("persons", 6))
    horizon_s = float(config.get("horizon_s", 240.0))
    altitude_m = float(config.get("altitude_m", 24.0))

    with timer.phase("load"):
        scenario = load_scenario(urban_config(run_seed, persons))
    world = scenario.world
    mission = SarMission(world=world, altitude_m=altitude_m)

    with timer.phase("plan"):
        if strategy == "pattern":
            plans = mission.assign_paths()
        else:
            spacing = mission.camera.swath_width_m(altitude_m)
            points = inspection_points(
                world.area_size_m[0], spacing, altitude_m, world.obstacles
            )
            uav_ids = sorted(world.uavs)
            starts = [
                tuple(world.uavs[uav_id].dynamics.position)
                for uav_id in uav_ids
            ]
            tours = plan_inspection_tours(starts, points, world.obstacles)
            plans = {}
            for uav_id, tour in zip(uav_ids, tours):
                if tour:
                    world.uavs[uav_id].start_mission(tour)
                plans[uav_id] = tour
            mission.metrics.started_at = world.time
            mission.metrics.persons_total = len(world.persons)

    soc_start = {
        uav_id: uav.battery.soc for uav_id, uav in world.uavs.items()
    }
    with timer.phase("simulate"):
        while not mission.mission_complete and world.time < horizon_s:
            mission.step()

    detected = [p.detected_at for p in world.persons if p.detected]
    metrics = mission.metrics
    return {
        "strategy": strategy,
        "seed": run_seed,
        "persons": persons,
        "horizon_s": horizon_s,
        "altitude_m": altitude_m,
        "path_length_m": round(
            sum(
                sum(math.dist(a, b) for a, b in zip(plan, plan[1:]))
                for plan in plans.values()
            ),
            3,
        ),
        "plan_waypoints": sum(len(plan) for plan in plans.values()),
        "time_to_first_find_s": min(detected) if detected else None,
        "time_to_all_found_s": (
            max(detected) if len(detected) == len(world.persons) else None
        ),
        "find_rate": round(metrics.find_rate, 6) if world.persons else None,
        "coverage_fraction": round(metrics.coverage_fraction, 6),
        "energy_soc": round(
            sum(
                soc_start[uav_id] - uav.battery.soc
                for uav_id, uav in world.uavs.items()
            ),
            9,
        ),
        "completed": mission.mission_complete,
        "oracles": _clearance_block(world, plans),
    }


def planner_ablation_grid(preset: str) -> list[dict]:
    """Grid presets; smoke is the CI gate, full sweeps altitude too."""
    if preset == "smoke":
        return [
            {"strategy": strategy, "seed": PINNED_SEED + i,
             "persons": 6, "horizon_s": 240.0}
            for strategy in STRATEGIES
            for i in range(2)
        ]
    if preset == "default":
        return [
            {"strategy": strategy, "seed": PINNED_SEED + i,
             "persons": 10, "horizon_s": 420.0}
            for strategy in STRATEGIES
            for i in range(5)
        ]
    if preset == "full":
        return [
            {"strategy": strategy, "seed": PINNED_SEED + i,
             "persons": 10, "horizon_s": 420.0, "altitude_m": altitude}
            for strategy in STRATEGIES
            for altitude in (18.0, 24.0, 30.0)
            for i in range(8)
        ]
    raise ValueError(f"unknown planner-ablation grid preset {preset!r}")


def summarize_planner_ablation(campaign: CampaignResult) -> str:
    """Path length × time-to-find × energy, side by side per strategy."""
    lines = [
        "strategy  seed   path len    first find  all found   found   cover   energy",
        "--------  -----  ----------  ----------  ----------  ------  ------  -------",
    ]
    for r in campaign.results:
        first = (
            f"{r['time_to_first_find_s']:>8.1f} s"
            if r["time_to_first_find_s"] is not None else "       — "
        )
        done = (
            f"{r['time_to_all_found_s']:>8.1f} s"
            if r["time_to_all_found_s"] is not None else "       — "
        )
        found = (
            f"{100 * r['find_rate']:>5.0f}%" if r["find_rate"] is not None
            else "    —"
        )
        lines.append(
            f"{r['strategy']:<9} {r['seed']:<6} "
            f"{r['path_length_m']:>8.0f} m  {first}  {done}  {found}  "
            f"{100 * r['coverage_fraction']:>5.1f}%  {r['energy_soc']:>7.4f}"
        )
    return "\n".join(lines)


PLANNER_ABLATION_CAMPAIGN = register_experiment(
    CampaignExperiment(
        name="planner-ablation",
        sample_fn=planner_ablation_sample,
        grids=planner_ablation_grid,
        describe="Obstacle-aware planning: fixed patterns vs planned tours",
        summarize=summarize_planner_ablation,
        presets=("smoke", "default", "full"),
    )
)
