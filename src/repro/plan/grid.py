"""3D occupancy-grid world model for obstacle-aware planning.

The paper's UAVs fly open rural fields; urban SAR adds buildings, masts
and tree lines the fleet must route around. This module is the world
model the :mod:`repro.plan` planners consume: a NumPy boolean voxel grid
over the scenario's ENU search volume, populated from axis-aligned box
and vertical cylinder primitives (the ``"obstacles"`` block of scenario
JSON), with

* conservative *inflation* (Euclidean dilation by the vehicle radius)
  producing the configuration-space grid the A* planner searches,
* vectorised point / segment freeness queries used by both the planner
  and the ``planned_path_clearance`` oracle, and
* :class:`ObstacleIndex` — KD-tree-style nearest-obstacle queries built
  from pure-NumPy uniform cell binning (no SciPy dependency).

Everything here is pure geometry: no imports from the simulation
substrate, so the planner stack sits beside :mod:`repro.uav` rather than
on top of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class PlanError(ValueError):
    """Raised when a planning query cannot be satisfied."""


def _offsets_within(radius_cells: float) -> np.ndarray:
    """Integer (di, dj, dk) offsets whose Euclidean norm is <= radius."""
    r = int(math.ceil(radius_cells))
    axis = np.arange(-r, r + 1)
    di, dj, dk = np.meshgrid(axis, axis, axis, indexing="ij")
    mask = di**2 + dj**2 + dk**2 <= radius_cells**2 + 1e-9
    return np.stack([di[mask], dj[mask], dk[mask]], axis=1)


@dataclass
class OccupancyGrid3D:
    """A boolean voxel grid over ``[origin, origin + shape * cell_m)``.

    Cell ``(i, j, k)`` covers the axis-aligned cube whose centre is
    ``origin + (i + 0.5, j + 0.5, k + 0.5) * cell_m``; a cell is occupied
    when its centre lies inside any registered primitive. Points outside
    the grid volume are free by definition — obstacles only exist inside
    the modelled volume.
    """

    origin: tuple[float, float, float]
    cell_m: float
    occupied: np.ndarray
    _index: "ObstacleIndex | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def empty(
        cls,
        size_m: tuple[float, float, float],
        cell_m: float,
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> "OccupancyGrid3D":
        """An all-free grid covering ``size_m`` metres from ``origin``."""
        if cell_m <= 0.0:
            raise PlanError("cell_m must be positive")
        shape = tuple(max(1, int(math.ceil(s / cell_m))) for s in size_m)
        return cls(
            origin=tuple(float(o) for o in origin),
            cell_m=float(cell_m),
            occupied=np.zeros(shape, dtype=bool),
        )

    # -------------------------------------------------------------- shape
    @property
    def shape(self) -> tuple[int, int, int]:
        return self.occupied.shape  # type: ignore[return-value]

    @property
    def size_m(self) -> tuple[float, float, float]:
        """Extent of the modelled volume in metres."""
        return tuple(n * self.cell_m for n in self.shape)  # type: ignore[return-value]

    def cell_centers(self, indices: np.ndarray) -> np.ndarray:
        """ENU centres of an ``(n, 3)`` integer index array."""
        return np.asarray(self.origin) + (indices + 0.5) * self.cell_m

    # --------------------------------------------------------- primitives
    def _axes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis cell-centre coordinate vectors."""
        return tuple(  # type: ignore[return-value]
            self.origin[a] + (np.arange(self.shape[a]) + 0.5) * self.cell_m
            for a in range(3)
        )

    def add_box(
        self,
        min_corner: tuple[float, float, float],
        max_corner: tuple[float, float, float],
    ) -> None:
        """Occupy every cell whose centre lies inside the box."""
        if any(hi <= lo for lo, hi in zip(min_corner, max_corner)):
            raise PlanError(
                f"degenerate box: min {min_corner!r} must be < max "
                f"{max_corner!r} on every axis"
            )
        xs, ys, zs = self._axes()
        mx = (xs >= min_corner[0]) & (xs <= max_corner[0])
        my = (ys >= min_corner[1]) & (ys <= max_corner[1])
        mz = (zs >= min_corner[2]) & (zs <= max_corner[2])
        self.occupied |= (
            mx[:, None, None] & my[None, :, None] & mz[None, None, :]
        )
        self._index = None

    def add_cylinder(
        self,
        center: tuple[float, float],
        radius_m: float,
        height_m: float,
        base_u: float = 0.0,
    ) -> None:
        """Occupy a vertical cylinder footprint from ``base_u`` upward."""
        if radius_m <= 0.0 or height_m <= 0.0:
            raise PlanError("cylinder radius and height must be positive")
        xs, ys, zs = self._axes()
        footprint = (
            (xs[:, None] - center[0]) ** 2 + (ys[None, :] - center[1]) ** 2
            <= radius_m**2
        )
        mz = (zs >= base_u) & (zs <= base_u + height_m)
        self.occupied |= footprint[:, :, None] & mz[None, None, :]
        self._index = None

    # ------------------------------------------------------------ queries
    def point_indices(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cell indices of ``(n, 3)`` points plus an in-bounds mask."""
        rel = (np.asarray(points, dtype=float) - np.asarray(self.origin)) / self.cell_m
        idx = np.floor(rel).astype(int)
        # The grid volume is closed: a point exactly on the upper boundary
        # face (e.g. a waypoint at the search-area edge) belongs to the
        # last cell, not to the free outside.
        shape = np.asarray(self.shape)
        at_top = (idx >= shape) & (rel <= shape + 1e-9)
        idx = np.where(at_top, shape - 1, idx)
        inside = np.all((idx >= 0) & (idx < shape), axis=-1)
        return idx, inside

    def is_free(self, point: tuple[float, float, float]) -> bool:
        """Whether a single point lies in free space (outside = free)."""
        idx, inside = self.point_indices(np.asarray(point)[None, :])
        if not inside[0]:
            return True
        i, j, k = idx[0]
        return not bool(self.occupied[i, j, k])

    def points_free(self, points: np.ndarray) -> np.ndarray:
        """Vectorised freeness of ``(n, 3)`` points."""
        idx, inside = self.point_indices(points)
        free = np.ones(len(idx), dtype=bool)
        if inside.any():
            clipped = idx[inside]
            free[inside] = ~self.occupied[
                clipped[:, 0], clipped[:, 1], clipped[:, 2]
            ]
        return free

    def segment_free(
        self,
        a: tuple[float, float, float],
        b: tuple[float, float, float],
    ) -> bool:
        """Whether the straight segment ``a -> b`` stays in free space.

        Sampled at half-cell resolution (endpoints included), which
        cannot skip a full occupied cell.
        """
        a_arr = np.asarray(a, dtype=float)
        b_arr = np.asarray(b, dtype=float)
        length = float(np.linalg.norm(b_arr - a_arr))
        n = max(2, int(math.ceil(length / (0.5 * self.cell_m))) + 1)
        t = np.linspace(0.0, 1.0, n)[:, None]
        samples = a_arr[None, :] * (1.0 - t) + b_arr[None, :] * t
        return bool(self.points_free(samples).all())

    def path_free(self, waypoints: list[tuple[float, float, float]]) -> bool:
        """Whether every leg of a waypoint polyline is collision-free."""
        return all(
            self.segment_free(p, q) for p, q in zip(waypoints, waypoints[1:])
        )

    def nearest_free(
        self, point: tuple[float, float, float]
    ) -> tuple[float, float, float]:
        """``point`` itself when free, else the nearest free cell centre."""
        if self.is_free(point):
            return tuple(float(c) for c in point)
        free_idx = np.argwhere(~self.occupied)
        if len(free_idx) == 0:
            raise PlanError("grid is fully occupied; no free space to plan in")
        centers = self.cell_centers(free_idx)
        best = int(np.argmin(((centers - np.asarray(point)) ** 2).sum(axis=1)))
        return tuple(float(c) for c in centers[best])

    # ---------------------------------------------------------- inflation
    def inflate(self, radius_m: float) -> "OccupancyGrid3D":
        """A copy with obstacles dilated by ``radius_m`` (C-space grid).

        Dilation is conservative: the effective radius gets half a cell
        diagonal added so every point within ``radius_m`` of an occupied
        cell centre lands in an inflated cell (a bare ``radius_m`` smaller
        than the cell size would otherwise dilate by *nothing*). The
        padding also guarantees that straight segments between adjacent
        inflated-free cell centres never cut a raw-occupied corner.
        """
        if radius_m < 0.0:
            raise PlanError("inflation radius must be non-negative")
        grown = self.occupied.copy()
        if radius_m > 0.0 and self.occupied.any():
            effective = radius_m / self.cell_m + math.sqrt(3.0) / 2.0
            for di, dj, dk in _offsets_within(effective):
                if di == dj == dk == 0:
                    continue
                shifted = np.zeros_like(self.occupied)
                src = [slice(None)] * 3
                dst = [slice(None)] * 3
                for axis, d in enumerate((di, dj, dk)):
                    if d > 0:
                        src[axis], dst[axis] = slice(0, -d), slice(d, None)
                    elif d < 0:
                        src[axis], dst[axis] = slice(-d, None), slice(0, d)
                shifted[tuple(dst)] = self.occupied[tuple(src)]
                grown |= shifted
        return OccupancyGrid3D(
            origin=self.origin, cell_m=self.cell_m, occupied=grown
        )

    # --------------------------------------------------------- clearances
    def clearance_m(self, points: np.ndarray) -> np.ndarray:
        """Distance from each ``(n, 3)`` point to the nearest occupied
        cell centre (``inf`` when the grid holds no obstacles)."""
        if self._index is None:
            occ = np.argwhere(self.occupied)
            self._index = ObstacleIndex(
                self.cell_centers(occ) if len(occ) else np.empty((0, 3)),
                bin_m=max(4.0 * self.cell_m, 1e-9),
            )
        return self._index.nearest_distance(points)


class ObstacleIndex:
    """Nearest-neighbour queries over a 3D point cloud via cell binning.

    A KD-tree substitute built from NumPy only: points are hashed into
    uniform cubic bins of side ``bin_m``; a query walks outward over bin
    *shells* and stops once no unseen shell can hold a closer point —
    the same pruning argument a KD-tree makes, traded for O(1) bin
    lookups. Exact (not approximate) nearest distances.
    """

    def __init__(self, points: np.ndarray, bin_m: float) -> None:
        if bin_m <= 0.0:
            raise PlanError("bin_m must be positive")
        self.bin_m = float(bin_m)
        self.points = np.asarray(points, dtype=float).reshape(-1, 3)
        self._bins: dict[tuple[int, int, int], np.ndarray] = {}
        if len(self.points):
            keys = np.floor(self.points / self.bin_m).astype(int)
            order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
            keys, pts = keys[order], self.points[order]
            boundaries = np.flatnonzero(np.any(np.diff(keys, axis=0), axis=1)) + 1
            for chunk_keys, chunk in zip(
                np.split(keys, boundaries), np.split(pts, boundaries)
            ):
                self._bins[tuple(int(v) for v in chunk_keys[0])] = chunk

    def _shell(self, center: tuple[int, int, int], r: int) -> list[np.ndarray]:
        """Point arrays of every non-empty bin on shell ``r`` (Chebyshev)."""
        cx, cy, cz = center
        found = []
        if r == 0:
            chunk = self._bins.get(center)
            return [chunk] if chunk is not None else []
        for dx in range(-r, r + 1):
            for dy in range(-r, r + 1):
                for dz in range(-r, r + 1):
                    if max(abs(dx), abs(dy), abs(dz)) != r:
                        continue
                    chunk = self._bins.get((cx + dx, cy + dy, cz + dz))
                    if chunk is not None:
                        found.append(chunk)
        return found

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        """Exact distance from each query point to its nearest point."""
        queries = np.asarray(queries, dtype=float).reshape(-1, 3)
        out = np.full(len(queries), np.inf)
        if not self._bins:
            return out
        max_shell = max(
            max(abs(k) for k in key) for key in self._bins
        ) + 1
        for qi, q in enumerate(queries):
            center = tuple(int(v) for v in np.floor(q / self.bin_m))
            best = np.inf
            r = 0
            while True:
                # Any point in an unseen shell >= r is at least
                # (r - 1) * bin_m away from q; once that exceeds the
                # best-so-far the search is complete.
                if best < np.inf and (r - 1) * self.bin_m > best:
                    break
                span = max(abs(c) for c in center) + max_shell
                if r > span:
                    break
                for chunk in self._shell(center, r):
                    d = float(np.min(np.linalg.norm(chunk - q, axis=1)))
                    best = min(best, d)
                r += 1
            out[qi] = best
        return out


@dataclass
class ObstacleField:
    """A scenario's obstacle model: raw occupancy plus the inflated
    configuration-space grid planners search.

    ``grid`` is ground truth (what the ``planned_path_clearance`` oracle
    checks against); ``inflated`` grows every obstacle by ``inflation_m``
    so a path through inflated free space keeps at least that clearance
    margin from raw occupancy.
    """

    grid: OccupancyGrid3D
    inflated: OccupancyGrid3D
    inflation_m: float

    @classmethod
    def build(
        cls,
        size_m: tuple[float, float, float],
        cell_m: float,
        boxes: list[tuple[tuple[float, float, float], tuple[float, float, float]]],
        cylinders: list[tuple[tuple[float, float], float, float]],
        inflation_m: float,
    ) -> "ObstacleField":
        """Populate a grid from primitive lists and inflate it once."""
        grid = OccupancyGrid3D.empty(size_m, cell_m)
        for min_corner, max_corner in boxes:
            grid.add_box(min_corner, max_corner)
        for center, radius, height in cylinders:
            grid.add_cylinder(center, radius, height)
        return cls(
            grid=grid,
            inflated=grid.inflate(inflation_m),
            inflation_m=float(inflation_m),
        )
