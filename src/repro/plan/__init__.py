"""Obstacle-aware 3D planning: occupancy grids, A*, and tour routing.

Pure-geometry layer (NumPy + stdlib only; no imports from the sar, uav,
or harness layers, which sit above it):

- :mod:`repro.plan.grid` — 3D voxel occupancy grid with box/cylinder
  primitives, inflation, segment collision queries, and a pure-NumPy
  cell-binning nearest-obstacle index (no SciPy KD-tree dependency).
- :mod:`repro.plan.astar` — 26-connected A* with straight-line shortcut
  smoothing, plus :func:`route_waypoints` for whole mission legs.
- :mod:`repro.plan.routing` — multi-UAV inspection-point tours
  (east-band partitioning, nearest-neighbour + 2-opt).
"""

from repro.plan.astar import plan_path, route_waypoints, shortcut_path
from repro.plan.grid import (
    ObstacleField,
    ObstacleIndex,
    OccupancyGrid3D,
    PlanError,
)
from repro.plan.routing import (
    inspection_points,
    nearest_neighbor_tour,
    partition_points,
    plan_inspection_tours,
    tour_length,
    two_opt,
)

__all__ = [
    "ObstacleField",
    "ObstacleIndex",
    "OccupancyGrid3D",
    "PlanError",
    "inspection_points",
    "nearest_neighbor_tour",
    "partition_points",
    "plan_inspection_tours",
    "plan_path",
    "route_waypoints",
    "shortcut_path",
    "tour_length",
    "two_opt",
]
