"""A* local planner over the inflated occupancy grid.

Plans between ENU points through the configuration-space grid
(:class:`repro.plan.grid.OccupancyGrid3D` after inflation): 26-connected
A* with an exact Euclidean heuristic, followed by a greedy straight-line
*shortcut smoother* that removes the grid staircase wherever the direct
segment between two path vertices is free. A fast path skips the search
entirely when the straight start -> goal segment is already free — in
open terrain the planner costs one segment query per leg.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.plan.grid import OccupancyGrid3D, PlanError

#: Hard cap on A* node expansions — a planner bug (or a maliciously
#: dense world) fails loudly instead of hanging the simulation.
MAX_EXPANSIONS = 400_000

#: The 26-neighbourhood with per-move Euclidean costs, precomputed once.
_NEIGHBORS = [
    (di, dj, dk, math.sqrt(di * di + dj * dj + dk * dk))
    for di in (-1, 0, 1)
    for dj in (-1, 0, 1)
    for dk in (-1, 0, 1)
    if (di, dj, dk) != (0, 0, 0)
]


def astar_cells(
    occupied: np.ndarray,
    start: tuple[int, int, int],
    goal: tuple[int, int, int],
    max_expansions: int = MAX_EXPANSIONS,
) -> list[tuple[int, int, int]] | None:
    """Shortest 26-connected cell path through a boolean grid.

    Returns ``None`` when ``goal`` is unreachable from ``start`` (or the
    expansion cap is hit). Costs are Euclidean per move, the heuristic is
    straight-line distance, so the path is optimal on the lattice.
    """
    nx, ny, nz = occupied.shape
    if occupied[start] or occupied[goal]:
        return None
    if start == goal:
        return [start]

    def h(cell: tuple[int, int, int]) -> float:
        return math.dist(cell, goal)

    g_score: dict[tuple[int, int, int], float] = {start: 0.0}
    came: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    frontier: list[tuple[float, tuple[int, int, int]]] = [(h(start), start)]
    closed: set[tuple[int, int, int]] = set()
    expansions = 0
    while frontier:
        _, cell = heapq.heappop(frontier)
        if cell in closed:
            continue
        if cell == goal:
            path = [cell]
            while cell in came:
                cell = came[cell]
                path.append(cell)
            path.reverse()
            return path
        closed.add(cell)
        expansions += 1
        if expansions > max_expansions:
            return None
        ci, cj, ck = cell
        base = g_score[cell]
        for di, dj, dk, cost in _NEIGHBORS:
            ni, nj, nk = ci + di, cj + dj, ck + dk
            if not (0 <= ni < nx and 0 <= nj < ny and 0 <= nk < nz):
                continue
            neighbor = (ni, nj, nk)
            if neighbor in closed or occupied[ni, nj, nk]:
                continue
            tentative = base + cost
            if tentative < g_score.get(neighbor, math.inf):
                g_score[neighbor] = tentative
                came[neighbor] = cell
                heapq.heappush(frontier, (tentative + h(neighbor), neighbor))
    return None


def shortcut_path(
    grid: OccupancyGrid3D, points: list[tuple[float, float, float]]
) -> list[tuple[float, float, float]]:
    """Greedy straight-line smoothing of a piecewise path.

    From each kept vertex, jump to the farthest later vertex reachable by
    a free straight segment; the result visits a subsequence of the input
    vertices and is never longer than the input path.
    """
    if len(points) <= 2:
        return list(points)
    out = [points[0]]
    i = 0
    while i < len(points) - 1:
        j = len(points) - 1
        while j > i + 1 and not grid.segment_free(points[i], points[j]):
            j -= 1
        out.append(points[j])
        i = j
    return out


def _anchor(
    grid: OccupancyGrid3D, point: tuple[float, float, float]
) -> tuple[float, float, float]:
    """An in-grid free point anchoring ``point`` on the cell lattice.

    Points already inside the grid pass through unchanged; points outside
    (free by definition — e.g. a waypoint on the area boundary or above
    the obstacle ceiling) are clamped just inside the volume and, if the
    clamped cell is occupied, snapped to the nearest free cell centre.
    """
    arr = np.asarray(point, dtype=float)
    origin = np.asarray(grid.origin, dtype=float)
    span = np.asarray(grid.shape, dtype=float) * grid.cell_m
    eps = 1e-6 * grid.cell_m
    clamped = np.minimum(np.maximum(arr, origin + eps), origin + span - eps)
    return grid.nearest_free(tuple(float(v) for v in clamped))


def plan_path(
    grid: OccupancyGrid3D,
    start: tuple[float, float, float],
    goal: tuple[float, float, float],
) -> list[tuple[float, float, float]]:
    """A collision-free ENU polyline from ``start`` to ``goal``.

    Endpoints inside inflated obstacles are snapped to the nearest free
    cell centre first (the returned path starts/ends at the snapped
    points). Straight-line-free legs return directly; otherwise A* runs
    on the cell lattice and the staircase is shortcut-smoothed. Raises
    :class:`PlanError` when no route exists.
    """
    s = grid.nearest_free(start)
    g = grid.nearest_free(goal)
    if grid.segment_free(s, g):
        return [s, g]
    s_in = _anchor(grid, s)
    g_in = _anchor(grid, g)
    idx, _ = grid.point_indices(np.asarray([s_in, g_in]))
    cells = astar_cells(
        grid.occupied,
        tuple(int(v) for v in idx[0]),
        tuple(int(v) for v in idx[1]),
    )
    if cells is None:
        raise PlanError(
            f"no collision-free route from {tuple(round(v, 1) for v in s)} "
            f"to {tuple(round(v, 1) for v in g)}"
        )
    centers = grid.cell_centers(np.asarray(cells))
    waypoints = [s]
    if s_in != s:
        waypoints.append(s_in)
    waypoints.extend(tuple(float(v) for v in c) for c in centers[1:-1])
    if g_in != g:
        waypoints.append(g_in)
    waypoints.append(g)
    return shortcut_path(grid, waypoints)


def route_waypoints(
    field,
    start: tuple[float, float, float],
    waypoints: list[tuple[float, float, float]],
) -> list[tuple[float, float, float]]:
    """Route a mission waypoint list around a scenario's obstacles.

    Plans each leg on ``field.inflated`` (an
    :class:`~repro.plan.grid.ObstacleField`), concatenating the legs into
    one flyable list that starts *after* ``start`` (the vehicle's current
    position). Waypoints inside inflated obstacles are replaced by their
    nearest free snap; obstacle-free legs pass through unchanged, so
    scenarios without a blocked leg keep their exact waypoint lists.
    """
    out: list[tuple[float, float, float]] = []
    cursor = tuple(float(v) for v in start)
    for waypoint in waypoints:
        leg = plan_path(field.inflated, cursor, waypoint)
        # plan_path may snap a start that sits inside an inflated
        # obstacle (e.g. a base next to a wall); keep the snap point so
        # the flown polyline matches the planned one.
        if leg[0] != cursor:
            out.append(leg[0])
        out.extend(leg[1:])
        cursor = out[-1]
    return out
