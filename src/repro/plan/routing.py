"""Multi-UAV inspection-point routing.

Turns a field of inspection points into per-UAV tours: points are
partitioned across vehicles by east-sorted contiguous chunks (so fleets
sweep disjoint east-bands — the inter-UAV separation property the tests
assert), each chunk is ordered with a nearest-neighbour tour and improved
with 2-opt, and each tour is finally routed around obstacles leg by leg
with the A* planner. Pure geometry: distances, NumPy, and
:mod:`repro.plan` only — no imports from the sar or uav layers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.plan.astar import route_waypoints
from repro.plan.grid import ObstacleField

Point = tuple[float, float, float]


def tour_length(points: list[Point]) -> float:
    """Total Euclidean length of a polyline through ``points``."""
    return float(
        sum(math.dist(a, b) for a, b in zip(points, points[1:]))
    )


def nearest_neighbor_tour(start: Point, points: list[Point]) -> list[int]:
    """Order ``points`` greedily by nearest-neighbour from ``start``.

    Returns indices into ``points``. Ties break toward the lower index,
    which keeps the construction deterministic for identical inputs.
    """
    remaining = list(range(len(points)))
    order: list[int] = []
    cursor = start
    while remaining:
        best = min(remaining, key=lambda i: (math.dist(cursor, points[i]), i))
        remaining.remove(best)
        order.append(best)
        cursor = points[best]
    return order


def two_opt(
    start: Point,
    points: list[Point],
    order: list[int],
    max_passes: int = 8,
) -> list[int]:
    """Improve an open tour with 2-opt segment reversals.

    The tour is anchored at ``start`` (not itself reorderable) and open at
    the far end. Passes repeat until no improving reversal is found or
    ``max_passes`` is reached; every accepted move strictly shortens the
    tour, so termination is guaranteed.
    """
    if len(order) < 3:
        return list(order)
    order = list(order)
    coords = [start] + [points[i] for i in order]
    arr = np.asarray(coords, dtype=float)
    for _ in range(max_passes):
        improved = False
        n = len(arr)
        for i in range(1, n - 2):
            for j in range(i + 1, n - 1):
                # Reversing order[i-1 .. j-1] replaces edges (i-1, i) and
                # (j, j+1) with (i-1, j) and (i, j+1); the open tail end
                # (j == n - 1 handled by the range bound) has no out-edge.
                d_old = np.linalg.norm(arr[i - 1] - arr[i]) + np.linalg.norm(
                    arr[j] - arr[j + 1]
                )
                d_new = np.linalg.norm(arr[i - 1] - arr[j]) + np.linalg.norm(
                    arr[i] - arr[j + 1]
                )
                if d_new < d_old - 1e-9:
                    arr[i : j + 1] = arr[i : j + 1][::-1]
                    order[i - 1 : j] = order[i - 1 : j][::-1]
                    improved = True
        if not improved:
            break
    return order


def partition_points(
    points: list[Point], n_parts: int
) -> list[list[int]]:
    """Split points across UAVs as contiguous east-sorted chunks.

    Sorting by (east, north, up) and chunking keeps each part inside a
    disjoint east-band: ``max(east of part i) <= min(east of part i+1)``,
    so concurrently flying UAVs never interleave laterally. Chunk sizes
    differ by at most one and empty parts only appear when there are
    fewer points than parts.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    ranked = sorted(range(len(points)), key=lambda i: (points[i], i))
    parts: list[list[int]] = []
    n = len(ranked)
    base, extra = divmod(n, n_parts)
    cursor = 0
    for p in range(n_parts):
        size = base + (1 if p < extra else 0)
        parts.append(ranked[cursor : cursor + size])
        cursor += size
    return parts


def inspection_points(
    area_size_m: float,
    spacing_m: float,
    altitude_m: float,
    field: ObstacleField | None = None,
    margin_m: float = 10.0,
) -> list[Point]:
    """A lattice of inspection points over a square ENU area.

    Points are laid on a regular ``spacing_m`` grid at ``altitude_m``,
    inset by ``margin_m`` from the area edges; points inside inflated
    obstacles are dropped (the planner could only snap them elsewhere).
    """
    if spacing_m <= 0.0:
        raise ValueError("spacing_m must be positive")
    lo, hi = margin_m, area_size_m - margin_m
    if hi <= lo:
        return []
    n = int((hi - lo) // spacing_m) + 1
    coords = [lo + i * spacing_m for i in range(n) if lo + i * spacing_m <= hi]
    pts = [(e, nn, altitude_m) for e in coords for nn in coords]
    if field is not None:
        free = field.inflated.points_free(np.asarray(pts, dtype=float))
        pts = [p for p, ok in zip(pts, free) if ok]
    return pts


def plan_inspection_tours(
    starts: list[Point],
    points: list[Point],
    field: ObstacleField | None = None,
) -> list[list[Point]]:
    """Per-UAV obstacle-routed inspection tours.

    Partitions ``points`` across ``len(starts)`` UAVs, orders each part
    with nearest-neighbour + 2-opt from that UAV's start, then routes the
    tour around obstacles when a ``field`` is given. Returns one flyable
    waypoint list per UAV (empty when its part is empty).
    """
    if not starts:
        raise ValueError("at least one start position is required")
    parts = partition_points(points, len(starts))
    tours: list[list[Point]] = []
    for start, part in zip(starts, parts):
        pts = [points[i] for i in part]
        order = two_opt(start, pts, nearest_neighbor_tour(start, pts))
        tour = [pts[i] for i in order]
        if field is not None and tour:
            tour = route_waypoints(field, start, tour)
        tours.append(tour)
    return tours
