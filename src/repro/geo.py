"""Geodesy primitives shared across the stack.

The paper's Collaborative Localization tool (Sec. III-C) refines UAV
positions "through trigonometric calculations and the Haversine formula".
This module provides those primitives: great-circle distance (haversine),
initial bearing, destination-point projection, and conversions between
geodetic (lat/lon/alt) coordinates and a local east-north-up (ENU) frame
anchored at a reference point.

All angles at the public API are degrees; distances are metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_M = 6_371_000.0
"""Mean Earth radius used by the haversine formula (metres)."""


@dataclass(frozen=True)
class GeoPoint:
    """A geodetic coordinate: latitude/longitude in degrees, altitude in metres."""

    lat: float
    lon: float
    alt: float = 0.0

    def with_alt(self, alt: float) -> "GeoPoint":
        """Return a copy of this point at a different altitude."""
        return GeoPoint(self.lat, self.lon, alt)


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle ground distance between two points in metres.

    Altitude is ignored; use :func:`slant_range_m` for the 3-D distance.
    """
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def slant_range_m(a: GeoPoint, b: GeoPoint) -> float:
    """3-D distance in metres: ground haversine plus altitude difference."""
    ground = haversine_m(a, b)
    return math.hypot(ground, b.alt - a.alt)


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees in [0, 360)."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    bearing = math.degrees(math.atan2(y, x)) % 360.0
    # A tiny negative angle can round to exactly 360.0 after the modulo.
    return 0.0 if bearing >= 360.0 else bearing


def destination_point(origin: GeoPoint, bearing_deg: float, distance_m: float) -> GeoPoint:
    """Project ``origin`` along ``bearing_deg`` for ``distance_m`` metres.

    Altitude is carried over unchanged.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon = (math.degrees(lam2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon, origin.alt)


@dataclass(frozen=True)
class EnuFrame:
    """Local tangent-plane east-north-up frame anchored at ``origin``.

    Uses the small-area equirectangular approximation, which is accurate to
    millimetres over the few-kilometre extents of a SAR mission.
    """

    origin: GeoPoint

    def to_enu(self, p: GeoPoint) -> tuple[float, float, float]:
        """Convert a geodetic point to (east, north, up) metres."""
        lat0 = math.radians(self.origin.lat)
        east = math.radians(p.lon - self.origin.lon) * EARTH_RADIUS_M * math.cos(lat0)
        north = math.radians(p.lat - self.origin.lat) * EARTH_RADIUS_M
        return east, north, p.alt - self.origin.alt

    def to_geo(self, east: float, north: float, up: float = 0.0) -> GeoPoint:
        """Convert local (east, north, up) metres back to a geodetic point."""
        lat0 = math.radians(self.origin.lat)
        lat = self.origin.lat + math.degrees(north / EARTH_RADIUS_M)
        lon = self.origin.lon + math.degrees(east / (EARTH_RADIUS_M * math.cos(lat0)))
        return GeoPoint(lat, lon, self.origin.alt + up)


def enu_distance(a: tuple[float, float, float], b: tuple[float, float, float]) -> float:
    """Euclidean distance between two ENU coordinates."""
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
