"""The SAR missed-person risk model (SINADRA instantiation).

Encodes the paper's Sec. III-A4 behaviour: given the current person-
detection uncertainty (from SafeML / DeepKnowledge), the environment
situation (altitude band, visibility), and the prior likelihood that the
scanned cell contains a person, the Bayesian network infers the
criticality of a missed detection. High criticality triggers an immediate
re-scan (typically at lower altitude); low criticality lets the UAV
proceed to the next task.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sinadra.bayesnet import BayesianNetwork, DiscreteNode


class Criticality(enum.Enum):
    """Risk vocabulary driving the re-scan decision."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class SituationInputs:
    """Discretised runtime situation fed to the risk network.

    ``detection_uncertainty`` in [0, 1] from the perception monitors;
    ``altitude_band`` in {"low", "high"}; ``visibility`` in {"good",
    "poor"}; ``occupancy_prior`` in [0, 1] — mission-intelligence prior
    that the current cell holds a person.
    """

    detection_uncertainty: float
    altitude_band: str
    visibility: str
    occupancy_prior: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_uncertainty <= 1.0:
            raise ValueError("detection_uncertainty out of range")
        if not 0.0 <= self.occupancy_prior <= 1.0:
            raise ValueError("occupancy_prior out of range")
        if self.altitude_band not in ("low", "high"):
            raise ValueError("altitude_band must be 'low' or 'high'")
        if self.visibility not in ("good", "poor"):
            raise ValueError("visibility must be 'good' or 'poor'")


@dataclass(frozen=True)
class RiskAssessment:
    """SINADRA output for one scanned cell."""

    missed_person_probability: float
    criticality: Criticality
    rescan_recommended: bool


def build_sar_risk_network() -> BayesianNetwork:
    """Construct the missed-person criticality Bayesian network.

    Structure::

        uncertainty  altitude  visibility      occupancy
              \\        |          /                |
               +--- detection_miss ---+            |
                          \\                        /
                           +---- missed_person ---+
    """
    net = BayesianNetwork()
    net.add_node(
        DiscreteNode("uncertainty", ["low", "medium", "high"], cpt={(): [0.5, 0.3, 0.2]})
    )
    net.add_node(DiscreteNode("altitude", ["low", "high"], cpt={(): [0.5, 0.5]}))
    net.add_node(DiscreteNode("visibility", ["good", "poor"], cpt={(): [0.8, 0.2]}))
    net.add_node(DiscreteNode("occupancy", ["empty", "person"], cpt={(): [0.9, 0.1]}))

    miss_cpt: dict[tuple[str, ...], list[float]] = {}
    base_miss = {"low": 0.02, "medium": 0.15, "high": 0.45}
    for unc, p_miss in base_miss.items():
        for alt, alt_mult in (("low", 1.0), ("high", 2.0)):
            for vis, vis_mult in (("good", 1.0), ("poor", 1.6)):
                p = min(0.95, p_miss * alt_mult * vis_mult)
                miss_cpt[(unc, alt, vis)] = [1.0 - p, p]
    net.add_node(
        DiscreteNode(
            "detection_miss",
            ["no", "yes"],
            parents=["uncertainty", "altitude", "visibility"],
            cpt=miss_cpt,
        )
    )
    net.add_node(
        DiscreteNode(
            "missed_person",
            ["no", "yes"],
            parents=["detection_miss", "occupancy"],
            cpt={
                ("no", "empty"): [1.0, 0.0],
                ("no", "person"): [1.0, 0.0],
                ("yes", "empty"): [1.0, 0.0],
                ("yes", "person"): [0.0, 1.0],
            },
        )
    )
    net.validate()
    return net


@dataclass
class SarRiskModel:
    """Runtime wrapper: continuous situation in, criticality out."""

    rescan_threshold: float = 0.04
    high_threshold: float = 0.08

    def __post_init__(self) -> None:
        self.network = build_sar_risk_network()

    @staticmethod
    def _discretise_uncertainty(u: float) -> str:
        if u < 0.5:
            return "low"
        if u < 0.85:
            return "medium"
        return "high"

    def assess(self, situation: SituationInputs) -> RiskAssessment:
        """Infer missed-person probability and map to criticality.

        The occupancy prior enters as soft evidence by linearly mixing the
        posterior computed under both occupancy states.
        """
        evidence_common = {
            "uncertainty": self._discretise_uncertainty(situation.detection_uncertainty),
            "altitude": situation.altitude_band,
            "visibility": situation.visibility,
        }
        p_person = situation.occupancy_prior
        posterior_person = self.network.query(
            "missed_person", {**evidence_common, "occupancy": "person"}
        )["yes"]
        posterior_empty = self.network.query(
            "missed_person", {**evidence_common, "occupancy": "empty"}
        )["yes"]
        p_missed = p_person * posterior_person + (1.0 - p_person) * posterior_empty

        if p_missed >= self.high_threshold:
            criticality = Criticality.HIGH
        elif p_missed >= self.rescan_threshold:
            criticality = Criticality.MEDIUM
        else:
            criticality = Criticality.LOW
        return RiskAssessment(
            missed_person_probability=p_missed,
            criticality=criticality,
            rescan_recommended=criticality is Criticality.HIGH,
        )
