"""Situation assembly: environment + mission state → SINADRA inputs.

Bridges the simulation environment and the risk model: discretises the
continuous environment (visibility from the environment state, altitude
band relative to the detector's training altitude) and packages it with
the live perception uncertainty and the cell occupancy prior.
"""

from __future__ import annotations

from repro.sar.detection import TRAINING_ALTITUDE_M
from repro.sinadra.risk import SituationInputs
from repro.uav.environment import Environment

HIGH_ALTITUDE_FACTOR = 1.2
"""Altitudes above this multiple of the training altitude count as high."""


def altitude_band(altitude_m: float) -> str:
    """Discretise an altitude into the risk model's band vocabulary."""
    if altitude_m <= 0.0:
        raise ValueError("altitude must be positive")
    return "high" if altitude_m > HIGH_ALTITUDE_FACTOR * TRAINING_ALTITUDE_M else "low"


def situation_from_environment(
    environment: Environment,
    altitude_m: float,
    detection_uncertainty: float,
    occupancy_prior: float,
) -> SituationInputs:
    """Build the SINADRA situation from the live environment."""
    return SituationInputs(
        detection_uncertainty=detection_uncertainty,
        altitude_band=altitude_band(altitude_m),
        visibility=environment.visibility,
        occupancy_prior=occupancy_prior,
    )
