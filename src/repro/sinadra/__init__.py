"""SINADRA: situation-aware dynamic risk assessment (paper Sec. III-A4).

SINADRA "uses Bayesian networks and enables the system to leverage
situation-specific risk factors and causal influences ... to dynamically
determine risk at runtime". In the SAR use case it consumes the SafeML /
DeepKnowledge uncertainty signals: "When person detection uncertainty is
high, SINADRA estimates the risk and criticality of missed persons ...
High criticality prompts immediate re-scanning of an area, whereas low
criticality allows UAVs to proceed to the next task."

This subpackage implements a discrete Bayesian-network engine (exact
inference by variable elimination) and the SAR missed-person risk model
built on it.
"""

from repro.sinadra.bayesnet import BayesianNetwork, DiscreteNode
from repro.sinadra.risk import (
    Criticality,
    RiskAssessment,
    SarRiskModel,
    SituationInputs,
)
from repro.sinadra.dynamic import DynamicRiskTracker, FilteredRisk
from repro.sinadra.situation import altitude_band, situation_from_environment

__all__ = [
    "BayesianNetwork",
    "DiscreteNode",
    "Criticality",
    "RiskAssessment",
    "SarRiskModel",
    "SituationInputs",
    "DynamicRiskTracker",
    "FilteredRisk",
    "altitude_band",
    "situation_from_environment",
]
