"""Time-sliced dynamic risk tracking (the "dynamic" in SINADRA).

The static network in :mod:`repro.sinadra.risk` assesses one snapshot;
real missions need the *filtered* risk over time: noisy single-frame
uncertainty spikes should not flip the criticality, while persistent
elevation should. This module implements a discrete forward filter — a
two-slice dynamic Bayesian network over a latent risk regime — on top of
the static assessment:

state space  {low, medium, high} risk regime
transition   sticky diagonal (regimes persist across one tick)
observation  the static model's missed-person probability, discretised

The filtered posterior drives criticality with hysteresis, which is what
the re-scan policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sinadra.risk import Criticality, SarRiskModel, SituationInputs

REGIMES = [Criticality.LOW, Criticality.MEDIUM, Criticality.HIGH]


@dataclass(frozen=True)
class FilteredRisk:
    """One filtered output."""

    stamp: float
    posterior: dict[Criticality, float]
    regime: Criticality
    instantaneous: Criticality
    rescan_recommended: bool


@dataclass
class DynamicRiskTracker:
    """Forward filter over the latent risk regime.

    ``stickiness`` is the self-transition probability of each regime;
    the remainder spreads to adjacent regimes (risk evolves gradually).
    ``observation_confusion`` is the probability mass the instantaneous
    assessment leaks to each adjacent regime (sensor/assessment noise).
    """

    model: SarRiskModel = field(default_factory=SarRiskModel)
    stickiness: float = 0.8
    observation_confusion: float = 0.15
    belief: np.ndarray = None  # type: ignore[assignment]
    history: list[FilteredRisk] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.5 <= self.stickiness <= 1.0:
            raise ValueError("stickiness must be in [0.5, 1]")
        if not 0.0 <= self.observation_confusion <= 0.5:
            raise ValueError("observation_confusion must be in [0, 0.5]")
        if self.belief is None:
            self.belief = np.array([1.0, 0.0, 0.0])  # start in the LOW regime

    def _transition_matrix(self) -> np.ndarray:
        s = self.stickiness
        spread = 1.0 - s
        return np.array(
            [
                [s, spread, 0.0],
                [spread / 2.0, s, spread / 2.0],
                [0.0, spread, s],
            ]
        )

    def _observation_likelihood(self, observed: Criticality) -> np.ndarray:
        idx = REGIMES.index(observed)
        likelihood = np.full(3, 0.0)
        likelihood[idx] = 1.0 - 2.0 * self.observation_confusion
        for neighbor in (idx - 1, idx + 1):
            if 0 <= neighbor < 3:
                likelihood[neighbor] = self.observation_confusion
        return likelihood + 1e-9

    def update(self, now: float, situation: SituationInputs) -> FilteredRisk:
        """One predict-update cycle with a fresh situation snapshot."""
        instantaneous = self.model.assess(situation).criticality
        predicted = self._transition_matrix().T @ self.belief
        weighted = predicted * self._observation_likelihood(instantaneous)
        self.belief = weighted / weighted.sum()
        regime = REGIMES[int(np.argmax(self.belief))]
        result = FilteredRisk(
            stamp=now,
            posterior=dict(zip(REGIMES, (float(p) for p in self.belief))),
            regime=regime,
            instantaneous=instantaneous,
            rescan_recommended=regime is Criticality.HIGH,
        )
        self.history.append(result)
        return result

    def reset(self) -> None:
        """Return to the prior belief (new area / new mission)."""
        self.belief = np.array([1.0, 0.0, 0.0])
        self.history.clear()
