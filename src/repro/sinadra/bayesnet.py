"""Discrete Bayesian networks with exact inference by variable elimination.

A small, dependency-light engine sufficient for SINADRA's situation risk
models: named nodes with finite state spaces, conditional probability
tables indexed by parent-state tuples, and posterior queries given hard
evidence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np


@dataclass
class DiscreteNode:
    """One network node.

    ``cpt`` maps a tuple of parent states (in ``parents`` order; the empty
    tuple for root nodes) to a probability vector over ``states``.
    """

    name: str
    states: list[str]
    parents: list[str] = field(default_factory=list)
    cpt: dict[tuple[str, ...], list[float]] = field(default_factory=dict)

    def validate(self, network: "BayesianNetwork") -> None:
        """Check the CPT is complete and each row is a distribution."""
        parent_spaces = [network.node(p).states for p in self.parents]
        for combo in itertools.product(*parent_spaces):
            if combo not in self.cpt:
                raise ValueError(f"{self.name}: missing CPT row for parents {combo}")
            row = self.cpt[combo]
            if len(row) != len(self.states):
                raise ValueError(f"{self.name}: CPT row {combo} has wrong arity")
            if any(p < 0.0 for p in row) or abs(sum(row) - 1.0) > 1e-9:
                raise ValueError(f"{self.name}: CPT row {combo} is not a distribution")


@dataclass
class _Factor:
    """A factor over a list of variables, stored as a dense array."""

    variables: list[str]
    cardinalities: list[int]
    values: np.ndarray

    def marginalize(self, var: str) -> "_Factor":
        axis = self.variables.index(var)
        return _Factor(
            variables=[v for v in self.variables if v != var],
            cardinalities=[c for i, c in enumerate(self.cardinalities) if i != axis],
            values=self.values.sum(axis=axis),
        )

    def multiply(self, other: "_Factor") -> "_Factor":
        all_vars = list(self.variables)
        all_cards = list(self.cardinalities)
        for v, c in zip(other.variables, other.cardinalities):
            if v not in all_vars:
                all_vars.append(v)
                all_cards.append(c)

        def broadcast(factor: "_Factor") -> np.ndarray:
            shape = [1] * len(all_vars)
            src_axes = [all_vars.index(v) for v in factor.variables]
            arr = factor.values
            # Move factor axes into the combined ordering.
            order = np.argsort(src_axes)
            arr = np.transpose(arr, axes=order)
            for axis in sorted(src_axes):
                shape[axis] = all_cards[axis]
            full = np.ones(shape)
            idx = [0] * len(all_vars)
            expand_shape = [
                all_cards[i] if i in src_axes else 1 for i in range(len(all_vars))
            ]
            return full * arr.reshape(expand_shape)

        return _Factor(
            variables=all_vars,
            cardinalities=all_cards,
            values=broadcast(self) * broadcast(other),
        )


@dataclass
class BayesianNetwork:
    """A directed acyclic network of :class:`DiscreteNode` objects."""

    nodes: dict[str, DiscreteNode] = field(default_factory=dict)
    _order: list[str] = field(default_factory=list)

    def add_node(self, node: DiscreteNode) -> DiscreteNode:
        """Add a node; parents must already be present (topological insert)."""
        for parent in node.parents:
            if parent not in self.nodes:
                raise ValueError(f"{node.name}: unknown parent {parent!r}")
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        self._order.append(node.name)
        return node

    def node(self, name: str) -> DiscreteNode:
        """Look up a node by name."""
        return self.nodes[name]

    def validate(self) -> None:
        """Validate every node's CPT."""
        for node in self.nodes.values():
            node.validate(self)

    # ----------------------------------------------------------- inference
    def _node_factor(self, node: DiscreteNode) -> _Factor:
        variables = node.parents + [node.name]
        cards = [len(self.node(p).states) for p in node.parents] + [len(node.states)]
        values = np.zeros(cards)
        parent_spaces = [self.node(p).states for p in node.parents]
        for combo in itertools.product(*parent_spaces):
            idx = tuple(
                self.node(p).states.index(s) for p, s in zip(node.parents, combo)
            )
            values[idx] = np.asarray(node.cpt[combo])
        return _Factor(variables=variables, cardinalities=cards, values=values)

    def query(
        self, target: str, evidence: dict[str, str] | None = None
    ) -> dict[str, float]:
        """Posterior P(target | evidence) by variable elimination."""
        evidence = evidence or {}
        if target not in self.nodes:
            raise ValueError(f"unknown target {target!r}")
        for var, state in evidence.items():
            if var not in self.nodes:
                raise ValueError(f"unknown evidence variable {var!r}")
            if state not in self.node(var).states:
                raise ValueError(f"{var!r} has no state {state!r}")
        if target in evidence:
            # Degenerate query: the posterior is a point mass on the
            # observed state.
            return {
                s: 1.0 if s == evidence[target] else 0.0
                for s in self.node(target).states
            }

        factors = [self._node_factor(n) for n in self.nodes.values()]
        # Condition each factor on the evidence by slicing.
        conditioned: list[_Factor] = []
        for factor in factors:
            values = factor.values
            variables = list(factor.variables)
            cards = list(factor.cardinalities)
            for var, state in evidence.items():
                if var in variables:
                    axis = variables.index(var)
                    state_idx = self.node(var).states.index(state)
                    values = np.take(values, state_idx, axis=axis)
                    del variables[axis]
                    del cards[axis]
            conditioned.append(_Factor(variables, cards, values))

        # Eliminate everything except the target, in insertion order.
        for var in self._order:
            if var == target or var in evidence:
                continue
            involved = [f for f in conditioned if var in f.variables]
            if not involved:
                continue
            product = involved[0]
            for f in involved[1:]:
                product = product.multiply(f)
            conditioned = [f for f in conditioned if var not in f.variables]
            conditioned.append(product.marginalize(var))

        result = conditioned[0]
        for f in conditioned[1:]:
            result = result.multiply(f)
        if result.variables != [target]:
            axis_order = [result.variables.index(target)]
            other = [i for i in range(len(result.variables)) if i not in axis_order]
            values = result.values.transpose(axis_order + other).reshape(
                len(self.node(target).states), -1
            ).sum(axis=1)
        else:
            values = result.values
        total = values.sum()
        if total <= 0.0:
            raise ValueError("evidence has zero probability under the model")
        probs = values / total
        return dict(zip(self.node(target).states, (float(p) for p in probs)))
