"""Message authentication for the ROS-like bus (the mitigation layer).

The attack trees name "message signing" and "authenticated transport" as
mitigations (Sec. III-B metadata); this module implements them so the
mitigation can be *evaluated*, not just recommended: an HMAC-SHA256
signer wraps payloads with a keyed tag and a monotonic sequence number,
and a verifying subscriber drops forgeries and replays before application
code sees them.

With signing deployed, the Fig. 6 spoofing attack still reaches the wire
(the IDS still sees and reports it) but no longer reaches the victim's
mapping logic — the defence-in-depth picture the co-engineering analysis
wants to quantify.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.middleware.rosbus import Message, RosBus


@dataclass(frozen=True)
class SignedPayload:
    """A payload wrapped with sender identity, sequence number, and tag."""

    sender: str
    seq: int
    body: Any
    tag: str


def _canonical(sender: str, seq: int, body: Any) -> bytes:
    return json.dumps(
        {"sender": sender, "seq": seq, "body": body},
        sort_keys=True,
        default=str,
    ).encode()


@dataclass
class MessageSigner:
    """Signs outgoing payloads for one node with a shared fleet key."""

    node: str
    key: bytes
    _seq: int = 0

    def sign(self, body: Any) -> SignedPayload:
        """Wrap ``body`` with the node identity and an HMAC tag."""
        self._seq += 1
        tag = hmac.new(
            self.key, _canonical(self.node, self._seq, body), hashlib.sha256
        ).hexdigest()
        return SignedPayload(sender=self.node, seq=self._seq, body=body, tag=tag)

    def publish(self, bus: RosBus, topic: str, body: Any) -> None:
        """Sign and publish in one step."""
        bus.publish(topic, self.sign(body), sender=self.node)


@dataclass
class VerifyingSubscriber:
    """Subscribes to a topic and delivers only authentic, fresh payloads.

    Rejections are counted by cause: ``bad_tag`` (forged or tampered),
    ``replay`` (sequence number not newer than the last accepted one from
    that sender), and ``unsigned`` (payload is not a SignedPayload at all).
    """

    bus: RosBus
    topic: str
    node: str
    key: bytes
    on_message: Callable[[str, Any], None]
    last_seq: dict[str, int] = field(default_factory=dict)
    rejected: dict[str, int] = field(
        default_factory=lambda: {"bad_tag": 0, "replay": 0, "unsigned": 0}
    )
    accepted: int = 0

    def __post_init__(self) -> None:
        self.bus.subscribe(self.topic, node=self.node, callback=self._handle)

    def _handle(self, message: Message) -> None:
        payload = message.data
        if not isinstance(payload, SignedPayload):
            self.rejected["unsigned"] += 1
            return
        expected = hmac.new(
            self.key,
            _canonical(payload.sender, payload.seq, payload.body),
            hashlib.sha256,
        ).hexdigest()
        if not hmac.compare_digest(expected, payload.tag):
            self.rejected["bad_tag"] += 1
            return
        if payload.seq <= self.last_seq.get(payload.sender, 0):
            self.rejected["replay"] += 1
            return
        self.last_seq[payload.sender] = payload.seq
        self.accepted += 1
        self.on_message(payload.sender, payload.body)
