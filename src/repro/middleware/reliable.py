"""Reliable point-to-point delivery on top of the (degraded) bus.

The telemetry topics stay fire-and-forget — loss there is a *signal* the
assurance layer consumes. Mission-critical exchanges (task handovers,
collaborative-landing setpoints) instead ride a :class:`ReliableChannel`:
per-message sequence numbers with gap detection and in-order delivery,
acknowledgements, retransmission with capped exponential backoff, and a
sustained-silence timeout that raises an explicit link-down signal for
the Communication-based Localization ConSert instead of stalling forever.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.middleware.rosbus import Message, RosBus, Subscription


@dataclass
class ReliableChannelStats:
    """Protocol counters for one channel endpoint."""

    sent: int = 0
    retries: int = 0
    acked: int = 0
    delivered: int = 0
    duplicates: int = 0
    gaps: int = 0


@dataclass
class _PendingSend:
    seq: int
    data: Any
    first_sent: float
    next_retry: float
    backoff_s: float
    attempts: int = 1


@dataclass
class ReliableChannel:
    """One endpoint of a reliable ``local`` → ``peer`` message stream.

    Both nodes instantiate the channel with mirrored ``local``/``peer``;
    each endpoint then both sends (``send`` + periodic ``step``) and
    receives (in-order ``on_deliver`` callbacks). Retransmission backoff
    doubles from ``retry_after_s`` up to ``max_backoff_s`` — so the retry
    count during an outage grows linearly with outage duration at a known
    bounded rate, never exponentially with queue depth. When the oldest
    unacked message has waited longer than ``link_down_after_s`` the
    channel declares the link down (``on_link_change(False)``); the first
    acknowledgement that makes it back declares it up again.
    """

    bus: RosBus
    local: str
    peer: str
    name: str = "reliable"
    on_deliver: Callable[[int, Any], None] | None = None
    on_link_change: Callable[[bool], None] | None = None
    retry_after_s: float = 0.5
    max_backoff_s: float = 4.0
    link_down_after_s: float = 6.0
    link_up: bool = True
    stats: ReliableChannelStats = field(default_factory=ReliableChannelStats)
    _seq: itertools.count = field(default_factory=itertools.count, repr=False)
    _pending: dict[int, _PendingSend] = field(default_factory=dict, repr=False)
    _expected: int = field(default=0, repr=False)
    _reorder: dict[int, Any] = field(default_factory=dict, repr=False)
    _subs: list[Subscription] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.local == self.peer:
            raise ValueError("a channel needs two distinct endpoints")
        self._subs = [
            self.bus.subscribe(
                self._topic(self.peer, self.local, "data"), self.local, self._on_data
            ),
            self.bus.subscribe(
                self._topic(self.local, self.peer, "ack"), self.local, self._on_ack
            ),
        ]

    def _topic(self, src: str, dst: str, kind: str) -> str:
        # Stream topics are named by the data direction; acks for the
        # src->dst stream are published by dst on the matching ack topic.
        return f"/{self.name}/{src}/{dst}/{kind}"

    # ---------------------------------------------------------------- send
    def send(self, data: Any, now: float) -> int:
        """Queue ``data`` for reliable delivery; returns its sequence number."""
        seq = next(self._seq)
        self._pending[seq] = _PendingSend(
            seq=seq,
            data=data,
            first_sent=now,
            next_retry=now + self.retry_after_s,
            backoff_s=self.retry_after_s,
        )
        self.stats.sent += 1
        self._publish(seq, data)
        return seq

    def _publish(self, seq: int, data: Any) -> None:
        self.bus.publish(
            self._topic(self.local, self.peer, "data"),
            {"seq": seq, "data": data},
            sender=self.local,
        )

    def step(self, now: float) -> None:
        """Retransmit overdue messages; update the link-down verdict."""
        # Snapshot: on a synchronous bus the retransmit's ack can arrive
        # inline and pop entries from _pending while we iterate.
        for pending in list(self._pending.values()):
            if pending.next_retry <= now:
                self._publish(pending.seq, pending.data)
                pending.attempts += 1
                self.stats.retries += 1
                pending.backoff_s = min(pending.backoff_s * 2.0, self.max_backoff_s)
                pending.next_retry = now + pending.backoff_s
        if self._pending:
            oldest = min(p.first_sent for p in self._pending.values())
            if now - oldest > self.link_down_after_s:
                self._set_link(False)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet acknowledged."""
        return len(self._pending)

    # ------------------------------------------------------------- receive
    def _on_data(self, message: Message) -> None:
        seq = int(message.data["seq"])
        # Always (re-)ack: a lost ack shows up here as a duplicate data copy.
        self.bus.publish(
            self._topic(self.peer, self.local, "ack"),
            {"seq": seq},
            sender=self.local,
        )
        if seq < self._expected or seq in self._reorder:
            self.stats.duplicates += 1
            return
        if seq > self._expected:
            self.stats.gaps += 1
            self._reorder[seq] = message.data["data"]
            return
        self._deliver(seq, message.data["data"])
        while self._expected in self._reorder:
            self._deliver(self._expected, self._reorder.pop(self._expected))

    def _deliver(self, seq: int, data: Any) -> None:
        self._expected = seq + 1
        self.stats.delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(seq, data)

    def _on_ack(self, message: Message) -> None:
        seq = int(message.data["seq"])
        if self._pending.pop(seq, None) is not None:
            self.stats.acked += 1
        self._set_link(True)

    def _set_link(self, up: bool) -> None:
        if up != self.link_up:
            self.link_up = up
            if self.on_link_change is not None:
                self.on_link_change(up)

    def close(self) -> None:
        """Unsubscribe both endpoints' topics (e.g. on UAV shutdown)."""
        for sub in self._subs:
            sub.unsubscribe()
