"""In-process ROS-style topic bus with message provenance.

ROS's publish/subscribe architecture "brings certain security
vulnerabilities, such as the risk of eavesdropping, man-in-the-middle
attacks, and data injection" (paper Sec. I). To reproduce those attack
surfaces faithfully the bus performs **no authentication**: any node handle
may publish to any topic. Every delivered message carries provenance
metadata (claimed sender, true origin, sequence number, timestamp) that the
intrusion-detection system inspects — mirroring how a network IDS sees
packet headers that application code does not.
"""

from __future__ import annotations

import fnmatch
import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.obs import OBS


@dataclass(frozen=True)
class Message:
    """A single message delivered on the bus.

    ``sender`` is the node name the publisher *claims*; ``origin`` is the
    true producing node recorded by the transport. Under normal operation
    the two match; a spoofing attacker forges ``sender`` while ``origin``
    reveals the injection point (only visible to transport-level observers
    such as the IDS, never to ordinary subscribers).
    """

    topic: str
    data: Any
    sender: str
    origin: str
    seq: int
    stamp: float

    @property
    def is_forged(self) -> bool:
        """True when the claimed sender differs from the true origin."""
        return self.sender != self.origin


@dataclass
class Subscription:
    """A live subscription; deactivate with :meth:`unsubscribe`."""

    topic: str
    node: str
    callback: Callable[[Message], None]
    active: bool = True

    def unsubscribe(self) -> None:
        """Stop delivering messages to this subscription."""
        self.active = False


class TrafficLog:
    """Bounded chronological record of all bus traffic.

    This is the vantage point of the network IDS: it sees transport-level
    provenance (``origin``) that application subscribers do not.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        self._capacity = capacity
        self._messages: list[Message] = []

    def record(self, message: Message) -> None:
        """Append a message, evicting the oldest half when over capacity."""
        self._messages.append(message)
        if len(self._messages) > self._capacity:
            del self._messages[: self._capacity // 2]

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def on_topic(self, pattern: str) -> list[Message]:
        """Messages whose topic matches a glob pattern (e.g. ``/uav*/pose``)."""
        return [m for m in self._messages if fnmatch.fnmatch(m.topic, pattern)]

    def since(self, stamp: float) -> list[Message]:
        """Messages recorded at or after ``stamp``."""
        return [m for m in self._messages if m.stamp >= stamp]


class RosBus:
    """Topic-based publish/subscribe bus shared by all agents in a simulation.

    The bus is synchronous: ``publish`` invokes every active subscriber
    callback before returning, in subscription order, matching the
    single-threaded stepping of the simulation.
    """

    def __init__(self) -> None:
        self._subs: dict[str, list[Subscription]] = defaultdict(list)
        self._seq = itertools.count()
        self._interceptors: list[Callable[[Message], Message | None]] = []
        self.traffic = TrafficLog()
        self.clock = 0.0

    def advance_clock(self, now: float) -> None:
        """Set the bus timestamp used for subsequently published messages."""
        self.clock = now

    def subscribe(
        self, topic: str, node: str, callback: Callable[[Message], None]
    ) -> Subscription:
        """Register ``callback`` for messages on ``topic``; returns a handle."""
        sub = Subscription(topic=topic, node=node, callback=callback)
        self._subs[topic].append(sub)
        return sub

    def add_interceptor(self, fn: Callable[[Message], "Message | None"]) -> None:
        """Install a transport-level interceptor (used by MITM attacks).

        Interceptors run in installation order; each may return a replacement
        message or ``None`` to drop the message entirely.
        """
        self._interceptors.append(fn)

    def publish(
        self,
        topic: str,
        data: Any,
        sender: str,
        origin: str | None = None,
        stamp: float | None = None,
    ) -> Message | None:
        """Publish ``data`` on ``topic``.

        ``origin`` defaults to ``sender`` (honest publication). Returns the
        delivered message, or ``None`` if an interceptor dropped it.

        Observability contract (when :data:`repro.obs.OBS` is enabled):
        ``bus_published_total{topic}`` counts exactly the messages the
        traffic log records — interceptor-dropped messages count under
        ``bus_dropped_total{topic, reason=intercepted}`` instead, and
        never both. ``bus_delivered_total{topic}`` counts subscriber
        callbacks actually invoked (inactive subscriptions receive, and
        count, nothing).
        """
        # Hot path: telemetry floods this with fleet_size × step_rate
        # messages, so the Message is built by writing the instance dict
        # directly — identical object, ~half the cost of the generated
        # frozen-dataclass __init__ (which funnels every field through
        # object.__setattr__).
        message = Message.__new__(Message)
        message.__dict__.update({
            "topic": topic,
            "data": data,
            "sender": sender,
            "origin": origin if origin is not None else sender,
            "seq": next(self._seq),
            "stamp": stamp if stamp is not None else self.clock,
        })
        if self._interceptors:
            message = self._intercept(message)
            if message is None:
                return None
        self.traffic.record(message)
        obs_on = OBS.enabled
        if obs_on:
            OBS.metrics.inc("bus_published_total", topic=topic)
        subs = self._subs.get(topic)
        if subs:
            for sub in list(subs):
                if sub.active:
                    if obs_on:
                        self._count_delivery(message)
                    sub.callback(message)
        return message

    def publish_many(
        self, items: list[tuple[str, Any, str]], stamp: float
    ) -> None:
        """Publish a batch of ``(topic, data, sender)`` honest messages.

        Semantically identical to calling :meth:`publish` once per item in
        order (same messages, sequence numbers, traffic log, and
        subscriber callbacks); exists because per-call overhead dominates
        when the vectorized fleet engine emits fleet-size telemetry
        batches every step. Subclasses that override :meth:`publish`
        (e.g. a lossy transport) are routed through their override.
        """
        if type(self).publish is not RosBus.publish:
            for topic, data, sender in items:
                self.publish(topic, data, sender, None, stamp)
            return
        interceptors = self._interceptors
        traffic = self.traffic
        record = traffic.record
        log_append = traffic._messages.append
        log_roomy = len(traffic._messages) + len(items) <= traffic._capacity
        subs_map = self._subs
        seq = self._seq
        obs_on = OBS.enabled
        for topic, data, sender in items:
            message = Message.__new__(Message)
            message.__dict__.update({
                "topic": topic,
                "data": data,
                "sender": sender,
                "origin": sender,
                "seq": next(seq),
                "stamp": stamp,
            })
            if interceptors:
                message = self._intercept(message)
                if message is None:
                    continue
            if log_roomy:
                # Same outcome as record(); skips its capacity check when
                # this whole batch provably fits.
                log_append(message)
            else:
                record(message)
            if obs_on:
                OBS.metrics.inc("bus_published_total", topic=topic)
            subs = subs_map.get(topic)
            if subs:
                for sub in list(subs):
                    if sub.active:
                        if obs_on:
                            self._count_delivery(message)
                        sub.callback(message)

    def _intercept(self, message: Message) -> Message | None:
        """Run the interceptor chain; accounts for transport-level drops."""
        for interceptor in self._interceptors:
            replaced = interceptor(message)
            if replaced is None:
                if OBS.enabled:
                    OBS.metrics.inc(
                        "bus_dropped_total",
                        topic=message.topic,
                        reason="intercepted",
                    )
                return None
            message = replaced
        return message

    def _count_delivery(self, message: Message) -> None:
        """Metric hook for one subscriber callback about to be invoked.

        Callers guard on ``OBS.enabled`` — this is never reached when
        observability is off.
        """
        OBS.metrics.inc("bus_delivered_total", topic=message.topic)
        OBS.metrics.observe(
            "bus_delivery_latency_s",
            max(0.0, self.clock - message.stamp),
            topic=message.topic,
        )

    def topics(self) -> list[str]:
        """All topics with at least one subscription, sorted."""
        return sorted(t for t, subs in self._subs.items() if any(s.active for s in subs))

    def subscriber_nodes(self, topic: str) -> list[str]:
        """Names of nodes actively subscribed to ``topic``."""
        return [s.node for s in self._subs.get(topic, ()) if s.active]
