"""ROS-like publish/subscribe middleware substrate.

The paper's multi-UAV platform runs on ROS Noetic; its security experiments
attack the ROS message channel (Sec. V-C, "ROS message spoofing attack").
This subpackage provides an in-process topic bus with per-message provenance
so that the intrusion-detection system and Security EDDI can observe and
classify traffic, plus attack injectors that reproduce the spoofing,
man-in-the-middle, and eavesdropping threat models the paper cites.

The degraded-link layer (:mod:`repro.middleware.degraded`) inserts lossy,
delayed, partitionable per-UAV-pair links under the same bus API, and
:mod:`repro.middleware.reliable` provides ack/retry delivery with an
explicit link-down signal on top — the realistic mesh transport the
Communication-based Localization ConSert monitors.
"""

from repro.middleware.rosbus import Message, RosBus, Subscription, TrafficLog
from repro.middleware.auth import MessageSigner, SignedPayload, VerifyingSubscriber
from repro.middleware.degraded import DegradedBus, LinkModel, LinkStats
from repro.middleware.reliable import ReliableChannel, ReliableChannelStats
from repro.middleware.attacks import (
    Attacker,
    EavesdropAttack,
    MitmAttack,
    SpoofingAttack,
)

__all__ = [
    "Message",
    "RosBus",
    "Subscription",
    "TrafficLog",
    "DegradedBus",
    "LinkModel",
    "LinkStats",
    "ReliableChannel",
    "ReliableChannelStats",
    "Attacker",
    "EavesdropAttack",
    "MitmAttack",
    "SpoofingAttack",
    "MessageSigner",
    "SignedPayload",
    "VerifyingSubscriber",
]
