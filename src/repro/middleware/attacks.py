"""Attack injectors against the ROS-like bus.

Reproduces the threat models the paper attributes to ROS deployments
(Sec. I): data injection / message spoofing (the Fig. 6 experiment),
man-in-the-middle tampering, and eavesdropping. Each attack is a stateful
object stepped by the simulation between ``t_start`` and ``t_stop``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.middleware.rosbus import Message, RosBus


@dataclass
class Attacker:
    """Base class for scripted attacks on the bus.

    Subclasses override :meth:`step`. ``active_at`` gates the attack window.
    """

    bus: RosBus
    t_start: float
    t_stop: float = float("inf")
    name: str = "attacker"

    def active_at(self, now: float) -> bool:
        """Whether the attack window covers simulation time ``now``."""
        return self.t_start <= now < self.t_stop

    def step(self, now: float) -> None:
        """Advance the attack by one simulation step (override)."""


@dataclass
class SpoofingAttack(Attacker):
    """ROS message spoofing: inject falsified data under a victim's identity.

    This is the attack of the paper's Fig. 6: "falsified data are sent to
    manipulate the UAVs area mapping system". Each step inside the attack
    window publishes a forged message on ``topic`` claiming to come from
    ``spoofed_sender`` while the transport records the true ``name`` origin.

    ``payload_fn(now)`` produces the falsified data — e.g. a displaced GPS
    fix or a manipulated waypoint.
    """

    topic: str = "/uav/pose"
    spoofed_sender: str = "uav"
    payload_fn: Callable[[float], Any] = lambda now: None
    rate_hz: float = 10.0
    _next_emit: float = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._next_emit is None:
            self._next_emit = self.t_start

    def step(self, now: float) -> None:
        """Inject forged messages at ``rate_hz`` while the window is active."""
        if not self.active_at(now):
            return
        while now >= self._next_emit:
            self.bus.publish(
                topic=self.topic,
                data=self.payload_fn(now),
                sender=self.spoofed_sender,
                origin=self.name,
                stamp=now,
            )
            self._next_emit += 1.0 / self.rate_hz


@dataclass
class MitmAttack(Attacker):
    """Man-in-the-middle: transparently rewrite messages on selected topics.

    Installs a transport interceptor that applies ``mutate(message, data)``
    to the payload of every matching message while the window is active.
    """

    topic: str = "/uav/pose"
    mutate: Callable[[Message, Any], Any] = lambda message, data: data
    _installed: bool = field(default=False, repr=False)

    def step(self, now: float) -> None:
        """Arm the interceptor once the attack window opens."""
        if self._installed or now < self.t_start:
            return
        self._installed = True

        def interceptor(message: Message) -> Message:
            if message.topic != self.topic or not self.active_at(message.stamp):
                return message
            return Message(
                topic=message.topic,
                data=self.mutate(message, message.data),
                sender=message.sender,
                origin=self.name,
                seq=message.seq,
                stamp=message.stamp,
            )

        self.bus.add_interceptor(interceptor)


@dataclass
class EavesdropAttack(Attacker):
    """Passive eavesdropping: silently record traffic on matching topics.

    Leaves no transport trace (the realistic worst case for a passive
    adversary); the captured messages accumulate in :attr:`captured`.
    """

    topic_pattern: str = "/*"
    captured: list[Message] = field(default_factory=list)
    _installed: bool = field(default=False, repr=False)

    def step(self, now: float) -> None:
        """Arm the passive tap once the attack window opens."""
        if self._installed or now < self.t_start:
            return
        self._installed = True

        def interceptor(message: Message) -> Message:
            import fnmatch

            if self.active_at(message.stamp) and fnmatch.fnmatch(
                message.topic, self.topic_pattern
            ):
                self.captured.append(message)
            return message

        self.bus.add_interceptor(interceptor)
