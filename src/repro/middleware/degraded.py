"""Degraded-link transport: lossy, delayed, partitionable bus delivery.

The stock :class:`~repro.middleware.rosbus.RosBus` delivers every message
instantly and losslessly, so the connection-state monitoring the paper's
Communication-based Localization ConSert performs ("monitors the internal
signal and connection states to other nearby UAVs") is never stressed.
This module inserts a per-UAV-pair :class:`LinkModel` between publishers
and subscribers: burst packet loss (any duck-typed channel with
``step(dt)`` / ``deliver()`` — the Gilbert–Elliott channel from
``repro.safedrones.communication`` fits), constant latency plus uniform
jitter drained by ``advance_clock``, a per-second bandwidth cap, and
scripted outage windows. :class:`DegradedBus` preserves the full
``RosBus`` API and provenance semantics: with no links configured it is
byte-for-byte equivalent to the perfect bus, so every existing subscriber
keeps working unchanged.

Node-level blackouts and fleet partitions are bus-level state (they model
radio failure and geographic separation, not a single pairwise link) and
are driven by the ``comm_blackout`` / ``network_partition`` fault
factories in :mod:`repro.uav.faults`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.middleware.rosbus import Message, RosBus
from repro.obs import OBS


@dataclass
class LinkStats:
    """Delivery accounting for one link (or the whole bus)."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_outage: int = 0
    dropped_bandwidth: int = 0
    dropped_unsubscribed: int = 0
    delayed: int = 0

    @property
    def dropped(self) -> int:
        """Total packets dropped for any reason."""
        return (
            self.dropped_loss
            + self.dropped_outage
            + self.dropped_bandwidth
            + self.dropped_unsubscribed
        )

    @property
    def delivery_ratio(self) -> float:
        """Fraction of transmitted packets that got through (1.0 pre-traffic)."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent


@dataclass
class LinkModel:
    """One directed-use, symmetric radio link between a pair of nodes.

    ``channel`` is any burst-loss process exposing ``step(dt)`` and
    ``deliver() -> bool`` (the SafeDrones Gilbert–Elliott channel is the
    intended implementation; the middleware layer stays technology-free by
    taking it duck-typed). ``loss_probability`` adds i.i.d. loss on top —
    either mechanism alone is typical. Latency plus uniform jitter delays
    delivery; ``bandwidth_msgs_per_s`` caps throughput per one-second
    bucket (excess packets are dropped, UDP-style); scheduled outages
    black the link out completely.
    """

    rng: np.random.Generator | None = None
    channel: Any | None = None
    loss_probability: float = 0.0
    latency_s: float = 0.0
    jitter_s: float = 0.0
    bandwidth_msgs_per_s: float | None = None
    stats: LinkStats = field(default_factory=LinkStats)
    outages: list[tuple[float, float]] = field(default_factory=list)
    _bucket: int = field(default=-1, repr=False)
    _bucket_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )
        if self.rng is None:
            self.rng = np.random.default_rng(0)

    def schedule_outage(self, start_s: float, end_s: float) -> None:
        """Black the link out for ``[start_s, end_s)`` simulated seconds."""
        if end_s <= start_s:
            raise ValueError("outage end must be after start")
        self.outages.append((start_s, end_s))

    def blacked_out(self, now: float) -> bool:
        """Whether a scheduled outage covers ``now``."""
        return any(start <= now < end for start, end in self.outages)

    def step(self, dt: float) -> None:
        """Advance the burst-loss channel state by ``dt`` seconds."""
        if self.channel is not None and dt > 0.0:
            self.channel.step(dt)

    def transmit(self, now: float) -> float | None:
        """One packet attempt at ``now``: delivery time, or None if lost."""
        self.stats.sent += 1
        if self.blacked_out(now):
            self.stats.dropped_outage += 1
            return None
        if self.bandwidth_msgs_per_s is not None:
            bucket = math.floor(now)
            if bucket != self._bucket:
                self._bucket = bucket
                self._bucket_count = 0
            if self._bucket_count >= self.bandwidth_msgs_per_s:
                self.stats.dropped_bandwidth += 1
                return None
            self._bucket_count += 1
        if self.channel is not None and not self.channel.deliver():
            self.stats.dropped_loss += 1
            return None
        if self.loss_probability > 0.0 and self.rng.random() < self.loss_probability:
            self.stats.dropped_loss += 1
            return None
        self.stats.delivered += 1
        delay = self.latency_s
        if self.jitter_s > 0.0:
            delay += float(self.rng.uniform(0.0, self.jitter_s))
        if delay > 0.0:
            self.stats.delayed += 1
        return now + delay


def _pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class DegradedBus(RosBus):
    """A ``RosBus`` whose deliveries traverse per-pair degraded links.

    Transport semantics: ``publish`` runs interceptors and records the
    message in the traffic log exactly like ``RosBus`` (the IDS sees what
    the transmitter put on the air), then each subscriber's copy crosses
    the link between the message's true ``origin`` node and the
    subscriber's node. Pairs without a configured :class:`LinkModel` (and
    self-delivery) are perfect — so a bare ``DegradedBus`` is byte-for-byte
    equivalent to ``RosBus``. Delayed copies queue and are delivered by
    ``advance_clock`` in timestamp order.
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = LinkStats()
        self._links: dict[tuple[str, str], LinkModel] = {}
        self._node_loss: dict[str, float] = {}
        self._down_nodes: set[str] = set()
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []
        self._pending: list[tuple[float, int, Any, Message]] = []
        self._tiebreak = itertools.count()

    # ------------------------------------------------------- link wiring
    def set_link(self, node_a: str, node_b: str, link: LinkModel) -> LinkModel:
        """Install ``link`` on the (symmetric) pair ``node_a``/``node_b``."""
        if node_a == node_b:
            raise ValueError("a node has no link to itself")
        self._links[_pair(node_a, node_b)] = link
        return link

    def link_between(self, node_a: str, node_b: str) -> LinkModel | None:
        """The link configured for a pair, or None (perfect delivery)."""
        return self._links.get(_pair(node_a, node_b))

    def links_of(self, node: str) -> list[LinkModel]:
        """All configured links touching ``node``."""
        return [link for pair, link in self._links.items() if node in pair]

    # ------------------------------------------- node/fleet level faults
    def set_node_down(self, node: str, down: bool = True) -> None:
        """Radio blackout: while down, nothing reaches or leaves ``node``."""
        if down:
            self._down_nodes.add(node)
        else:
            self._down_nodes.discard(node)

    def node_down(self, node: str) -> bool:
        """Whether ``node`` is currently blacked out."""
        return node in self._down_nodes

    def set_node_loss(self, node: str, loss_probability: float) -> None:
        """Extra i.i.d. loss applied to every packet to or from ``node``."""
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        if loss_probability == 0.0:
            self._node_loss.pop(node, None)
        else:
            self._node_loss[node] = loss_probability

    def add_partition(
        self, group_a: tuple[str, ...], group_b: tuple[str, ...]
    ) -> tuple[frozenset[str], frozenset[str]]:
        """Partition the network: no traffic crosses between the groups.

        Returns a handle for :meth:`remove_partition`.
        """
        handle = (frozenset(group_a), frozenset(group_b))
        if handle[0] & handle[1]:
            raise ValueError("partition groups must be disjoint")
        self._partitions.append(handle)
        return handle

    def remove_partition(
        self, handle: tuple[frozenset[str], frozenset[str]]
    ) -> None:
        """Heal a partition previously created by :meth:`add_partition`."""
        self._partitions.remove(handle)

    def partitioned(self, node_a: str, node_b: str) -> bool:
        """Whether an active partition separates the two nodes."""
        return any(
            (node_a in a and node_b in b) or (node_a in b and node_b in a)
            for a, b in self._partitions
        )

    # ------------------------------------------------------------ transport
    def _admit(self, origin: str, dest: str, now: float) -> float | None:
        """Delivery time for one subscriber copy, or None when dropped."""
        if origin == dest:
            return now
        if origin in self._down_nodes or dest in self._down_nodes:
            self.stats.dropped_outage += 1
            return None
        if self.partitioned(origin, dest):
            self.stats.dropped_outage += 1
            return None
        node_loss = self._node_loss
        if node_loss:
            p_keep = (1.0 - node_loss.get(origin, 0.0)) * (
                1.0 - node_loss.get(dest, 0.0)
            )
            if p_keep < 1.0 and self.rng.random() >= p_keep:
                self.stats.dropped_loss += 1
                return None
        link = self._links.get(_pair(origin, dest))
        if link is None:
            return now
        deliver_at = link.transmit(now)
        if deliver_at is None:
            self.stats.dropped_loss += 1
        return deliver_at

    def publish(
        self,
        topic: str,
        data: Any,
        sender: str,
        origin: str | None = None,
        stamp: float | None = None,
    ) -> Message | None:
        """Publish with per-subscriber link traversal (see class docstring).

        Bus-level ``stats.delivered`` counts subscriber callbacks that
        actually ran — a delayed copy counts when it drains, and a copy
        whose subscriber unsubscribed while it was in flight counts
        under ``stats.dropped_unsubscribed`` instead (it never reached
        anyone). The per-topic observability counters follow the same
        contract as :meth:`RosBus.publish`.
        """
        message = Message(
            topic=topic,
            data=data,
            sender=sender,
            origin=origin if origin is not None else sender,
            seq=next(self._seq),
            stamp=stamp if stamp is not None else self.clock,
        )
        message = self._intercept(message)
        if message is None:
            return None
        self.traffic.record(message)
        obs_on = OBS.enabled
        if obs_on:
            OBS.metrics.inc("bus_published_total", topic=topic)
        for sub in list(self._subs.get(topic, ())):
            if not sub.active:
                continue
            self.stats.sent += 1
            deliver_at = self._admit(message.origin, sub.node, self.clock)
            if deliver_at is None:
                if obs_on:
                    OBS.metrics.inc(
                        "bus_dropped_total", topic=topic, reason="link"
                    )
                continue
            if deliver_at <= self.clock:
                self.stats.delivered += 1
                if obs_on:
                    self._count_delivery(message)
                sub.callback(message)
            else:
                heapq.heappush(
                    self._pending,
                    (deliver_at, next(self._tiebreak), sub, message),
                )
        return message

    def advance_clock(self, now: float) -> None:
        """Advance time, step every link's channel, drain due deliveries."""
        dt = now - self.clock
        super().advance_clock(now)
        if dt > 0.0:
            for link in self._links.values():
                link.step(dt)
        while self._pending and self._pending[0][0] <= now:
            _, _, sub, message = heapq.heappop(self._pending)
            if sub.active:
                self.stats.delivered += 1
                if OBS.enabled:
                    self._count_delivery(message)
                sub.callback(message)
            else:
                # The subscriber went away while the copy was in flight:
                # nothing was delivered, so don't count one.
                self.stats.dropped_unsubscribed += 1
                if OBS.enabled:
                    OBS.metrics.inc(
                        "bus_dropped_total",
                        topic=message.topic,
                        reason="unsubscribed",
                    )

    def pending_count(self) -> int:
        """Number of in-flight (delayed, not yet delivered) messages."""
        return len(self._pending)
