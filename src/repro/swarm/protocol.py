"""Leader–follower tasking protocol: state machines + deterministic ledger.

The protocol is deliberately *pure*: leaders and followers exchange
messages over whatever bus they are handed (in production a
:class:`~repro.middleware.degraded.DegradedBus` whose links encode comm
radius and loss) and never touch physics. Motion enters through two
narrow call-ins — the simulation tells a follower :meth:`when it arrived
<FollowerProtocol.arrived>` at its task, and tells a leader :meth:`what
it detected <LeaderProtocol.note_task>`. Everything else — assignment,
ACKs, retransmission, timeout/re-assign with bounded backoff, liveness
via heartbeats, re-homing after demotion — is message-driven, which is
what makes the conformance suite (``tests/test_swarm_protocol.py``) able
to pin the exact message sequences.

Wire format (all payloads are plain JSON-able dicts):

``/swarm/<src>/<dst>/data`` + ``…/ack``
    The per-pair :class:`~repro.middleware.reliable.ReliableChannel`
    streams. Leader→follower carries ``{"type": "assign", "task", "pos",
    "attempt"}``; follower→leader carries ``{"type": "confirm", "task",
    "t_visit"}`` and ``{"type": "reject", "task"}``.
``/swarm/hb/<leader>``
    Fire-and-forget follower heartbeats ``{"from", "t"}`` — loss here is
    a *signal* (sustained silence ⇒ the leader declares the follower
    dead and returns its task to the pool).
``/swarm/ctl/<leader>``
    Adoption control: ``{"type": "hello", "from", "t"}`` published by a
    follower re-homing to a surviving leader; the leader answers by
    opening a fresh reliable channel pair.
``/swarm/ctl/f/<follower>``
    Rejoin control: a leader hearing heartbeats from a follower it does
    not know (it declared the follower dead during an out-of-range
    excursion and tore the channel down) answers ``{"type": "rejoin",
    "leader"}``; the follower resets its channel and re-hellos, so both
    endpoints restart their sequence space together instead of
    deadlocking on mismatched stream state.

Determinism: every iteration over followers or tasks is explicitly
sorted, timeouts fire in poi-id order, and the ledger serializes with
sorted keys — so one seed produces one byte-exact ledger at any worker
count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.middleware.reliable import ReliableChannel
from repro.middleware.rosbus import Message, RosBus, Subscription
from repro.obs import OBS


class TaskState:
    """Ledger states for a visit task (plain strings: JSON-friendly)."""

    PENDING = "pending"
    ASSIGNED = "assigned"
    SERVICED = "serviced"
    ORPHANED = "orphaned"


class FollowerState:
    """Follower behavior states."""

    LOITER = "loiter"
    ENROUTE = "enroute"
    VISITING = "visiting"


@dataclass
class SwarmProtocolConfig:
    """Timing knobs shared by both roles of the tasking protocol."""

    task_timeout_s: float = 20.0
    reassign_backoff_s: float = 5.0
    reassign_backoff_max_s: float = 40.0
    follower_dead_after_s: float = 15.0
    heartbeat_s: float = 5.0
    visit_dwell_s: float = 2.0
    retry_after_s: float = 0.5
    max_backoff_s: float = 4.0
    link_down_after_s: float = 6.0

    def channel(self, bus: RosBus, local: str, peer: str, **kwargs: Any) -> ReliableChannel:
        """A reliable channel endpoint with this config's retransmit knobs."""
        return ReliableChannel(
            bus=bus,
            local=local,
            peer=peer,
            name="swarm",
            retry_after_s=self.retry_after_s,
            max_backoff_s=self.max_backoff_s,
            link_down_after_s=self.link_down_after_s,
            **kwargs,
        )


@dataclass
class Assignment:
    """One open-or-closed interval during which a follower owned a task."""

    t_assign: float
    follower: str
    t_closed: float | None = None
    outcome: str | None = None  # confirmed | timeout | follower_lost | rehome | horizon

    def to_dict(self) -> dict[str, Any]:
        return {
            "t_assign": self.t_assign,
            "follower": self.follower,
            "t_closed": self.t_closed,
            "outcome": self.outcome,
        }


@dataclass
class Task:
    """Ledger entry for one detected point of interest."""

    poi_id: str
    pos: tuple[float, float]
    t_detected: float
    detected_by: str
    state: str = TaskState.PENDING
    owner: str | None = None
    leader: str | None = None
    attempts: int = 0
    next_eligible_s: float = 0.0
    assignments: list[Assignment] = field(default_factory=list)
    t_serviced: float | None = None
    orphan_reason: str | None = None

    @property
    def service_latency_s(self) -> float | None:
        """Detection → confirmed-visit latency; ``None`` until serviced."""
        if self.t_serviced is None:
            return None
        return self.t_serviced - self.t_detected

    def open_assignment(self) -> Assignment | None:
        if self.assignments and self.assignments[-1].t_closed is None:
            return self.assignments[-1]
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "poi_id": self.poi_id,
            "pos": [self.pos[0], self.pos[1]],
            "t_detected": self.t_detected,
            "detected_by": self.detected_by,
            "state": self.state,
            "owner": self.owner,
            "leader": self.leader,
            "attempts": self.attempts,
            "assignments": [a.to_dict() for a in self.assignments],
            "t_serviced": self.t_serviced,
            "orphan_reason": self.orphan_reason,
        }


class SwarmLedger:
    """The shared task ledger — the experiment's measurement surface.

    Leaders mutate it through the protocol; the experiment reads service
    latency, coverage, and orphan accounting out of it. Serialization is
    key-sorted and iteration-order independent, so
    :meth:`fingerprint` is a determinism oracle: same seed ⇒ same hex.
    """

    def __init__(self) -> None:
        self.tasks: dict[str, Task] = {}

    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, poi_id: str) -> bool:
        return poi_id in self.tasks

    def get(self, poi_id: str) -> Task:
        return self.tasks[poi_id]

    def add(self, task: Task) -> None:
        if task.poi_id in self.tasks:
            raise ValueError(f"duplicate task {task.poi_id!r}")
        self.tasks[task.poi_id] = task

    def in_state(self, state: str) -> list[Task]:
        return [self.tasks[k] for k in sorted(self.tasks) if self.tasks[k].state == state]

    def to_dict(self) -> dict[str, Any]:
        return {poi_id: self.tasks[poi_id].to_dict() for poi_id in sorted(self.tasks)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()


@dataclass
class _FollowerSlot:
    """Leader-side bookkeeping for one roster member."""

    channel: ReliableChannel
    last_heard: float
    busy_with: str | None = None


class LeaderProtocol:
    """Explorer-leader role: detect, assign, supervise, recover.

    One instance per leader UAV. The leader keeps a roster of followers
    (one reliable channel each), pushes visit tasks to idle followers in
    deterministic order, and claws tasks back when a follower goes
    silent, a visit times out, or the squad is demoted.
    """

    def __init__(
        self,
        bus: RosBus,
        name: str,
        followers: list[str],
        ledger: SwarmLedger,
        config: SwarmProtocolConfig | None = None,
        now: float = 0.0,
    ) -> None:
        self.bus = bus
        self.name = name
        self.ledger = ledger
        self.config = config or SwarmProtocolConfig()
        self.demoted = False
        self.counters = {
            "assigns": 0,
            "reassigns": 0,
            "timeouts": 0,
            "follower_deaths": 0,
            "confirms": 0,
            "duplicate_confirms": 0,
            "stale_confirms": 0,
            "rejects": 0,
            "adoptions": 0,
            "heartbeats": 0,
            "rejoins_sent": 0,
        }
        # poi_ids this leader currently owns (pending or assigned); keeps
        # the per-tick scans O(backlog) instead of O(|ledger|).
        self._active: set[str] = set()
        self._slots: dict[str, _FollowerSlot] = {}
        self._subs: list[Subscription] = [
            bus.subscribe(f"/swarm/hb/{name}", name, self._on_heartbeat),
            bus.subscribe(f"/swarm/ctl/{name}", name, self._on_control),
        ]
        for fid in sorted(followers):
            self._adopt(fid, now)

    # ------------------------------------------------------------ roster
    @property
    def roster(self) -> list[str]:
        return sorted(self._slots)

    def idle_followers(self) -> list[str]:
        return [fid for fid in sorted(self._slots) if self._slots[fid].busy_with is None]

    def channel_for(self, fid: str) -> ReliableChannel:
        return self._slots[fid].channel

    def _adopt(self, fid: str, now: float) -> None:
        channel = self.config.channel(
            self.bus,
            local=self.name,
            peer=fid,
            on_deliver=lambda seq, data, fid=fid: self._on_deliver(fid, seq, data),
        )
        self._slots[fid] = _FollowerSlot(channel=channel, last_heard=now)
        self.counters["adoptions"] += 1
        if OBS.enabled:
            OBS.metrics.inc("swarm_adoptions_total", leader=self.name)
            obs.event(
                "info", "swarm.leader", "adopt",
                sim_time=now, leader=self.name, follower=fid,
            )

    def _drop_follower(self, fid: str, now: float, reason: str) -> None:
        slot = self._slots.pop(fid)
        slot.channel.close()
        self.counters["follower_deaths"] += 1
        if OBS.enabled:
            OBS.metrics.inc("swarm_follower_deaths_total", leader=self.name)
            obs.event(
                "warning", "swarm.leader", "follower_lost",
                sim_time=now, leader=self.name, follower=fid, reason=reason,
            )
        for task in self._owned_tasks():
            if task.owner == fid:
                self._release(task, now, outcome="follower_lost", eligible_at=now)

    # ------------------------------------------------------------- tasks
    def note_task(self, poi_id: str, pos: tuple[float, float], now: float) -> Task | None:
        """Record a detection; first leader to spot a PoI owns its task."""
        if self.demoted or poi_id in self.ledger:
            return None
        task = Task(
            poi_id=poi_id,
            pos=(float(pos[0]), float(pos[1])),
            t_detected=now,
            detected_by=self.name,
            leader=self.name,
            next_eligible_s=now,
        )
        self.ledger.add(task)
        self._active.add(poi_id)
        if OBS.enabled:
            OBS.metrics.inc("swarm_detections_total", leader=self.name)
            obs.event(
                "info", "swarm.leader", "detect",
                sim_time=now, leader=self.name, poi=poi_id,
            )
        return task

    def accept_task(self, poi_id: str) -> None:
        """Take over a released task (mission-layer transfer after demotion)."""
        task = self.ledger.get(poi_id)
        task.leader = self.name
        self._active.add(poi_id)

    def _owned_tasks(self) -> list[Task]:
        return [self.ledger.tasks[k] for k in sorted(self._active)]

    def _release(
        self, task: Task, now: float, outcome: str, eligible_at: float
    ) -> None:
        opened = task.open_assignment()
        if opened is not None:
            opened.t_closed = now
            opened.outcome = outcome
        fid = task.owner
        if fid is not None and fid in self._slots and self._slots[fid].busy_with == task.poi_id:
            self._slots[fid].busy_with = None
        task.owner = None
        task.state = TaskState.PENDING
        task.next_eligible_s = eligible_at

    def _backoff_for(self, attempts: int) -> float:
        # attempts counts completed assignment attempts; double from the
        # base each retry, capped — so a flapping task converges to a
        # bounded retry rate instead of hammering the pool.
        backoff = self.config.reassign_backoff_s * (2.0 ** max(attempts - 1, 0))
        return min(backoff, self.config.reassign_backoff_max_s)

    # -------------------------------------------------------------- step
    def step(self, now: float) -> None:
        """One protocol tick: retransmits, liveness, timeouts, assignment."""
        if self.demoted:
            return
        for fid in sorted(self._slots):
            self._slots[fid].channel.step(now)
        for fid in sorted(self._slots):
            if now - self._slots[fid].last_heard > self.config.follower_dead_after_s:
                self._drop_follower(fid, now, reason="heartbeat_timeout")
        for task in self._owned_tasks():
            opened = task.open_assignment()
            if (
                task.state == TaskState.ASSIGNED
                and opened is not None
                and now - opened.t_assign > self.config.task_timeout_s
            ):
                self.counters["timeouts"] += 1
                if OBS.enabled:
                    OBS.metrics.inc("swarm_task_timeouts_total", leader=self.name)
                    obs.event(
                        "warning", "swarm.leader", "task_timeout",
                        sim_time=now, leader=self.name, poi=task.poi_id,
                        follower=opened.follower, attempt=task.attempts,
                    )
                self._release(
                    task, now,
                    outcome="timeout",
                    eligible_at=now + self._backoff_for(task.attempts),
                )
        self._assign_pending(now)

    def _assign_pending(self, now: float) -> None:
        pending = [
            t
            for t in self._owned_tasks()
            if t.state == TaskState.PENDING and t.next_eligible_s <= now
        ]
        pending.sort(key=lambda t: (t.t_detected, t.poi_id))
        idle = self.idle_followers()
        for task, fid in zip(pending, idle):
            slot = self._slots[fid]
            task.state = TaskState.ASSIGNED
            task.owner = fid
            task.attempts += 1
            task.assignments.append(Assignment(t_assign=now, follower=fid))
            slot.busy_with = task.poi_id
            slot.channel.send(
                {
                    "type": "assign",
                    "task": task.poi_id,
                    "pos": [task.pos[0], task.pos[1]],
                    "attempt": task.attempts,
                },
                now,
            )
            self.counters["assigns"] += 1
            if task.attempts > 1:
                self.counters["reassigns"] += 1
            if OBS.enabled:
                OBS.metrics.inc("swarm_assigns_total", leader=self.name)
                obs.event(
                    "info", "swarm.leader", "assign",
                    sim_time=now, leader=self.name, poi=task.poi_id,
                    follower=fid, attempt=task.attempts,
                )

    # ----------------------------------------------------------- receive
    def _on_deliver(self, fid: str, seq: int, data: dict[str, Any]) -> None:
        del seq
        slot = self._slots.get(fid)
        if slot is None:
            return
        now = self.bus.clock
        slot.last_heard = now
        kind = data.get("type")
        if kind == "confirm":
            self._on_confirm(fid, data, now)
        elif kind == "reject":
            self.counters["rejects"] += 1
            task = self.ledger.tasks.get(str(data.get("task", "")))
            if task is not None and task.owner == fid and task.state == TaskState.ASSIGNED:
                self._release(task, now, outcome="timeout", eligible_at=now)

    def _on_confirm(self, fid: str, data: dict[str, Any], now: float) -> None:
        poi_id = str(data["task"])
        task = self.ledger.tasks.get(poi_id)
        if task is None:
            return
        if task.state == TaskState.SERVICED:
            # Retransmitted confirm for work already booked: idempotent.
            self.counters["duplicate_confirms"] += 1
            return
        if task.owner != fid:
            # Confirm raced a timeout/re-assign; the visit happened but the
            # ledger has moved on — count it, keep the reassignment.
            self.counters["stale_confirms"] += 1
            if OBS.enabled:
                obs.event(
                    "warning", "swarm.leader", "stale_confirm",
                    sim_time=now, leader=self.name, poi=poi_id, follower=fid,
                )
            return
        opened = task.open_assignment()
        if opened is not None:
            opened.t_closed = now
            opened.outcome = "confirmed"
        task.state = TaskState.SERVICED
        task.owner = None
        task.t_serviced = float(data.get("t_visit", now))
        self._active.discard(poi_id)
        if fid in self._slots and self._slots[fid].busy_with == poi_id:
            self._slots[fid].busy_with = None
        self.counters["confirms"] += 1
        if OBS.enabled:
            OBS.metrics.inc("swarm_confirms_total", leader=self.name)
            OBS.metrics.observe(
                "swarm_service_latency_s", task.t_serviced - task.t_detected
            )
            obs.event(
                "info", "swarm.leader", "confirm",
                sim_time=now, leader=self.name, poi=poi_id, follower=fid,
                latency_s=task.t_serviced - task.t_detected,
            )

    def _on_heartbeat(self, message: Message) -> None:
        fid = str(message.data.get("from", ""))
        slot = self._slots.get(fid)
        if slot is not None:
            slot.last_heard = float(message.data.get("t", self.bus.clock))
            self.counters["heartbeats"] += 1
        elif fid and not self.demoted:
            # A follower we declared dead came back into range. Its old
            # channel is gone on our side — tell it to rejoin so both
            # endpoints restart with fresh sequence state.
            self.counters["rejoins_sent"] += 1
            self.bus.publish(
                f"/swarm/ctl/f/{fid}",
                {"type": "rejoin", "leader": self.name},
                sender=self.name,
            )

    def _on_control(self, message: Message) -> None:
        if self.demoted or message.data.get("type") != "hello":
            return
        fid = str(message.data.get("from", ""))
        now = float(message.data.get("t", self.bus.clock))
        if fid and fid not in self._slots:
            self._adopt(fid, now)
        elif fid in self._slots:
            self._slots[fid].last_heard = now

    # ------------------------------------------------------------ demote
    def demote(self, now: float) -> tuple[list[str], list[str]]:
        """Stand down: release owned tasks, close channels.

        Returns ``(followers, released_poi_ids)`` for the mission layer to
        re-home — the protocol itself never picks a successor; that is a
        squad-ConSert decision (:mod:`repro.core.squad`).
        """
        released: list[str] = []
        for task in self._owned_tasks():
            if task.state == TaskState.ASSIGNED:
                self._release(task, now, outcome="rehome", eligible_at=now)
            if task.state == TaskState.PENDING:
                task.leader = None
                released.append(task.poi_id)
        self._active.clear()
        followers = self.roster
        for fid in followers:
            self._slots[fid].channel.close()
        self._slots.clear()
        for sub in self._subs:
            sub.unsubscribe()
        self._subs.clear()
        self.demoted = True
        if OBS.enabled:
            OBS.metrics.inc("swarm_demotions_total", leader=self.name)
            obs.event(
                "warning", "swarm.leader", "demote",
                sim_time=now, leader=self.name,
                followers=len(followers), released=len(released),
            )
        return followers, released

    def channel_stats(self) -> dict[str, int]:
        """Summed reliable-channel counters over the current roster."""
        totals = {"sent": 0, "retries": 0, "acked": 0, "delivered": 0,
                  "duplicates": 0, "gaps": 0}
        for fid in sorted(self._slots):
            stats = self._slots[fid].channel.stats
            for key in totals:
                totals[key] += getattr(stats, key)
        return totals

    def close(self) -> None:
        for fid in sorted(self._slots):
            self._slots[fid].channel.close()
        self._slots.clear()
        for sub in self._subs:
            sub.unsubscribe()
        self._subs.clear()


class FollowerProtocol:
    """Visiting-follower role: loiter, fly out, dwell, confirm.

    The follower is a three-state machine (LOITER → ENROUTE → VISITING →
    LOITER). It never decides anything about tasks beyond "am I free" —
    the leader owns the ledger; the follower owns its legs.
    """

    def __init__(
        self,
        bus: RosBus,
        name: str,
        leader: str,
        config: SwarmProtocolConfig | None = None,
        now: float = 0.0,
    ) -> None:
        self.bus = bus
        self.name = name
        self.leader = leader
        self.config = config or SwarmProtocolConfig()
        self.state = FollowerState.LOITER
        self.current_task: str | None = None
        self.current_pos: tuple[float, float] | None = None
        self.visit_until: float | None = None
        self.counters = {
            "assigns_taken": 0,
            "busy_rejects": 0,
            "confirms_sent": 0,
            "heartbeats_sent": 0,
            "rehomes": 0,
            "rejoins": 0,
            "aborted_visits": 0,
        }
        self._next_heartbeat = now
        self._subs: list[Subscription] = [
            bus.subscribe(f"/swarm/ctl/f/{name}", name, self._on_ctl)
        ]
        self.channel = self.config.channel(
            bus, local=name, peer=leader, on_deliver=self._on_deliver
        )

    # ----------------------------------------------------------- receive
    def _on_deliver(self, seq: int, data: dict[str, Any]) -> None:
        del seq
        if data.get("type") != "assign":
            return
        poi_id = str(data["task"])
        if self.state != FollowerState.LOITER:
            if poi_id == self.current_task:
                return  # retransmitted assign for the task we're already on
            self.counters["busy_rejects"] += 1
            self.channel.send({"type": "reject", "task": poi_id}, self.bus.clock)
            return
        pos = data["pos"]
        self.current_task = poi_id
        self.current_pos = (float(pos[0]), float(pos[1]))
        self.state = FollowerState.ENROUTE
        self.counters["assigns_taken"] += 1
        if OBS.enabled:
            OBS.metrics.inc("swarm_visits_started_total", follower=self.name)
            obs.event(
                "info", "swarm.follower", "enroute",
                sim_time=self.bus.clock, follower=self.name, poi=poi_id,
            )

    # ------------------------------------------------------------ motion
    def arrived(self, now: float) -> None:
        """The simulation says we reached the task position: start dwelling."""
        if self.state != FollowerState.ENROUTE:
            return
        self.state = FollowerState.VISITING
        self.visit_until = now + self.config.visit_dwell_s
        if OBS.enabled:
            obs.event(
                "info", "swarm.follower", "visiting",
                sim_time=now, follower=self.name, poi=self.current_task,
            )

    # -------------------------------------------------------------- step
    def step(self, now: float) -> None:
        """One protocol tick: dwell completion, heartbeat, retransmits."""
        if (
            self.state == FollowerState.VISITING
            and self.visit_until is not None
            and now >= self.visit_until
        ):
            self.channel.send(
                {"type": "confirm", "task": self.current_task, "t_visit": now}, now
            )
            self.counters["confirms_sent"] += 1
            if OBS.enabled:
                OBS.metrics.inc("swarm_visits_done_total", follower=self.name)
                obs.event(
                    "info", "swarm.follower", "confirm",
                    sim_time=now, follower=self.name, poi=self.current_task,
                )
            self.state = FollowerState.LOITER
            self.current_task = None
            self.current_pos = None
            self.visit_until = None
        if now >= self._next_heartbeat:
            self.bus.publish(
                f"/swarm/hb/{self.leader}",
                {"from": self.name, "t": now},
                sender=self.name,
            )
            self.counters["heartbeats_sent"] += 1
            self._next_heartbeat = now + self.config.heartbeat_s
        self.channel.step(now)

    def _on_ctl(self, message: Message) -> None:
        if message.data.get("type") != "rejoin":
            return
        if str(message.data.get("leader", "")) != self.leader:
            return  # stale rejoin from a leader we already moved away from
        self.counters["rejoins"] += 1
        self.rehome(self.leader, self.bus.clock)

    # ------------------------------------------------------------ rehome
    def rehome(self, new_leader: str, now: float) -> None:
        """Abandon the demoted leader and report to a surviving one."""
        if self.state != FollowerState.LOITER:
            self.counters["aborted_visits"] += 1
        self.state = FollowerState.LOITER
        self.current_task = None
        self.current_pos = None
        self.visit_until = None
        self.channel.close()
        self.leader = new_leader
        self.channel = self.config.channel(
            self.bus, local=self.name, peer=new_leader, on_deliver=self._on_deliver
        )
        self.bus.publish(
            f"/swarm/ctl/{new_leader}",
            {"type": "hello", "from": self.name, "t": now},
            sender=self.name,
        )
        self._next_heartbeat = now
        self.counters["rehomes"] += 1
        if OBS.enabled:
            OBS.metrics.inc("swarm_rehomes_total", follower=self.name)
            obs.event(
                "warning", "swarm.follower", "rehome",
                sim_time=now, follower=self.name, leader=new_leader,
            )

    def close(self) -> None:
        self.channel.close()
        for sub in self._subs:
            sub.unsubscribe()
        self._subs.clear()
