"""``swarm-sizing`` campaign: K × ρ × workload over the tasking protocol.

PaperID23's sizing question, asked of this repo's own stack: how do
service latency and coverage trade off as the squad count K, the
followers-per-leader ratio ρ, and the PoI workload P vary? Every grid
point is one seeded :func:`repro.swarm.sim.run_swarm` scenario; the
manifest records per-PoI service latency statistics, coverage fraction,
tasking-message overhead, and the ledger fingerprint (the determinism
oracle — two clean runs of the same grid must produce identical
manifest fingerprints at any worker count).

Run it like every other sweep::

    python -m repro campaign swarm-sizing --preset smoke
    python -m repro campaign swarm-sizing --preset default --workers 4

The default grid pins one scenario seed across all points so the (K, ρ,
P) axes are the only thing that varies — which is what makes the
"latency degrades monotonically as ρ shrinks" read-off meaningful.
"""

from __future__ import annotations

from repro.harness.campaign import (
    CampaignExperiment,
    CampaignResult,
    register_experiment,
)
from repro.harness.timing import PhaseTimer
from repro.swarm.sim import run_swarm

#: Scenario seed pinned across grid points (axes vary, the world doesn't).
PINNED_SEED = 123

#: Workload sizes from PaperID23's experiment grid.
WORKLOADS = (250, 1000, 4000)


def swarm_sizing_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """One campaign sample: a full swarm scenario at one (K, ρ, P) point.

    ``config`` may pin an explicit ``seed``; otherwise the harness
    stream seed is used (the fuzz/property suites rely on that path).
    """
    run_seed = int(config.get("seed", seed))
    with timer.phase("simulate"):
        run = run_swarm(dict(config), seed=run_seed)
    # Wall-clock cost lives in the manifest's provenance fields
    # (wall_time_s, timings) — never in the result, which is hashed into
    # the deterministic campaign fingerprint.
    record = run.summary()
    record["seed"] = run_seed
    return record


def swarm_sizing_grid(preset: str) -> list[dict]:
    """Grid presets; smoke is CI-sized, default reproduces the trade-off."""
    if preset == "smoke":
        base = {
            "seed": PINNED_SEED,
            "n_pois": 50,
            "area_m": 400.0,
            "horizon_s": 120.0,
        }
        return [
            dict(base, k_leaders=2, rho=1),
            dict(base, k_leaders=2, rho=3),
            # One faulted point so the recovery paths (follower death,
            # ConSert-driven demotion + re-home) run in CI every time.
            dict(
                base,
                k_leaders=2,
                rho=3,
                horizon_s=150.0,
                faults=[
                    {"type": "follower_loss", "uav": "f00_01", "at": 30.0},
                    {"type": "leader_demotion", "uav": "lead01", "at": 60.0},
                ],
            ),
        ]
    if preset == "default":
        return [
            {
                "seed": PINNED_SEED,
                "k_leaders": k,
                "rho": rho,
                "n_pois": n_pois,
                "horizon_s": 600.0,
            }
            for k in (2, 4)
            for rho in (1, 2, 4, 8)
            for n_pois in WORKLOADS[:2]
        ]
    if preset == "full":
        return [
            {
                "seed": PINNED_SEED,
                "k_leaders": k,
                "rho": rho,
                "n_pois": n_pois,
                "horizon_s": 600.0,
            }
            for k in (2, 4, 8)
            for rho in (1, 2, 4, 8, 16)
            for n_pois in WORKLOADS
        ]
    raise ValueError(f"unknown swarm-sizing grid preset {preset!r}")


def summarize_swarm_sizing(campaign: CampaignResult) -> str:
    """The latency/coverage trade-off table for the campaign CLI."""
    lines = [
        "K     rho   pois    detect   cover    mean lat    p95 lat   messages",
        "----  ----  ------  -------  -------  ----------  --------  --------",
    ]
    for r in campaign.results:
        mean = f"{r['latency_mean_s']:>8.1f} s" if r["latency_mean_s"] is not None else "       — "
        p95 = f"{r['latency_p95_s']:>6.1f} s" if r["latency_p95_s"] is not None else "     — "
        lines.append(
            f"{r['k_leaders']:<5} {r['rho']:<5} {r['n_pois']:<7} "
            f"{100 * r['detection_fraction']:>6.0f}%  "
            f"{100 * r['coverage_fraction']:>6.0f}%  "
            f"{mean}  {p95}  {r['messages_total']:>8}"
        )
    return "\n".join(lines)


SWARM_SIZING_CAMPAIGN = register_experiment(
    CampaignExperiment(
        name="swarm-sizing",
        sample_fn=swarm_sizing_sample,
        grids=swarm_sizing_grid,
        describe="Leader-follower swarm tasking: latency/coverage vs K, rho, P",
        summarize=summarize_swarm_sizing,
        presets=("smoke", "default", "full"),
    )
)
