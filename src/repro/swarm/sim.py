"""Closed-loop leader–follower swarm simulation over the degraded bus.

One :class:`SwarmSim` wires the pure protocol
(:mod:`repro.swarm.protocol`) into physics and assurance:

* **Motion** — :class:`~repro.uav.swarm_kinematics.SwarmKinematics`
  moves all K + K·ρ UAVs in one fused NumPy step per tick. Leaders fly
  looping boustrophedon sweeps of their vertical sector
  (:func:`repro.sar.patterns.sector_sweep`); followers chase their
  leader while loitering and fly out to task positions when assigned.
* **Comms** — every leader×follower pair gets its own
  :class:`~repro.middleware.degraded.LinkModel` on a
  :class:`~repro.middleware.degraded.DegradedBus`. Each tick the pair's
  loss probability is set from geometry: in comm radius ⇒ the scenario's
  base loss, out of radius ⇒ 1.0. Everything the protocol suffers —
  retransmits, heartbeat silence, lost hellos — falls out of position.
* **Assurance** — per-squad :class:`~repro.core.squad.SquadConSert`
  evidence is refreshed every ``consert_period_s`` and composed by the
  :class:`~repro.core.squad.SwarmMissionDecider`; a squad evaluating to
  ``squad_lost`` triggers the mission-layer recovery the protocol
  exposes but never decides: demote the leader, transfer its open tasks
  round-robin to surviving leaders, re-home its followers.

Determinism: one root :class:`numpy.random.SeedSequence` spawns the bus
rng, the PoI layout rng, and one rng per link (created in sorted pair
order); every Python-side iteration is sorted; sim time is derived as
``step * dt``. Same config + seed ⇒ byte-identical ledger, so
:meth:`SwarmRun.ledger_fingerprint` doubles as the determinism oracle
used by the property suite and the golden trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.core.squad import (
    SQUAD_LOST,
    SquadConSert,
    SwarmMissionDecider,
)
from repro.middleware.degraded import DegradedBus, LinkModel
from repro.middleware.rosbus import Message
from repro.sar.patterns import sector_sweep
from repro.swarm.protocol import (
    FollowerProtocol,
    FollowerState,
    LeaderProtocol,
    SwarmLedger,
    SwarmProtocolConfig,
    TaskState,
)
from repro.uav.swarm_kinematics import SwarmKinematics

DEFAULTS: dict[str, Any] = {
    "k_leaders": 2,
    "rho": 3,
    "n_pois": 50,
    "area_m": 600.0,
    "comm_radius_m": 450.0,
    "leader_speed_mps": 12.0,
    "follower_speed_mps": 15.0,
    "detect_radius_m": 40.0,
    "patrol_altitude_m": 60.0,
    "dt": 0.5,
    "horizon_s": 600.0,
    "link_loss": 0.05,
    "link_latency_s": 0.02,
    "link_jitter_s": 0.02,
    "task_timeout_s": 90.0,
    "visit_dwell_s": 2.0,
    "reassign_backoff_s": 5.0,
    "reassign_backoff_max_s": 40.0,
    "follower_dead_after_s": 60.0,
    "heartbeat_s": 5.0,
    "consert_period_s": 5.0,
    "faults": (),
}
"""Scenario knobs; any subset may be overridden by the config dict."""


@dataclass
class SwarmRun:
    """Everything a finished swarm scenario is measured by."""

    config: dict[str, Any]
    seed: int
    ledger: SwarmLedger
    latency_trace: list[dict[str, Any]]
    decisions: list[dict[str, Any]]
    metrics: dict[str, Any]

    @property
    def ledger_fingerprint(self) -> str:
        return self.ledger.fingerprint()

    def summary(self) -> dict[str, Any]:
        """Flat manifest-friendly record (no full ledger — it can be 4000
        tasks deep; the fingerprint stands in for it)."""
        return dict(self.metrics, ledger_fingerprint=self.ledger_fingerprint)


def _leader_name(k: int) -> str:
    return f"lead{k:02d}"


def _follower_name(k: int, j: int) -> str:
    return f"f{k:02d}_{j:02d}"


def _poi_name(i: int) -> str:
    return f"poi{i:05d}"


@dataclass
class _MessageCensus:
    """Transport-level message counts by protocol plane (via interceptor)."""

    counts: dict[str, int] = field(
        default_factory=lambda: {"data": 0, "ack": 0, "heartbeat": 0, "control": 0}
    )

    def __call__(self, message: Message) -> Message:
        if message.topic.startswith("/swarm/"):
            parts = message.topic.split("/")
            if parts[2] == "hb":
                self.counts["heartbeat"] += 1
            elif parts[2] == "ctl":
                self.counts["control"] += 1
            elif parts[-1] == "ack":
                self.counts["ack"] += 1
            else:
                self.counts["data"] += 1
        return message

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class SwarmSim:
    """One seeded swarm scenario, steppable tick by tick."""

    def __init__(self, config: dict[str, Any], seed: int = 0) -> None:
        cfg = dict(DEFAULTS)
        cfg.update(config)
        self.config = cfg
        self.seed = int(cfg.get("seed", seed))
        self.k = int(cfg["k_leaders"])
        self.rho = int(cfg["rho"])
        self.n_pois = int(cfg["n_pois"])
        if self.k < 1 or self.rho < 0 or self.n_pois < 0:
            raise ValueError("k_leaders >= 1, rho >= 0, n_pois >= 0 required")
        self.area = float(cfg["area_m"])
        self.comm_radius = float(cfg["comm_radius_m"])
        self.detect_radius = float(cfg["detect_radius_m"])
        self.dt = float(cfg["dt"])
        self.horizon_s = float(cfg["horizon_s"])
        self.consert_period = float(cfg["consert_period_s"])
        self.base_loss = float(cfg["link_loss"])
        self.now = 0.0
        self._step_index = 0

        root = np.random.SeedSequence(self.seed)
        bus_ss, poi_ss, link_ss = root.spawn(3)
        self.bus = DegradedBus(rng=np.random.default_rng(bus_ss))
        self.census = _MessageCensus()
        self.bus.add_interceptor(self.census)

        self.protocol_config = SwarmProtocolConfig(
            task_timeout_s=float(cfg["task_timeout_s"]),
            reassign_backoff_s=float(cfg["reassign_backoff_s"]),
            reassign_backoff_max_s=float(cfg["reassign_backoff_max_s"]),
            follower_dead_after_s=float(cfg["follower_dead_after_s"]),
            heartbeat_s=float(cfg["heartbeat_s"]),
            visit_dwell_s=float(cfg["visit_dwell_s"]),
        )

        self.leader_names = [_leader_name(k) for k in range(self.k)]
        self.follower_names = [
            _follower_name(k, j) for k in range(self.k) for j in range(self.rho)
        ]
        self._index = {
            name: i
            for i, name in enumerate(self.leader_names + self.follower_names)
        }

        # PoI field.
        poi_rng = np.random.default_rng(poi_ss)
        self.pois = poi_rng.uniform(0.0, self.area, size=(self.n_pois, 2))
        self.poi_detected = np.zeros(self.n_pois, dtype=bool)

        # Patrol sweeps: leader k owns vertical sector k; track spacing at
        # twice the detect radius tiles the strip with detection swath.
        self._waypoints: dict[str, list[tuple[float, float]]] = {}
        self._wp_index: dict[str, int] = {}
        spacing = 2.0 * self.detect_radius
        for k, name in enumerate(self.leader_names):
            wps = sector_sweep(
                self.area, self.k, k, float(cfg["patrol_altitude_m"]), spacing
            )
            self._waypoints[name] = [(e, n) for e, n, _ in wps]
            self._wp_index[name] = 0

        # Kinematics: leaders first, followers after, one SoA block.
        n_total = self.k + self.k * self.rho
        positions = np.zeros((n_total, 2))
        speeds = np.zeros(n_total)
        for name in self.leader_names:
            positions[self._index[name]] = self._waypoints[name][0]
            speeds[self._index[name]] = float(cfg["leader_speed_mps"])
        for k in range(self.k):
            lead_pos = positions[self._index[_leader_name(k)]]
            for j in range(self.rho):
                idx = self._index[_follower_name(k, j)]
                positions[idx] = lead_pos
                speeds[idx] = float(cfg["follower_speed_mps"])
        self.kin = SwarmKinematics(positions, speeds)

        # One LinkModel per leader×follower pair, rngs spawned in sorted
        # pair order so link noise is independent of construction details.
        pairs = sorted(
            (ln, fn) for ln in self.leader_names for fn in self.follower_names
        )
        seeds = link_ss.spawn(len(pairs))
        self._links: list[tuple[int, int, LinkModel]] = []
        for (ln, fn), child in zip(pairs, seeds):
            link = LinkModel(
                rng=np.random.default_rng(child),
                loss_probability=self.base_loss,
                latency_s=float(cfg["link_latency_s"]),
                jitter_s=float(cfg["link_jitter_s"]),
            )
            self.bus.set_link(ln, fn, link)
            self._links.append((self._index[ln], self._index[fn], link))

        # Protocol endpoints + assurance plane.
        self.ledger = SwarmLedger()
        self.leaders: dict[str, LeaderProtocol] = {}
        self.followers: dict[str, FollowerProtocol] = {}
        self.squads: dict[str, SquadConSert] = {}
        self.planned: dict[str, int] = {}
        self.decider = SwarmMissionDecider()
        for k, name in enumerate(self.leader_names):
            members = [_follower_name(k, j) for j in range(self.rho)]
            self.leaders[name] = LeaderProtocol(
                self.bus, name, members, self.ledger,
                config=self.protocol_config, now=0.0,
            )
            squad = SquadConSert(name)
            self.squads[name] = squad
            self.planned[name] = self.rho
            self.decider.add_squad(squad)
            for fid in members:
                self.followers[fid] = FollowerProtocol(
                    self.bus, fid, name, config=self.protocol_config, now=0.0
                )

        self.dead: set[str] = set()
        self.forced_down: set[str] = set()
        self.decisions: list[dict[str, Any]] = []
        self.verdicts: dict[str, int] = {}
        self._faults = sorted(
            (dict(f) for f in cfg["faults"]),
            key=lambda f: (float(f["at"]), str(f["uav"])),
        )
        self._next_consert = self.consert_period

    # ------------------------------------------------------------- faults
    def _apply_faults(self, now: float) -> None:
        while self._faults and float(self._faults[0]["at"]) <= now:
            fault = self._faults.pop(0)
            uav = str(fault["uav"])
            kind = str(fault["type"])
            if kind == "follower_loss" and uav in self.followers:
                self.dead.add(uav)
                self.bus.set_node_down(uav)
                self.kin.clear_target(self._index[uav])
                if obs.OBS.enabled:
                    obs.event(
                        "error", "swarm.sim", "follower_loss",
                        sim_time=now, uav=uav,
                    )
            elif kind == "leader_demotion" and uav in self.leaders:
                # Not an instant kill: the squad certificate loses its
                # leader_ok evidence and the *decider* orders the recovery
                # at the next ConSert cycle — assurance-driven, as in the
                # paper's demotion flow.
                self.forced_down.add(uav)
                self.kin.clear_target(self._index[uav])
                if obs.OBS.enabled:
                    obs.event(
                        "error", "swarm.sim", "leader_demotion",
                        sim_time=now, uav=uav,
                    )

    # ------------------------------------------------------------- motion
    def _leader_active(self, name: str) -> bool:
        return (
            name not in self.forced_down
            and not self.leaders[name].demoted
        )

    def _update_targets(self, now: float) -> None:
        for name in self.leader_names:
            idx = self._index[name]
            if not self._leader_active(name):
                self.kin.clear_target(idx)
                continue
            wps = self._waypoints[name]
            if self.kin.distance_to_target(idx) == 0.0:
                self._wp_index[name] = (self._wp_index[name] + 1) % len(wps)
            self.kin.set_target(idx, wps[self._wp_index[name]])
        for name in self.follower_names:
            if name in self.dead:
                continue
            follower = self.followers[name]
            idx = self._index[name]
            if follower.state == FollowerState.ENROUTE:
                assert follower.current_pos is not None
                self.kin.set_target(idx, follower.current_pos)
                if self.kin.distance_to_target(idx) == 0.0:
                    follower.arrived(now)
                    self.kin.clear_target(idx)
            elif follower.state == FollowerState.VISITING:
                self.kin.clear_target(idx)
            else:  # loiter: chase the current leader
                leader = follower.leader
                if self._leader_active(leader):
                    self.kin.set_target(
                        idx, tuple(self.kin.pos[self._index[leader]])
                    )
                else:
                    self.kin.clear_target(idx)

    def _update_links(self) -> None:
        pos = self.kin.pos
        for li, fi, link in self._links:
            delta = pos[fi] - pos[li]
            in_range = (delta[0] * delta[0] + delta[1] * delta[1]
                        <= self.comm_radius * self.comm_radius)
            link.loss_probability = self.base_loss if in_range else 1.0

    # ---------------------------------------------------------- detection
    def _detect(self, now: float) -> None:
        if not self.n_pois:
            return
        undetected = np.flatnonzero(~self.poi_detected)
        if undetected.size == 0:
            return
        for name in self.leader_names:
            if not self._leader_active(name):
                continue
            dists = self.kin.distances_from(
                self._index[name], self.pois[undetected]
            )
            hits = undetected[dists <= self.detect_radius]
            for poi_idx in hits.tolist():
                if self.poi_detected[poi_idx]:
                    continue
                task = self.leaders[name].note_task(
                    _poi_name(poi_idx),
                    (self.pois[poi_idx, 0], self.pois[poi_idx, 1]),
                    now,
                )
                if task is not None:
                    self.poi_detected[poi_idx] = True

    # ---------------------------------------------------------- assurance
    def _consert_cycle(self, now: float) -> None:
        with obs.span("swarm.consert_cycle", sim_time=now):
            for squad_id in sorted(self.squads):
                leader = self.leaders[squad_id]
                self.squads[squad_id].update(
                    leader_ok=self._leader_active(squad_id),
                    live_followers=len(leader.roster),
                    planned_followers=self.planned[squad_id],
                )
            if not self.decider.squads:
                return
            decision = self.decider.decide()
            self.verdicts[decision.verdict] = (
                self.verdicts.get(decision.verdict, 0) + 1
            )
            self.decisions.append(dict(decision.to_dict(), t=now))
            if obs.OBS.enabled:
                obs.event(
                    "info", "swarm.decider", "verdict",
                    sim_time=now, verdict=decision.verdict,
                    lost=len(decision.lost_squads),
                )
            for squad_id in decision.lost_squads:
                self._recover_squad(squad_id, decision.tasking_squads, now)

    def _recover_squad(
        self, squad_id: str, survivors: list[str], now: float
    ) -> None:
        leader = self.leaders[squad_id]
        followers, released = leader.demote(now)
        if survivors:
            for i, poi_id in enumerate(released):
                self.leaders[survivors[i % len(survivors)]].accept_task(poi_id)
            alive = [f for f in followers if f not in self.dead]
            for i, fid in enumerate(alive):
                new_leader = survivors[i % len(survivors)]
                self.followers[fid].rehome(new_leader, now)
                self.planned[new_leader] += 1
        # The squad certificate leaves the mission tree: the mission has
        # reconfigured around the loss, so later verdicts rate the
        # surviving composition, not the ghost.
        del self.decider.squads[squad_id]

    # ------------------------------------------------------------- ticking
    def step(self) -> None:
        """Advance the world by one ``dt`` tick."""
        now = (self._step_index + 1) * self.dt
        self._step_index += 1
        self._apply_faults(now)
        self._update_targets(now)
        arrived = self.kin.step(self.dt)
        self.now = now
        self._update_links()
        self.bus.advance_clock(now)
        self._detect(now)
        for name in self.follower_names:
            if name in self.dead:
                continue
            follower = self.followers[name]
            if follower.state == FollowerState.ENROUTE and arrived[self._index[name]]:
                follower.arrived(now)
                self.kin.clear_target(self._index[name])
        for name in self.leader_names:
            if self._leader_active(name):
                self.leaders[name].step(now)
        for name in self.follower_names:
            if name not in self.dead:
                self.followers[name].step(now)
        if now + 1e-9 >= self._next_consert:
            self._consert_cycle(now)
            self._next_consert += self.consert_period

    def run(self) -> SwarmRun:
        """Step to the horizon and measure the outcome."""
        n_steps = int(round(self.horizon_s / self.dt))
        with obs.span(
            "swarm.run", k=self.k, rho=self.rho, n_pois=self.n_pois
        ):
            for _ in range(n_steps):
                self.step()
        return self.finalize()

    # ------------------------------------------------------------ results
    def finalize(self) -> SwarmRun:
        """Close the ledger (orphan unserviced work) and compute metrics."""
        now = self.now
        for poi_id in sorted(self.ledger.tasks):
            task = self.ledger.tasks[poi_id]
            if task.state in (TaskState.PENDING, TaskState.ASSIGNED):
                opened = task.open_assignment()
                if opened is not None:
                    opened.t_closed = now
                    opened.outcome = "horizon"
                task.owner = None
                task.state = TaskState.ORPHANED
                task.orphan_reason = (
                    "no_leader" if task.leader is None else "horizon"
                )

        serviced = self.ledger.in_state(TaskState.SERVICED)
        latency_trace = [
            {
                "poi": t.poi_id,
                "t_detected": t.t_detected,
                "t_serviced": t.t_serviced,
                "latency_s": t.service_latency_s,
            }
            for t in serviced
        ]
        latencies = np.array([t["latency_s"] for t in latency_trace])

        leader_counters: dict[str, int] = {}
        for name in self.leader_names:
            for key, value in self.leaders[name].counters.items():
                leader_counters[key] = leader_counters.get(key, 0) + value
        follower_counters: dict[str, int] = {}
        for name in self.follower_names:
            for key, value in self.followers[name].counters.items():
                follower_counters[key] = follower_counters.get(key, 0) + value

        detected = int(self.poi_detected.sum())
        metrics: dict[str, Any] = {
            "k_leaders": self.k,
            "rho": self.rho,
            "n_pois": self.n_pois,
            "horizon_s": self.horizon_s,
            "detected": detected,
            "serviced": len(serviced),
            "orphaned": len(self.ledger.in_state(TaskState.ORPHANED)),
            "detection_fraction": (
                detected / self.n_pois if self.n_pois else 0.0
            ),
            "coverage_fraction": (
                len(serviced) / self.n_pois if self.n_pois else 0.0
            ),
            "latency_mean_s": float(latencies.mean()) if serviced else None,
            "latency_p50_s": (
                float(np.percentile(latencies, 50)) if serviced else None
            ),
            "latency_p95_s": (
                float(np.percentile(latencies, 95)) if serviced else None
            ),
            "latency_max_s": float(latencies.max()) if serviced else None,
            "messages": dict(self.census.counts),
            "messages_total": self.census.total,
            "messages_per_service": (
                self.census.total / len(serviced) if serviced else None
            ),
            "leader": dict(sorted(leader_counters.items())),
            "follower": dict(sorted(follower_counters.items())),
            "verdicts": dict(sorted(self.verdicts.items())),
            "squads_lost": sorted(
                s for s in self.squads
                if self.squads[s].evaluate() == SQUAD_LOST
            ),
        }
        return SwarmRun(
            config=dict(self.config),
            seed=self.seed,
            ledger=self.ledger,
            latency_trace=latency_trace,
            decisions=self.decisions,
            metrics=metrics,
        )


def build_swarm(config: dict[str, Any], seed: int = 0) -> SwarmSim:
    """Construct a seeded, steppable swarm scenario."""
    return SwarmSim(config, seed=seed)


def run_swarm(config: dict[str, Any], seed: int = 0) -> SwarmRun:
    """Run one swarm scenario start to finish."""
    return build_swarm(config, seed=seed).run()
