"""``repro.swarm`` — leader–follower swarm tasking over the degraded bus.

PaperID23 (Quispe Arias et al., LAFUSION 2025) sizes heterogeneous SAR
swarms: K explorer leaders patrol assigned sectors and detect points of
interest; each leader commands ρ follower (visiting) UAVs that loiter on
their leader, fly out to service detected PoIs, and report confirmations.
The measured quantities are the latency–coverage trade-offs as K, ρ and
the workload P vary.

This package builds that workload on the repo's existing substrate:

:mod:`repro.swarm.protocol`
    The tasking protocol proper — leader and follower state machines, the
    deterministic task ledger, ACK'd assignment/confirmation over
    :class:`~repro.middleware.reliable.ReliableChannel`, heartbeat-based
    follower liveness, task timeout/retry with bounded backoff, and
    re-homing after leader demotion. Pure protocol: physical motion is
    injected by the caller, so the state machines are unit-testable
    message for message (``tests/test_swarm_protocol.py``).

:mod:`repro.swarm.sim`
    The closed-loop simulation: vectorized swarm kinematics
    (:mod:`repro.uav.swarm_kinematics`), sector patrol sweeps
    (:func:`repro.sar.patterns.sector_sweep`), a comm radius realised as
    per-pair :class:`~repro.middleware.degraded.LinkModel` loss on a
    :class:`~repro.middleware.degraded.DegradedBus` (so link loss and
    partitions degrade the protocol for free), and the hierarchical
    squad ConSert plane (:mod:`repro.core.squad`) driving re-homing.

:mod:`repro.swarm.experiment`
    The registered ``swarm-sizing`` campaign sweeping K × ρ × P through
    :func:`repro.harness.campaign.run_campaign`.

Everything is a pure function of the scenario config and seed — same
inputs, byte-identical task ledger and campaign fingerprint at any
worker count (``tests/test_swarm_properties.py``).
"""

from repro.swarm.protocol import (
    FollowerProtocol,
    FollowerState,
    LeaderProtocol,
    SwarmProtocolConfig,
    SwarmLedger,
    Task,
    TaskState,
)
from repro.swarm.sim import SwarmRun, build_swarm, run_swarm

__all__ = [
    "FollowerProtocol",
    "FollowerState",
    "LeaderProtocol",
    "SwarmProtocolConfig",
    "SwarmLedger",
    "Task",
    "TaskState",
    "SwarmRun",
    "build_swarm",
    "run_swarm",
]
