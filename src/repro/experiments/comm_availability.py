"""Mission availability under degraded inter-UAV communications.

Applies the Fig. 5 availability methodology to the communication
dimension. The scenario is the one where the paper's Communication-based
Localization ConSert actually carries the mission: night operations with
GPS denied (jamming) and cameras unusable, so collaborative navigation
over the inter-UAV mesh is the only localization source. Telemetry then
crosses a :class:`~repro.middleware.degraded.DegradedBus` whose per-pair
links run the Gilbert–Elliott burst-loss channel at a swept loss level,
and each UAV's EDDI consumes only what actually arrives (via
:func:`~repro.core.adapters.attach_degraded_comm`).

``availability`` is, per UAV, the fraction of mission time its ConSert
network still offers a mission-capable guarantee (``CONTINUE_MISSION`` or
better) — averaged over the fleet. As loss climbs, windowed delivery
ratios fall below the comm-evidence threshold, ``comm_localization_ok``
collapses, and the network demotes to the unconditional default
(emergency landing), eroding availability exactly like the battery fault
erodes it in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.adapters import attach_degraded_comm, build_uav_eddi
from repro.core.uav_network import UavGuarantee
from repro.experiments.common import build_three_uav_world
from repro.harness.campaign import (
    CampaignExperiment,
    CampaignResult,
    register_experiment,
    run_campaign,
)
from repro.harness.timing import PhaseTimer
from repro.middleware.degraded import DegradedBus, LinkModel
from repro.safedrones.communication import GilbertElliottChannel
from repro.uav.uav import FlightMode

MISSION_CAPABLE = (
    UavGuarantee.CONTINUE_MISSION_EXTRA,
    UavGuarantee.CONTINUE_MISSION,
)


@dataclass(frozen=True)
class CommSweepPoint:
    """One loss level of the sweep."""

    loss_rate: float
    expected_delivery: float
    measured_delivery: float
    availability: float
    demotions: int


@dataclass(frozen=True)
class CommAvailabilityResult:
    """The loss-rate sweep backing the degraded-comm availability figure."""

    points: tuple[CommSweepPoint, ...]
    duration_s: float
    staleness_s: float

    def summary_rows(self) -> list[tuple[float, float, float, float, int]]:
        """(loss, expected delivery, measured delivery, availability, demotions)."""
        return [
            (
                p.loss_rate,
                p.expected_delivery,
                p.measured_delivery,
                p.availability,
                p.demotions,
            )
            for p in self.points
        ]


def _make_channel(loss: float, rng: np.random.Generator) -> GilbertElliottChannel:
    """A moderately bursty GE channel whose GOOD-state loss is ``loss``."""
    return GilbertElliottChannel(
        rng=rng,
        p_good_to_bad=0.02,
        p_bad_to_good=0.25,
        loss_good=loss,
        loss_bad=min(1.0, loss + 0.3),
    )


def _run_point(
    loss: float,
    seed: int,
    duration_s: float,
    staleness_s: float,
    engine: str = "scalar",
) -> CommSweepPoint:
    bus = DegradedBus(rng=np.random.default_rng(seed + 1))
    scenario = build_three_uav_world(seed=seed, n_persons=0, bus=bus, engine=engine)
    world = scenario.world

    # Night ops under GPS jamming: comm localization carries the mission.
    for uav in world.uavs.values():
        uav.sensors.gps.denied = True
        uav.sensors.camera.health = 0.2
    channels = []
    for i, (a, b) in enumerate(combinations(scenario.uav_ids, 2)):
        channel = _make_channel(loss, np.random.default_rng(seed * 100 + i))
        channels.append(channel)
        bus.set_link(a, b, LinkModel(channel=channel))

    eddis = {}
    for uav_id, uav in world.uavs.items():
        # Fleet spacing exceeds the default CL range; the scenario assumes
        # the mesh radio covers the whole search area.
        eddi, stack = build_uav_eddi(uav, world, cl_range_m=500.0)
        peers = tuple(p for p in scenario.uav_ids if p != uav_id)
        attach_degraded_comm(
            eddi,
            stack,
            bus,
            peers,
            staleness_s=staleness_s,
            nominal_rate_hz=uav.telemetry_rate_hz,
        )
        eddis[uav_id] = eddi
        # Hold on station at mission altitude; the question the sweep
        # answers is purely what guarantee the assurance layer can offer.
        east, north, _ = uav.spec.base_position
        uav.dynamics.position = (east, north + 60.0, 20.0)
        uav.command_mode(FlightMode.HOLD)

    demotions = 0
    mission_cycles = {uav_id: 0 for uav_id in eddis}
    cycles = 0
    while world.time < duration_s:
        world.step()
        cycles += 1
        for uav_id, eddi in eddis.items():
            guarantee = eddi.step(world.time)
            if guarantee in MISSION_CAPABLE:
                mission_cycles[uav_id] += 1
    for eddi in eddis.values():
        demotions += sum(
            1 for r in eddi.response_log if r.guarantee not in MISSION_CAPABLE
        )

    availability = (
        sum(mission_cycles.values()) / (cycles * len(eddis)) if cycles else 0.0
    )
    return CommSweepPoint(
        loss_rate=loss,
        expected_delivery=channels[0].expected_delivery_ratio(),
        measured_delivery=bus.stats.delivery_ratio,
        availability=availability,
        demotions=demotions,
    )


def comm_availability_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """One campaign sample: a full mission at one link-loss level.

    ``config`` may pin an explicit ``seed`` (the figure-style sweep runs
    every loss level at the same scenario seed so the loss axis is the
    only thing that varies); otherwise the harness-assigned per-sample
    stream seed is used.
    """
    run_seed = int(config.get("seed", seed))
    with timer.phase("simulate"):
        point = _run_point(
            float(config["loss_rate"]),
            run_seed,
            float(config["duration_s"]),
            float(config["staleness_s"]),
            engine=str(config.get("engine", "scalar")),
        )
    return {
        "seed": run_seed,
        "loss_rate": point.loss_rate,
        "expected_delivery": point.expected_delivery,
        "measured_delivery": point.measured_delivery,
        "availability": point.availability,
        "demotions": point.demotions,
        "duration_s": float(config["duration_s"]),
        "staleness_s": float(config["staleness_s"]),
    }


def comm_availability_grid(preset: str) -> list[dict]:
    """Loss-level grids; smoke trades duration for CI turnaround."""
    if preset == "smoke":
        losses, duration = (0.0, 0.45, 0.85), 60.0
    elif preset == "default":
        losses, duration = (0.0, 0.2, 0.45, 0.7, 0.85), 240.0
    elif preset == "full":
        losses, duration = tuple(i / 10 for i in range(10)), 240.0
    else:
        raise ValueError(f"unknown comm grid preset {preset!r}")
    return [
        {"loss_rate": loss, "duration_s": duration, "staleness_s": 4.0}
        for loss in losses
    ]


def result_from_campaign(campaign: CampaignResult) -> CommAvailabilityResult:
    """Reassemble the sweep result object from campaign sample records."""
    points = tuple(
        CommSweepPoint(
            loss_rate=r["loss_rate"],
            expected_delivery=r["expected_delivery"],
            measured_delivery=r["measured_delivery"],
            availability=r["availability"],
            demotions=r["demotions"],
        )
        for r in campaign.results
    )
    first = campaign.results[0] if campaign.results else {}
    return CommAvailabilityResult(
        points=points,
        duration_s=first.get("duration_s", 0.0),
        staleness_s=first.get("staleness_s", 0.0),
    )


def summarize_comm(campaign: CampaignResult) -> str:
    """The loss/delivery/availability table for the CLI."""
    lines = ["loss    delivery (exp/meas)   availability   demotions"]
    for r in campaign.results:
        lines.append(
            f"{r['loss_rate']:<7.2f} {r['expected_delivery']:.3f} /"
            f" {r['measured_delivery']:.3f}        "
            f"{r['availability']:<14.3f} {r['demotions']}"
        )
    return "\n".join(lines)


COMM_CAMPAIGN = register_experiment(
    CampaignExperiment(
        name="comm",
        sample_fn=comm_availability_sample,
        grids=comm_availability_grid,
        describe="degraded-link mission availability loss sweep",
        summarize=summarize_comm,
    )
)


def run_comm_availability_experiment(
    loss_rates: tuple[float, ...] = (0.0, 0.2, 0.45, 0.7, 0.85),
    seed: int = 7,
    duration_s: float = 240.0,
    staleness_s: float = 4.0,
    workers: int = 1,
    cache_dir=None,
    engine: str = "scalar",
) -> CommAvailabilityResult:
    """Sweep link loss and report fleet mission availability per level.

    Runs through the campaign engine — pass ``workers`` to shard the
    loss levels across processes (identical results at any worker count)
    and ``cache_dir`` to skip already-completed points. Every level runs
    at the same scenario ``seed``, matching the figure's construction.
    ``engine`` selects the world step implementation; the default is
    omitted from the sample configs so existing cache keys stay valid.
    """
    configs = [
        {
            "loss_rate": loss,
            "duration_s": duration_s,
            "staleness_s": staleness_s,
            "seed": seed,
            **({"engine": engine} if engine != "scalar" else {}),
        }
        for loss in loss_rates
    ]
    campaign = run_campaign(
        COMM_CAMPAIGN, grid=configs, workers=workers, cache_dir=cache_dir
    )
    return result_from_campaign(campaign)
