"""Sec. V-B — SAR accuracy via uncertainty-aware altitude adaptation.

Scenario: the UAV starts scanning at a high altitude where "the
uncertainty levels from the output of SafeML, DeepKnowledge, and SINADRA
exceed 90%"; ConSerts command a descent; "upon descending, the SAR
uncertainty decreases to approximately 75%, which increases the
algorithm's accuracy to 99.8%". Without SESAME the uncertainty is never
consulted and the UAV keeps scanning from high altitude.

The driver wires the real monitors end-to-end: SafeML watches the camera
feature stream against its training reference; DeepKnowledge supervises a
trained NumPy person-classifier's activation traces; SINADRA turns the
combined uncertainty into a missed-person criticality that justifies the
re-scan/descend decision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deepknowledge.knowledge import DeepKnowledgeAnalyzer
from repro.deepknowledge.network import FeedForwardNetwork, TrainConfig
from repro.safeml.monitor import SafeMlMonitor
from repro.sar.detection import (
    DetectionModel,
    TRAINING_ALTITUDE_M,
    detection_accuracy,
    feature_means,
    FEATURE_STD,
)
from repro.sinadra.risk import Criticality, SarRiskModel, SituationInputs

HIGH_ALTITUDE_M = 40.0
DESCENT_STEP_M = 4.0
MIN_ALTITUDE_M = TRAINING_ALTITUDE_M
UNCERTAINTY_THRESHOLD = 0.90


@dataclass(frozen=True)
class AltitudeSample:
    """Monitor outputs at one altitude during the descent."""

    altitude_m: float
    safeml_uncertainty: float
    deepknowledge_uncertainty: float
    ensemble_uncertainty: float
    criticality: Criticality


@dataclass(frozen=True)
class SarAccuracyResult:
    """Paper Sec. V-B payload."""

    descent_profile: list[AltitudeSample]
    final_altitude_m: float
    uncertainty_high: float
    uncertainty_final: float
    accuracy_with_sesame: float
    accuracy_without_sesame: float
    dk_coverage_score: float
    classifier_accuracy_low: float
    classifier_accuracy_high: float


def make_person_dataset(
    altitude_m: float, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic person-presence classification data at one altitude.

    Inputs: 4 frame features + 2 person-cue channels whose signal strength
    scales with apparent person size (shrinks with altitude); labels:
    person present in frame.
    """
    labels = rng.integers(0, 2, size=n)
    frames = rng.normal(feature_means(altitude_m), FEATURE_STD, size=(n, 4))
    scale = TRAINING_ALTITUDE_M / altitude_m
    cue_strength = labels * scale
    cues = np.column_stack(
        [
            cue_strength + rng.normal(0.0, 0.18, size=n),
            cue_strength * 0.8 + rng.normal(0.0, 0.18, size=n),
        ]
    )
    return np.column_stack([frames, cues]), labels


def _ensemble(safeml_u: float, dk_u: float) -> float:
    """Combined perception uncertainty from the two monitors.

    The monitors watch complementary failure modes (input shift vs
    exercised-abstraction shift); the ensemble takes the worst case.
    """
    return max(safeml_u, dk_u)


def run_sar_accuracy_experiment(
    seed: int = 5,
    high_altitude_m: float = HIGH_ALTITUDE_M,
    window: int = 40,
    n_eval: int = 4000,
) -> SarAccuracyResult:
    """Run the descent policy and both accuracy evaluations."""
    rng = np.random.default_rng(seed)
    detector = DetectionModel(rng=rng)

    # --- design time: train classifier, fit both monitors ----------------
    x_train, y_train = make_person_dataset(TRAINING_ALTITUDE_M, 1500, rng)
    network = FeedForwardNetwork([6, 24, 12, 2], rng=np.random.default_rng(seed + 1))
    network.train(x_train, y_train, TrainConfig(epochs=40))

    x_shift, _ = make_person_dataset(TRAINING_ALTITUDE_M * 1.25, 600, rng)
    analyzer = DeepKnowledgeAnalyzer(network=network)
    analyzer.fit(x_train, x_shift)
    coverage = analyzer.coverage(x_train)

    safeml = SafeMlMonitor(
        window_size=window, z_scale=65.0, rng=np.random.default_rng(seed + 2)
    )
    safeml.fit(detector.training_reference(600))

    risk_model = SarRiskModel()

    # --- runtime: descend until the ensemble uncertainty is acceptable ---
    def sample_at(altitude: float) -> AltitudeSample:
        frames = detector.sample_features(altitude, n_frames=window)
        for frame in frames:
            safeml.observe(frame)
        safeml_u = safeml.report().uncertainty
        x_rt, _ = make_person_dataset(altitude, 300, rng)
        dk_u = analyzer.uncertainty(x_rt)
        ensemble = _ensemble(safeml_u, dk_u)
        risk = risk_model.assess(
            SituationInputs(
                detection_uncertainty=ensemble,
                altitude_band="high" if altitude > 1.2 * TRAINING_ALTITUDE_M else "low",
                visibility="good",
                occupancy_prior=0.3,
            )
        )
        return AltitudeSample(
            altitude_m=altitude,
            safeml_uncertainty=safeml_u,
            deepknowledge_uncertainty=dk_u,
            ensemble_uncertainty=ensemble,
            criticality=risk.criticality,
        )

    profile: list[AltitudeSample] = []
    altitude = high_altitude_m
    sample = sample_at(altitude)
    profile.append(sample)
    while (
        sample.ensemble_uncertainty > UNCERTAINTY_THRESHOLD
        and altitude > MIN_ALTITUDE_M
    ):
        altitude = max(MIN_ALTITUDE_M, altitude - DESCENT_STEP_M)
        sample = sample_at(altitude)
        profile.append(sample)

    # --- accuracy evaluation at the two operating points ------------------
    def measured_accuracy(alt: float) -> float:
        hits = sum(
            detector.attempt(f"p{i}", alt, 0.0).detected for i in range(n_eval)
        )
        return hits / n_eval

    accuracy_with = measured_accuracy(altitude)
    accuracy_without = measured_accuracy(high_altitude_m)

    x_low, y_low = make_person_dataset(TRAINING_ALTITUDE_M, 1200, rng)
    x_high, y_high = make_person_dataset(high_altitude_m, 1200, rng)

    return SarAccuracyResult(
        descent_profile=profile,
        final_altitude_m=altitude,
        uncertainty_high=profile[0].ensemble_uncertainty,
        uncertainty_final=profile[-1].ensemble_uncertainty,
        accuracy_with_sesame=accuracy_with,
        accuracy_without_sesame=accuracy_without,
        dk_coverage_score=coverage.score,
        classifier_accuracy_low=network.accuracy(x_low, y_low),
        classifier_accuracy_high=network.accuracy(x_high, y_high),
    )


def theoretical_accuracy_curve(
    altitudes: list[float],
) -> list[tuple[float, float]]:
    """(altitude, detection accuracy) pairs for the sweep figure."""
    return [(a, detection_accuracy(a)) for a in altitudes]
