"""Fig. 1 — evaluation of the hierarchical ConSert network over scenarios.

Exercises the full per-UAV ConSert network plus the mission-level decider
across a matrix of operating conditions (reliability levels x localization
availability x security state), reproducing the decision logic the paper's
Fig. 1 diagram specifies: which guarantee each UAV offers and what the
mission-level verdict becomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.uav_network import UavConSertNetwork, UavGuarantee


@dataclass(frozen=True)
class UavCondition:
    """One UAV's monitored condition set."""

    reliability: str = "high"  # high | medium | low
    gps_ok: bool = True
    attack: bool = False
    camera_ok: bool = True
    safeml_ok: bool = True
    comm_ok: bool = True
    neighbors: bool = True
    drone_detection_ok: bool = True


def apply_condition(network: UavConSertNetwork, condition: UavCondition) -> None:
    """Push a condition set into a UAV's runtime evidence."""
    network.set_reliability_level(condition.reliability)
    network.set_gps_quality_ok(condition.gps_ok)
    network.set_attack_detected(condition.attack)
    network.set_camera_healthy(condition.camera_ok)
    network.set_safeml_confidence_ok(condition.safeml_ok)
    network.set_comm_links_ok(condition.comm_ok)
    network.set_nearby_uavs_available(condition.neighbors)
    network.set_drone_detection_ok(condition.drone_detection_ok)


@dataclass(frozen=True)
class ConsertScenarioResult:
    """One evaluated fleet scenario."""

    conditions: tuple[UavCondition, ...]
    guarantees: tuple[UavGuarantee, ...]
    navigation: tuple[str, ...]
    verdict: MissionVerdict


def evaluate_fleet(conditions: list[UavCondition]) -> ConsertScenarioResult:
    """Evaluate a fleet of UAVs under the given per-UAV conditions."""
    decider = MissionDecider()
    networks = []
    for i, condition in enumerate(conditions):
        network = UavConSertNetwork(uav_id=f"uav{i + 1}")
        apply_condition(network, condition)
        decider.add_uav(network)
        networks.append(network)
    decision = decider.decide()
    return ConsertScenarioResult(
        conditions=tuple(conditions),
        guarantees=tuple(decision.uav_guarantees[n.uav_id] for n in networks),
        navigation=tuple(n.navigation_guarantee() for n in networks),
        verdict=decision.verdict,
    )


def run_conserts_scenario_matrix(n_uavs: int = 3) -> list[ConsertScenarioResult]:
    """Evaluate a representative condition matrix for a fleet.

    One UAV sweeps through degradation combinations while the rest stay
    healthy — the single-failure analysis the mission decider is built
    for.
    """
    healthy = UavCondition()
    results = []
    for reliability, gps_ok, attack, camera_ok in product(
        ("high", "medium", "low"), (True, False), (False, True), (True, False)
    ):
        degraded = UavCondition(
            reliability=reliability, gps_ok=gps_ok, attack=attack, camera_ok=camera_ok
        )
        conditions = [degraded] + [healthy] * (n_uavs - 1)
        results.append(evaluate_fleet(conditions))
    return results
