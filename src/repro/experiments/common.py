"""Shared scenario construction for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import EnuFrame, GeoPoint
from repro.middleware.rosbus import RosBus
from repro.uav.uav import Uav, UavSpec
from repro.uav.world import World


@dataclass(frozen=True)
class FleetScenario:
    """A world populated with a three-UAV fleet, ready for an experiment."""

    world: World
    uav_ids: tuple[str, ...]


def build_three_uav_world(
    seed: int = 0,
    area_size_m: tuple[float, float] = (400.0, 300.0),
    dt: float = 0.5,
    n_persons: int = 8,
    bus: RosBus | None = None,
) -> FleetScenario:
    """Create the paper's three-UAV setup on a fresh world.

    UAVs start at spaced base positions along the south edge, matching the
    platform demonstration of Fig. 4. Pass ``bus`` to run the fleet over a
    custom transport (e.g. a :class:`~repro.middleware.degraded.DegradedBus`);
    the default is the perfect in-process bus.
    """
    rng = np.random.default_rng(seed)
    kwargs = {} if bus is None else {"bus": bus}
    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0)),
        rng=rng,
        area_size_m=area_size_m,
        dt=dt,
        **kwargs,
    )
    uav_ids = ("uav1", "uav2", "uav3")
    for i, uav_id in enumerate(uav_ids):
        base = (30.0 + 150.0 * i, -20.0, 0.0)
        uav = Uav(
            spec=UavSpec(uav_id=uav_id, base_position=base),
            frame=world.frame,
            bus=world.bus,
            rng=rng,
        )
        world.add_uav(uav)
    if n_persons > 0:
        world.scatter_persons(n_persons)
    return FleetScenario(world=world, uav_ids=uav_ids)
