"""Shared scenario construction for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import EnuFrame, GeoPoint
from repro.middleware.rosbus import RosBus
from repro.uav.uav import Uav, UavSpec
from repro.uav.world import World


@dataclass(frozen=True)
class FleetScenario:
    """A world populated with a three-UAV fleet, ready for an experiment."""

    world: World
    uav_ids: tuple[str, ...]


def uav_rng_streams(seed: int, n_uavs: int) -> list[np.random.Generator]:
    """Independent per-UAV generators spawned from the scenario seed.

    Stream ``i`` is fully determined by ``(seed, spawn_key=(i,))`` — a
    :meth:`numpy.random.SeedSequence.spawn` child — so UAV ``i``'s draws
    do not depend on how many UAVs the fleet contains or on any other
    UAV's consumption. Adding, removing, or reordering fleet members
    therefore never perturbs an existing UAV's noise sequence (with one
    shared generator, every downstream draw shifted).
    """
    children = np.random.SeedSequence(seed).spawn(n_uavs)
    return [np.random.default_rng(child) for child in children]


def build_three_uav_world(
    seed: int = 0,
    area_size_m: tuple[float, float] = (400.0, 300.0),
    dt: float = 0.5,
    n_persons: int = 8,
    bus: RosBus | None = None,
    n_uavs: int = 3,
    engine: str = "scalar",
) -> FleetScenario:
    """Create the paper's three-UAV setup on a fresh world.

    UAVs start at spaced base positions along the south edge, matching the
    platform demonstration of Fig. 4. Pass ``bus`` to run the fleet over a
    custom transport (e.g. a :class:`~repro.middleware.degraded.DegradedBus`);
    the default is the perfect in-process bus. ``n_uavs`` extends (or
    shrinks) the fleet along the same south edge; fleets up to three keep
    the paper's exact 150 m spacing, while larger fleets spread evenly
    across the area width so every base stays adjacent to the search area
    (at 150 m apart a 50-UAV fleet would start kilometres outside it).
    The world keeps its own generator and each UAV gets an independent
    spawned stream, so the fleet size never changes an existing UAV's
    draws.

    ``engine`` selects the world's step implementation ("scalar" or
    "vectorized"); both produce bit-identical trajectories.
    """
    rng = np.random.default_rng(seed)
    kwargs = {} if bus is None else {"bus": bus}
    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0)),
        rng=rng,
        area_size_m=area_size_m,
        dt=dt,
        engine=engine,
        **kwargs,
    )
    uav_ids = tuple(f"uav{i + 1}" for i in range(n_uavs))
    spacing = (
        150.0
        if n_uavs <= 3
        else max(1.0, (area_size_m[0] - 60.0) / (n_uavs - 1))
    )
    for i, (uav_id, uav_rng) in enumerate(
        zip(uav_ids, uav_rng_streams(seed, n_uavs))
    ):
        base = (30.0 + spacing * i, -20.0, 0.0)
        uav = Uav(
            spec=UavSpec(uav_id=uav_id, base_position=base),
            frame=world.frame,
            bus=world.bus,
            rng=uav_rng,
        )
        world.add_uav(uav)
    if n_persons > 0:
        world.scatter_persons(n_persons)
    return FleetScenario(world=world, uav_ids=uav_ids)
