"""Fig. 7 — collaborative localization guiding a GPS-denied safe landing.

"The spoofed UAV ... and the assisting UAV ... collaborate to coordinate
the safe landing, in a high precision location, of the UAV under attack
for further investigation. It is important to note here that the spoofed
UAV is operating without any GPS signal."

Pipeline: the spoof is detected (Fig. 6), the ConSert layer revokes GPS
localization and triggers Collaborative Localization; assisting UAVs keep
the affected UAV in camera view, each sighting yields a bearing/elevation
plus monocular range, the fused estimate feeds the affected UAV's
external navigation, and the guided landing controller descends it onto
the designated landing point. A no-CL baseline (dead-reckoning descent)
quantifies what the mitigation buys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import build_three_uav_world
from repro.localization.collaborative import CollaborativeLocalizer, Sighting
from repro.localization.detection import DroneDetector
from repro.localization.landing import GuidedLandingController, LandingReport
from repro.uav.uav import FlightMode

AFFECTED_START = (60.0, 80.0, 25.0)
LANDING_POINT = (50.0, 70.0)
ASSIST_OFFSETS = {"uav2": (18.0, 0.0, 5.0), "uav3": (0.0, 18.0, 5.0)}


@dataclass(frozen=True)
class Fig7Result:
    """Landing outcomes with and without collaborative localization."""

    cl_report: LandingReport
    baseline_error_m: float
    spoofed_trajectory: list[tuple[float, float, float]]
    assist_trajectory: list[tuple[float, float, float]]
    n_sightings: int
    mean_estimate_error_m: float


def _setup(seed: int, n_assistants: int, engine: str = "scalar"):
    scenario = build_three_uav_world(seed=seed, n_persons=0, engine=engine)
    world = scenario.world
    affected = world.uavs["uav1"]
    affected.dynamics.position = AFFECTED_START
    # The attack outcome: no GPS at all (paper's stated condition).
    affected.sensors.gps.denied = True
    assistants = [world.uavs[u] for u in list(ASSIST_OFFSETS)[:n_assistants]]
    for assistant in assistants:
        offset = ASSIST_OFFSETS[assistant.spec.uav_id]
        assistant.dynamics.position = tuple(
            a + o for a, o in zip(AFFECTED_START, offset)
        )
    return world, affected, assistants


def run_fig7_collaborative_landing(
    seed: int = 13,
    n_assistants: int = 2,
    max_time_s: float = 300.0,
    engine: str = "scalar",
) -> Fig7Result:
    """Run the guided landing with CL, then the dead-reckoning baseline."""
    # ------------------------------------------------- with CL ------------
    world, affected, assistants = _setup(seed, n_assistants, engine=engine)
    detector = DroneDetector(rng=np.random.default_rng(seed + 100))
    localizer = CollaborativeLocalizer(target_id="uav1", max_age_s=1.0)
    controller = GuidedLandingController(uav=affected, landing_point=LANDING_POINT)
    controller.engage(world.time)

    spoofed_traj: list[tuple[float, float, float]] = []
    assist_traj: list[tuple[float, float, float]] = []
    estimate_errors: list[float] = []
    n_sightings = 0

    while world.time < max_time_s and not controller.complete:
        # Assistants shadow the affected UAV to keep it in view.
        for assistant in assistants:
            offset = ASSIST_OFFSETS[assistant.spec.uav_id]
            target = tuple(
                p + o for p, o in zip(affected.dynamics.position, offset)
            )
            assistant.command_guided_setpoint(target)
        world.step()
        now = world.time
        for assistant in assistants:
            detection = detector.observe(
                observer_id=assistant.spec.uav_id,
                target_id="uav1",
                observer_enu=assistant.dynamics.position,
                target_enu=affected.dynamics.position,
                now=now,
                camera_health=assistant.sensors.camera.health,
            )
            if detection is not None:
                n_sightings += 1
                localizer.add_sighting(
                    Sighting(
                        detection=detection,
                        observer_enu=assistant.dynamics.position,
                    )
                )
        estimate = localizer.estimate(now)
        if estimate is not None:
            controller.feed_estimate(estimate)
            estimate_errors.append(
                math.dist(estimate.enu, affected.dynamics.position)
            )
        controller.step(now)
        spoofed_traj.append(affected.dynamics.position)
        assist_traj.append(assistants[0].dynamics.position)

    cl_report = controller.report(world.time)

    # ------------------------------------------- baseline (no CL) --------
    world_b, affected_b, _ = _setup(seed, n_assistants=0, engine=engine)
    # Dead-reckoning descent: the UAV believes its last (pre-denial) fix
    # and simply descends; nobody corrects its drift.
    affected_b.believed_trajectory.append(AFFECTED_START)
    affected_b.command_mode(FlightMode.EMERGENCY_LAND)
    while world_b.time < max_time_s and affected_b.mode is not FlightMode.LANDED:
        world_b.step()
    baseline_error = math.hypot(
        affected_b.dynamics.position[0] - LANDING_POINT[0],
        affected_b.dynamics.position[1] - LANDING_POINT[1],
    )

    return Fig7Result(
        cl_report=cl_report,
        baseline_error_m=baseline_error,
        spoofed_trajectory=spoofed_traj,
        assist_trajectory=assist_traj,
        n_sightings=n_sightings,
        mean_estimate_error_m=(
            sum(estimate_errors) / len(estimate_errors)
            if estimate_errors
            else float("nan")
        ),
    )
