"""Fleet-scaling study: SAR coverage time versus fleet size.

The paper's platform demonstration flies three UAVs; the obvious
operational question is how search-and-rescue performance scales when
the fleet grows. This study sweeps fleet size over the same search area
and measures how long full coverage takes — the marginal value of each
additional airframe — using the vectorized fleet engine
(:mod:`repro.uav.fleet`) so the 50- and 100-UAV points stay cheap.

Because the vectorized engine is bit-identical to the scalar reference
(see ``tests/test_fleet_equivalence.py``), every number below is exactly
what the scalar simulator would produce; the engine choice only changes
wall-clock cost, which the study also records per point.

Runs on the :mod:`repro.harness` campaign engine as ``fleet-scale``
(``python -m repro campaign fleet-scale``), so points shard across
workers and cache on disk like every other sweep. A direct entry point
``python -m repro fleet-scale`` renders the sweep as a table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import build_three_uav_world
from repro.harness.campaign import (
    CampaignExperiment,
    CampaignResult,
    register_experiment,
    run_campaign,
)
from repro.harness.timing import PhaseTimer
from repro.sar.mission import SarMission

#: Default fleet sizes swept by the direct entry point.
DEFAULT_FLEET_SIZES = (3, 10, 25, 50)


@dataclass(frozen=True)
class FleetScalePoint:
    """One fleet size flown to coverage (or the time budget)."""

    n_uavs: int
    engine: str
    seed: int
    coverage_fraction: float
    duration_s: float | None  # sim time to mission completion, None if budget hit
    sim_time_s: float  # sim time actually flown
    persons_found: int
    persons_total: int
    wall_s: float  # wall-clock cost of the sim loop


@dataclass(frozen=True)
class FleetScaleResult:
    """The sweep: coverage time as a function of fleet size."""

    points: tuple[FleetScalePoint, ...]

    def render(self) -> str:
        """The fleet-size/coverage-time table for the CLI."""
        lines = [
            "uavs   coverage   mission time   found     wall",
            "-----  ---------  -------------  --------  --------",
        ]
        for p in self.points:
            mission = f"{p.duration_s:>9.0f} s" if p.duration_s is not None else (
                f" >{p.sim_time_s:>7.0f} s"
            )
            lines.append(
                f"{p.n_uavs:<6} {100 * p.coverage_fraction:>7.0f}%  "
                f"{mission:>13}  {p.persons_found}/{p.persons_total:<7} "
                f"{p.wall_s:>6.2f} s"
            )
        return "\n".join(lines)


def run_fleet_scale_point(
    n_uavs: int,
    seed: int = 21,
    engine: str = "vectorized",
    max_time_s: float = 3600.0,
    n_persons: int = 8,
) -> FleetScalePoint:
    """Fly one coverage mission with ``n_uavs`` UAVs and measure it."""
    scenario = build_three_uav_world(
        seed=seed, n_persons=n_persons, n_uavs=n_uavs, engine=engine
    )
    mission = SarMission(world=scenario.world)
    mission.assign_paths()
    start = time.perf_counter()
    metrics = mission.run(max_time_s=max_time_s)
    wall = time.perf_counter() - start
    return FleetScalePoint(
        n_uavs=n_uavs,
        engine=engine,
        seed=seed,
        coverage_fraction=metrics.coverage_fraction,
        duration_s=metrics.duration_s,
        sim_time_s=scenario.world.time,
        persons_found=metrics.persons_found,
        persons_total=metrics.persons_total,
        wall_s=wall,
    )


def run_assurance_scale_point(
    n_uavs: int,
    seed: int = 21,
    engine: str = "vectorized",
    max_time_s: float = 60.0,
    eddi_period_s: float = 2.0,
    n_persons: int = 8,
) -> dict:
    """Fly a coverage mission with the assurance plane cycling alongside.

    The plain fleet-scale point measures coverage only; this variant
    additionally runs the full assurance plane (:func:`build_assurance`:
    SafeDrones, spoof/link monitors, ConSert evaluation, mission
    decider) at the 2 Hz EDDI rate, so a campaign over it exercises the
    batched plane end to end at fleet scale and records its per-cycle
    cost in the manifest.
    """
    from repro.core.batch import build_assurance

    scenario = build_three_uav_world(
        seed=seed, n_persons=n_persons, n_uavs=n_uavs, engine=engine
    )
    world = scenario.world
    mission = SarMission(world=world)
    mission.assign_paths()
    plane = build_assurance(world)
    cycle_every = max(1, int(round(eddi_period_s / world.dt)))
    verdicts: list[str] = []
    assurance_wall = 0.0
    steps = 0
    start = time.perf_counter()
    while not mission.mission_complete and world.time < max_time_s:
        mission.step()
        steps += 1
        if steps % cycle_every == 0:
            cycle_start = time.perf_counter()
            plane.step(world.time)
            verdicts.append(plane.decide().verdict.name)
            assurance_wall += time.perf_counter() - cycle_start
    wall = time.perf_counter() - start
    metrics = mission.metrics
    transitions = sum(
        len(plane.response_log(uav_id)) for uav_id in plane.uav_ids
    )
    return {
        "seed": seed,
        "n_uavs": n_uavs,
        "engine": engine,
        "coverage_fraction": metrics.coverage_fraction,
        "duration_s": metrics.duration_s,
        "sim_time_s": world.time,
        "persons_found": metrics.persons_found,
        "persons_total": metrics.persons_total,
        "wall_s": wall,
        "assurance_engine": plane.engine,
        "assurance_cycles": len(verdicts),
        "assurance_cycle_ms": round(
            1e3 * assurance_wall / max(1, len(verdicts)), 3
        ),
        "final_verdict": verdicts[-1] if verdicts else None,
        "guarantee_transitions": transitions,
    }


def fleet_scale_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """One campaign sample: a coverage mission at one fleet size.

    ``config`` may pin an explicit ``seed`` (the sweep flies every fleet
    size over the same person field so the fleet-size axis is the only
    thing that varies); otherwise the harness-assigned stream seed is
    used. With ``assurance: true`` the sample also cycles the full
    assurance plane (scalar or batched, following ``engine``) and
    reports its cost alongside the coverage numbers.
    """
    run_seed = int(config.get("seed", seed))
    if config.get("assurance"):
        with timer.phase("simulate"):
            return run_assurance_scale_point(
                n_uavs=int(config["n_uavs"]),
                seed=run_seed,
                engine=str(config.get("engine", "vectorized")),
                max_time_s=float(config.get("max_time_s", 60.0)),
                eddi_period_s=float(config.get("eddi_period_s", 2.0)),
            )
    with timer.phase("simulate"):
        point = run_fleet_scale_point(
            n_uavs=int(config["n_uavs"]),
            seed=run_seed,
            engine=str(config.get("engine", "vectorized")),
            max_time_s=float(config.get("max_time_s", 3600.0)),
        )
    return {
        "seed": run_seed,
        "n_uavs": point.n_uavs,
        "engine": point.engine,
        "coverage_fraction": point.coverage_fraction,
        "duration_s": point.duration_s,
        "sim_time_s": point.sim_time_s,
        "persons_found": point.persons_found,
        "persons_total": point.persons_total,
        "wall_s": point.wall_s,
    }


def fleet_scale_grid(preset: str) -> list[dict]:
    """Fleet-size grids; smoke pins a short 50-UAV vectorized flight."""
    if preset == "smoke":
        # CI-sized: prove the 50-UAV vectorized path end to end without
        # waiting for full coverage.
        return [
            {"n_uavs": 3, "engine": "vectorized", "max_time_s": 120.0},
            {"n_uavs": 50, "engine": "vectorized", "max_time_s": 120.0},
        ]
    if preset == "assurance-smoke":
        # CI-sized: cycle the batched assurance plane over a 50-UAV
        # vectorized fleet (plus the 3-UAV anchor) end to end.
        return [
            {"n_uavs": 3, "engine": "vectorized", "max_time_s": 30.0,
             "assurance": True},
            {"n_uavs": 50, "engine": "vectorized", "max_time_s": 30.0,
             "assurance": True},
        ]
    if preset == "default":
        return [
            {"n_uavs": n, "engine": "vectorized"} for n in DEFAULT_FLEET_SIZES
        ]
    if preset == "full":
        return [
            {"n_uavs": n, "engine": "vectorized"}
            for n in (*DEFAULT_FLEET_SIZES, 100)
        ]
    raise ValueError(f"unknown fleet-scale grid preset {preset!r}")


def result_from_campaign(campaign: CampaignResult) -> FleetScaleResult:
    """Reassemble the sweep result object from campaign sample records."""
    return FleetScaleResult(
        points=tuple(
            FleetScalePoint(
                n_uavs=r["n_uavs"],
                engine=r["engine"],
                seed=r["seed"],
                coverage_fraction=r["coverage_fraction"],
                duration_s=r["duration_s"],
                sim_time_s=r["sim_time_s"],
                persons_found=r["persons_found"],
                persons_total=r["persons_total"],
                wall_s=r["wall_s"],
            )
            for r in campaign.results
        )
    )


def summarize_fleet_scale(campaign: CampaignResult) -> str:
    """The fleet-size/coverage table for the campaign CLI."""
    return result_from_campaign(campaign).render()


FLEET_SCALE_CAMPAIGN = register_experiment(
    CampaignExperiment(
        name="fleet-scale",
        sample_fn=fleet_scale_sample,
        grids=fleet_scale_grid,
        describe="SAR coverage time vs fleet size (vectorized engine)",
        summarize=summarize_fleet_scale,
        presets=("smoke", "assurance-smoke", "default", "full"),
    )
)


def run_fleet_scale_experiment(
    fleet_sizes: tuple[int, ...] = DEFAULT_FLEET_SIZES,
    seed: int = 21,
    engine: str = "vectorized",
    max_time_s: float = 3600.0,
    workers: int = 1,
    cache_dir=None,
) -> FleetScaleResult:
    """Sweep fleet size and report coverage time per point.

    Runs through the campaign engine — pass ``workers`` to shard the
    fleet sizes across processes and ``cache_dir`` to reuse completed
    points. Every size flies the same seeded person field, so the fleet
    size is the only thing that varies along the axis.
    """
    configs = [
        {
            "n_uavs": n,
            "engine": engine,
            "max_time_s": max_time_s,
            "seed": seed,
        }
        for n in fleet_sizes
    ]
    campaign = run_campaign(
        FLEET_SCALE_CAMPAIGN, grid=configs, workers=workers, cache_dir=cache_dir
    )
    return result_from_campaign(campaign)
