"""Monte Carlo robustness study over the Fig. 5 scenario.

The paper evaluates one battery-fault trajectory; this study sweeps the
scenario space — fault onset time, post-fault SoC, and random seed — and
reports the availability advantage of the SESAME policy as a
distribution, answering "does the Fig. 5 conclusion survive scenario
perturbation?" (it should: the SESAME policy dominates whenever the fault
leaves enough margin to finish the mission, and ties otherwise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import repro.experiments.fig5_battery as fig5


@dataclass(frozen=True)
class MonteCarloSample:
    """One perturbed Fig. 5 run."""

    seed: int
    fault_time_s: float
    soc_after_fault: float
    availability_with: float
    availability_without: float
    completed_one_pass: bool


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate over all samples."""

    samples: list[MonteCarloSample]

    @property
    def mean_advantage(self) -> float:
        """Mean availability advantage (with - without)."""
        diffs = [
            s.availability_with - s.availability_without for s in self.samples
        ]
        return sum(diffs) / len(diffs)

    @property
    def win_rate(self) -> float:
        """Fraction of scenarios where SESAME strictly wins."""
        wins = sum(
            1
            for s in self.samples
            if s.availability_with > s.availability_without + 1e-9
        )
        return wins / len(self.samples)

    @property
    def one_pass_rate(self) -> float:
        """Fraction of scenarios completed without a mid-mission abort."""
        return sum(1 for s in self.samples if s.completed_one_pass) / len(self.samples)


def run_monte_carlo_fig5(
    fault_times=(150.0, 250.0, 350.0),
    soc_levels=(0.35, 0.40, 0.45),
    seeds=(3, 7),
) -> MonteCarloResult:
    """Sweep the Fig. 5 scenario space.

    Perturbs the module-level scenario constants around the paper's
    values and restores them afterwards.
    """
    samples = []
    original = (fig5.FAULT_TIME_S, fig5.SOC_AFTER_FAULT)
    try:
        for fault_time in fault_times:
            for soc in soc_levels:
                for seed in seeds:
                    fig5.FAULT_TIME_S = fault_time
                    fig5.SOC_AFTER_FAULT = soc
                    result = fig5.run_fig5_battery_experiment(seed=seed)
                    samples.append(
                        MonteCarloSample(
                            seed=seed,
                            fault_time_s=fault_time,
                            soc_after_fault=soc,
                            availability_with=result.availability_with,
                            availability_without=result.availability_without,
                            completed_one_pass=(
                                result.with_sesame.abort_time is None
                                and result.with_sesame.mission_complete_time
                                is not None
                            ),
                        )
                    )
    finally:
        fig5.FAULT_TIME_S, fig5.SOC_AFTER_FAULT = original
    return MonteCarloResult(samples=samples)
