"""Monte Carlo robustness study over the Fig. 5 scenario.

The paper evaluates one battery-fault trajectory; this study sweeps the
scenario space — fault onset time, post-fault SoC, and random seed — and
reports the availability advantage of the SESAME policy as a
distribution, answering "does the Fig. 5 conclusion survive scenario
perturbation?" (it should: the SESAME policy dominates whenever the fault
leaves enough margin to finish the mission, and ties otherwise).

The sweep runs on the :mod:`repro.harness` campaign engine: each grid
point is an independent sample with its own RNG stream, so the study
shards across a worker pool (``workers=...`` or
``python -m repro campaign monte-carlo --workers 4``) with bit-identical
results at any worker count, and completed points are cached on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.experiments.fig5_battery as fig5
from repro.harness.campaign import (
    CampaignExperiment,
    CampaignResult,
    register_experiment,
    run_campaign,
)
from repro.harness.timing import PhaseTimer


@dataclass(frozen=True)
class MonteCarloSample:
    """One perturbed Fig. 5 run."""

    seed: int
    fault_time_s: float
    soc_after_fault: float
    availability_with: float
    availability_without: float
    completed_one_pass: bool


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate over all samples."""

    samples: list[MonteCarloSample]

    @property
    def mean_advantage(self) -> float:
        """Mean availability advantage (with - without)."""
        diffs = [
            s.availability_with - s.availability_without for s in self.samples
        ]
        return sum(diffs) / len(diffs)

    @property
    def win_rate(self) -> float:
        """Fraction of scenarios where SESAME strictly wins."""
        wins = sum(
            1
            for s in self.samples
            if s.availability_with > s.availability_without + 1e-9
        )
        return wins / len(self.samples)

    @property
    def one_pass_rate(self) -> float:
        """Fraction of scenarios completed without a mid-mission abort."""
        return sum(1 for s in self.samples if s.completed_one_pass) / len(self.samples)


def monte_carlo_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """One campaign sample: a Fig. 5 run at a perturbed scenario point.

    ``config`` may pin an explicit ``seed`` (the legacy seed-as-grid-axis
    study); otherwise the harness-assigned per-sample stream seed is
    used. The Fig. 5 scenario constants are module-level, so they are
    patched and restored around the run — safe in pool workers, where
    each sample owns its process's module state.
    """
    run_seed = int(config.get("seed", seed))
    original = (fig5.FAULT_TIME_S, fig5.SOC_AFTER_FAULT)
    try:
        fig5.FAULT_TIME_S = float(config["fault_time_s"])
        fig5.SOC_AFTER_FAULT = float(config["soc_after_fault"])
        with timer.phase("simulate"):
            result = fig5.run_fig5_battery_experiment(seed=run_seed)
    finally:
        fig5.FAULT_TIME_S, fig5.SOC_AFTER_FAULT = original
    return {
        "seed": run_seed,
        "fault_time_s": float(config["fault_time_s"]),
        "soc_after_fault": float(config["soc_after_fault"]),
        "availability_with": result.availability_with,
        "availability_without": result.availability_without,
        "completed_one_pass": (
            result.with_sesame.abort_time is None
            and result.with_sesame.mission_complete_time is not None
        ),
    }


def monte_carlo_grid(preset: str) -> list[dict]:
    """Scenario grids around the paper's (250 s, 0.40 SoC) point."""
    if preset == "smoke":
        axes = ((250.0, 350.0), (0.40,), 1)
    elif preset == "default":
        axes = ((150.0, 250.0, 350.0), (0.35, 0.40, 0.45), 2)
    elif preset == "full":
        axes = (
            (100.0, 175.0, 250.0, 325.0, 400.0),
            (0.30, 0.35, 0.40, 0.45, 0.50),
            4,
        )
    else:
        raise ValueError(f"unknown monte-carlo grid preset {preset!r}")
    fault_times, soc_levels, replicates = axes
    return [
        {
            "fault_time_s": fault_time,
            "soc_after_fault": soc,
            "replicate": replicate,
        }
        for fault_time in fault_times
        for soc in soc_levels
        for replicate in range(replicates)
    ]


def result_from_campaign(campaign: CampaignResult) -> MonteCarloResult:
    """Reassemble the aggregate study from campaign sample records."""
    return MonteCarloResult(
        samples=[
            MonteCarloSample(
                seed=r["seed"],
                fault_time_s=r["fault_time_s"],
                soc_after_fault=r["soc_after_fault"],
                availability_with=r["availability_with"],
                availability_without=r["availability_without"],
                completed_one_pass=r["completed_one_pass"],
            )
            for r in campaign.results
        ]
    )


def summarize_monte_carlo(campaign: CampaignResult) -> str:
    """Headline lines for the CLI."""
    result = result_from_campaign(campaign)
    return (
        f"samples:        {len(result.samples)}\n"
        f"mean advantage: {result.mean_advantage:+.4f}\n"
        f"win rate:       {result.win_rate:.3f}\n"
        f"one-pass rate:  {result.one_pass_rate:.3f}"
    )


def _monte_carlo_batch(
    configs: list[dict], seeds: list[int], timer: PhaseTimer
) -> list[dict]:
    """Sample-axis batch hook: N grid points as one stacked simulation.

    Imported lazily so the plain per-sample path never pays for the
    vectorized engine. Every grid point stacks into the same group
    (``batch_key`` stays ``None``): fault time and post-fault SoC are
    per-row fault-script parameters, not world-level state.
    """
    from repro.experiments.fig5_batch import monte_carlo_batch

    return monte_carlo_batch(configs, seeds, timer)


MONTE_CARLO_CAMPAIGN = register_experiment(
    CampaignExperiment(
        name="monte-carlo",
        sample_fn=monte_carlo_sample,
        grids=monte_carlo_grid,
        describe="Fig. 5 battery-fault robustness sweep",
        summarize=summarize_monte_carlo,
        batch_fn=_monte_carlo_batch,
    )
)


def run_monte_carlo_fig5(
    fault_times=(150.0, 250.0, 350.0),
    soc_levels=(0.35, 0.40, 0.45),
    seeds=(3, 7),
    workers: int = 1,
    cache_dir=None,
) -> MonteCarloResult:
    """Sweep the Fig. 5 scenario space (legacy seed-as-grid-axis study).

    Runs through the campaign engine — pass ``workers`` to shard the grid
    across processes (identical results at any worker count) and
    ``cache_dir`` to skip already-completed points.
    """
    configs = [
        {"fault_time_s": fault_time, "soc_after_fault": soc, "seed": seed}
        for fault_time in fault_times
        for soc in soc_levels
        for seed in seeds
    ]
    campaign = run_campaign(
        MONTE_CARLO_CAMPAIGN, grid=configs, workers=workers, cache_dir=cache_dir
    )
    return result_from_campaign(campaign)
