"""Fig. 6 — area-mapping trajectory deviation under a spoofing attack.

"Falsified data are sent to manipulate the UAVs area mapping system.
Figure 6 shows how [the] spoofing attack can affect [the] area mapping
procedure by showing the deviation of the trajectory of a UAV under
attack (red color) [versus] the correct trajectory of a UAV with no
spoofing attack (blue). When SESAME technologies were used, [the]
spoofing attack was detected immediately by the SecurityEDDI."

The attack has two faces, both reproduced:

* **physical** — a ramping GPS spoof offset pulls the vehicle's believed
  position, so the waypoint controller physically drags it off its
  mapping track (the red trajectory);
* **network** — forged ROS messages are injected under the victim's
  identity, which the transport-level IDS flags and the Security EDDI
  traces to the attack-tree root (detection).

An IMU cross-check spoofing detector provides the second, sensor-level
detection channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.common import build_three_uav_world
from repro.middleware.attacks import SpoofingAttack
from repro.sar.coverage import boustrophedon_path
from repro.security.attack_trees import ros_spoofing_attack_tree
from repro.security.broker import MqttBroker
from repro.security.eddi import SecurityEddi
from repro.security.ids import IntrusionDetectionSystem
from repro.security.spoofing import GpsSpoofingDetector
from repro.uav.uav import FlightMode

ATTACK_START_S = 60.0
SPOOF_RAMP_MPS = 0.8
SPOOF_MAX_OFFSET_M = 60.0
MAPPING_STRIP = ((0.0, 120.0), (0.0, 250.0))
MAPPING_ALTITUDE_M = 25.0


@dataclass(frozen=True)
class Fig6Result:
    """Trajectories and detection milestones."""

    times: list[float]
    clean_trajectory: list[tuple[float, float, float]]
    attacked_trajectory: list[tuple[float, float, float]]
    deviation_m: list[float]
    max_deviation_m: float
    attack_start_s: float
    eddi_detection_s: float | None
    sensor_detection_s: float | None
    ids_alert_count: int
    attack_path: list[str]

    @property
    def eddi_latency_s(self) -> float | None:
        """Seconds from attack start to the Security EDDI critical event."""
        if self.eddi_detection_s is None:
            return None
        return self.eddi_detection_s - self.attack_start_s

    @property
    def sensor_latency_s(self) -> float | None:
        """Seconds from attack start to the IMU cross-check verdict."""
        if self.sensor_detection_s is None:
            return None
        return self.sensor_detection_s - self.attack_start_s


def _fly_mapping(
    seed: int, attack: bool, duration_s: float = 240.0, engine: str = "scalar"
) -> tuple[list[float], list[tuple[float, float, float]], dict]:
    """One mapping flight; returns times, true trajectory, and extras."""
    scenario = build_three_uav_world(seed=seed, n_persons=0, engine=engine)
    world = scenario.world
    uav = world.uavs["uav1"]
    uav.start_mission(boustrophedon_path(MAPPING_STRIP, MAPPING_ALTITUDE_M))

    extras: dict = {
        "eddi_detection_s": None,
        "sensor_detection_s": None,
        "ids_alert_count": 0,
        "attack_path": [],
    }
    broker = MqttBroker()
    ids = IntrusionDetectionSystem(bus=world.bus, broker=broker)
    for node in ("uav1", "uav2", "uav3", "uav_manager", "gcs"):
        ids.register_node(node)
    eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
    detector = GpsSpoofingDetector()

    if attack:
        world.add_attacker(
            SpoofingAttack(
                bus=world.bus,
                t_start=ATTACK_START_S,
                name="adversary",
                topic="/uav1/pose",
                spoofed_sender="uav1",
                payload_fn=lambda now: {"forged_pose": True, "t": now},
                rate_hz=5.0,
            )
        )

    times: list[float] = []
    trajectory: list[tuple[float, float, float]] = []
    while world.time < duration_s:
        world.step()
        now = world.time
        if attack and now >= ATTACK_START_S:
            # Physical GPS spoof: eastward pull ramping to the max offset.
            offset = min(SPOOF_MAX_OFFSET_M, SPOOF_RAMP_MPS * (now - ATTACK_START_S))
            uav.sensors.gps.spoof_offset_m = (offset, 0.0, 0.0)

        fix = uav.sensors.gps.measure(uav.dynamics.position, now)
        if fix.valid:
            verdict = detector.update(
                now,
                world.frame.to_enu(fix.point),
                uav.sensors.imu.measure(uav.dynamics.ground_velocity),
                world.dt,
            )
            if verdict.spoofed and extras["sensor_detection_s"] is None:
                extras["sensor_detection_s"] = now

        ids.scan(now)
        if eddi.events and extras["eddi_detection_s"] is None:
            extras["eddi_detection_s"] = eddi.events[0].stamp
            extras["attack_path"] = eddi.events[0].attack_path

        times.append(now)
        trajectory.append(uav.dynamics.position)
        if uav.mode is FlightMode.LANDED:
            break

    extras["ids_alert_count"] = len(ids.alerts)
    return times, trajectory, extras


def run_fig6_spoofing_experiment(
    seed: int = 9, duration_s: float = 240.0, engine: str = "scalar"
) -> Fig6Result:
    """Fly the mapping mission clean and attacked; compare trajectories."""
    times_clean, clean, _ = _fly_mapping(
        seed, attack=False, duration_s=duration_s, engine=engine
    )
    times_atk, attacked, extras = _fly_mapping(
        seed, attack=True, duration_s=duration_s, engine=engine
    )

    n = min(len(clean), len(attacked))
    deviation = [math.dist(clean[i], attacked[i]) for i in range(n)]
    return Fig6Result(
        times=times_atk[:n],
        clean_trajectory=clean[:n],
        attacked_trajectory=attacked[:n],
        deviation_m=deviation,
        max_deviation_m=max(deviation) if deviation else 0.0,
        attack_start_s=ATTACK_START_S,
        eddi_detection_s=extras["eddi_detection_s"],
        sensor_detection_s=extras["sensor_detection_s"],
        ids_alert_count=extras["ids_alert_count"],
        attack_path=extras["attack_path"],
    )
