"""Fig. 5 — probability of failure under a battery fault, with/without SESAME.

Scenario (paper Sec. V-A): three UAVs fly a SAR mission; one UAV's battery
"became faulty due to high temperature, causing a sharp drop from 80% to
40% at the 250th second"; the mission nominally completes "around the
510th second".

Without SESAME the UAV aborts immediately on the battery drop, returns to
base for a replacement ("estimated to take 60 seconds"), flies back out
and finishes the remaining coverage — paying transit and swap overhead.

With SESAME, the SafeDrones monitor tracks the live probability of
failure; the UAV continues until the predefined PoF threshold (0.9) and
completes the mission in one pass, then performs the (by then post-
mission) emergency landing and battery replacement.

Availability definition (used consistently for both scenarios):
``availability = productive_mission_time / time_until_available_again``
where the denominator runs until the UAV is safely landed with a healthy
battery (the 60 s replacement is charged to both scenarios — the faulted
pack must be swapped either way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.common import build_three_uav_world
from repro.safedrones.monitor import SafeDronesMonitor
from repro.sar.coverage import boustrophedon_path
from repro.uav.battery import Battery, BatteryFault
from repro.uav.uav import FlightMode, Uav

FAULT_TIME_S = 250.0
SOC_BEFORE_FAULT = 0.80
SOC_AFTER_FAULT = 0.40
POF_THRESHOLD = 0.9
BATTERY_SWAP_S = 60.0
RELAUNCH_CHECK_S = 25.0  # pre-flight checks before a mid-mission relaunch
MISSION_ALTITUDE_M = 20.0
MISSION_STRIP = ((0.0, 260.0), (0.0, 300.0))


@dataclass
class ScenarioTrace:
    """Time series and milestones from one policy run."""

    times: list[float] = field(default_factory=list)
    pof: list[float] = field(default_factory=list)
    soc: list[float] = field(default_factory=list)
    temp_c: list[float] = field(default_factory=list)
    mode: list[str] = field(default_factory=list)
    abort_time: float | None = None
    mission_complete_time: float | None = None
    available_again_time: float | None = None
    threshold_crossing_time: float | None = None
    productive_time_s: float = 0.0


@dataclass(frozen=True)
class Fig5Result:
    """Paper-figure payload: both curves plus the headline metrics."""

    with_sesame: ScenarioTrace
    without_sesame: ScenarioTrace
    nominal_mission_s: float
    availability_with: float
    availability_without: float
    availability_improvement: float
    completion_improvement: float

    def summary_rows(self) -> list[tuple[str, float, float]]:
        """(metric, with, without) rows matching the paper's narrative."""
        return [
            ("availability", self.availability_with, self.availability_without),
            (
                "time_until_available_s",
                self.with_sesame.available_again_time or float("nan"),
                self.without_sesame.available_again_time or float("nan"),
            ),
            (
                "mission_complete_s",
                self.with_sesame.mission_complete_time or float("nan"),
                self.without_sesame.mission_complete_time or float("nan"),
            ),
        ]


def _make_faulted_uav(world, uav: Uav) -> None:
    """Arrange the paper's SoC trajectory: 80% at the fault, drop to 40%.

    The initial SoC is back-computed so that after the pre-fault cruise
    drain the pack sits at 80% when the fault manifests at t=250 s.
    """
    spec = uav.battery.spec
    pre_fault_drain = spec.cruise_draw_w * FAULT_TIME_S / 3600.0 / spec.capacity_wh
    uav.battery.soc = min(1.0, SOC_BEFORE_FAULT + pre_fault_drain)
    uav.battery.inject_fault(
        BatteryFault(at_time=FAULT_TIME_S, soc_drop_to=SOC_AFTER_FAULT)
    )


def _mission_path() -> list[tuple[float, float, float]]:
    """The faulted UAV's coverage strip, sized for a ~510 s mission."""
    return boustrophedon_path(MISSION_STRIP, MISSION_ALTITUDE_M)


def _measure_nominal_mission_s(seed: int, engine: str = "scalar") -> float:
    """Clean-run mission duration (no fault, no policy interference)."""
    scenario = build_three_uav_world(seed=seed, n_persons=0, engine=engine)
    world = scenario.world
    uav = world.uavs["uav1"]
    uav.dynamics.max_speed_mps = 7.6
    uav.start_mission(_mission_path())
    while uav.mode is FlightMode.MISSION and world.time < 2000.0:
        world.step()
    return world.time


def _run_policy(seed: int, use_sesame: bool, engine: str = "scalar") -> ScenarioTrace:
    scenario = build_three_uav_world(seed=seed, n_persons=0, engine=engine)
    world = scenario.world
    uav = world.uavs["uav1"]
    uav.dynamics.max_speed_mps = 7.6
    _make_faulted_uav(world, uav)
    uav.start_mission(_mission_path())

    monitor = SafeDronesMonitor(uav_id="uav1", pof_abort_threshold=POF_THRESHOLD)
    trace = ScenarioTrace()
    swap_started: float | None = None
    resumed = False
    remaining: list[tuple[float, float, float]] = []

    while world.time < 2500.0:
        world.step()
        now = world.time
        soc = uav.battery.soc
        temp = uav.sensors.temperature.measure(uav.battery.temp_c)
        assessment = monitor.update(now, soc, temp)

        trace.times.append(now)
        trace.pof.append(assessment.failure_probability)
        trace.soc.append(soc)
        trace.temp_c.append(temp)
        trace.mode.append(uav.mode.value)
        if uav.mode is FlightMode.MISSION:
            trace.productive_time_s += world.dt

        if (
            trace.threshold_crossing_time is None
            and assessment.failure_probability >= POF_THRESHOLD
        ):
            trace.threshold_crossing_time = now

        if use_sesame:
            # SESAME policy: continue until the PoF threshold; the mission
            # normally completes first (plan completion flips the mode).
            if assessment.abort_recommended and uav.mode is FlightMode.MISSION:
                trace.abort_time = now
                uav.command_mode(FlightMode.EMERGENCY_LAND)
        else:
            # Naive policy: abort on the detected SoC collapse.
            if (
                trace.abort_time is None
                and monitor.battery_fault_detected
                and uav.mode is FlightMode.MISSION
            ):
                trace.abort_time = now
                remaining = uav.plan.waypoints[uav.plan.index :]
                uav.command_mode(FlightMode.RETURN_TO_BASE)
            if (
                trace.abort_time is not None
                and not resumed
                and uav.mode is FlightMode.LANDED
                and swap_started is None
            ):
                swap_started = now
            if (
                swap_started is not None
                and not resumed
                and now - swap_started >= BATTERY_SWAP_S + RELAUNCH_CHECK_S
            ):
                # Fresh pack installed; relaunch and finish the coverage.
                uav.battery = Battery(spec=uav.spec.battery_spec)
                resumed = True
                uav.start_mission(remaining)

        # Coverage complete (either policy): bring the aircraft down.
        if uav.plan.complete and trace.mission_complete_time is None:
            trace.mission_complete_time = now
            uav.command_mode(FlightMode.EMERGENCY_LAND)

        # Landed after mission completion (or after a mid-mission abort)
        # -> swap if the pack on board is faulted, then the UAV is
        # available again. Keep the monitor running briefly afterwards so
        # the PoF threshold crossing (which the paper's curve reaches
        # around the 510th second) is recorded even when the vehicle
        # touches down just before the crossing.
        mission_over = (
            trace.mission_complete_time is not None
            or (use_sesame and trace.abort_time is not None)
        )
        if (
            mission_over
            and uav.mode is FlightMode.LANDED
            and trace.available_again_time is None
        ):
            swap = BATTERY_SWAP_S if uav.battery.faulted else 0.0
            trace.available_again_time = now + swap
        if trace.available_again_time is not None and (
            trace.threshold_crossing_time is not None
            or now >= trace.available_again_time + 60.0
        ):
            break

    return trace


def run_fig5_battery_experiment(seed: int = 3, engine: str = "scalar") -> Fig5Result:
    """Run both policies and compute the availability comparison."""
    nominal = _measure_nominal_mission_s(seed, engine=engine)
    with_trace = _run_policy(seed, use_sesame=True, engine=engine)
    without_trace = _run_policy(seed, use_sesame=False, engine=engine)

    def availability(trace: ScenarioTrace) -> float:
        """Productive mission time over total busy time.

        The numerator is capped at the nominal mission duration so re-fly
        transit (flown in MISSION mode by the naive policy) earns no
        credit; an aborted-but-landed run keeps the credit for the work it
        did complete.
        """
        if trace.available_again_time is None:
            return 0.0
        productive = min(nominal, trace.productive_time_s)
        return min(1.0, productive / trace.available_again_time)

    availability_with = availability(with_trace)
    availability_without = availability(without_trace)
    t_w = with_trace.available_again_time or math.inf
    t_wo = without_trace.available_again_time or math.inf
    return Fig5Result(
        with_sesame=with_trace,
        without_sesame=without_trace,
        nominal_mission_s=nominal,
        availability_with=availability_with,
        availability_without=availability_without,
        availability_improvement=availability_with - availability_without,
        completion_improvement=(t_wo - t_w) / t_wo if math.isfinite(t_wo) else 0.0,
    )
