"""Fig. 4 — the SESAME multi-UAV platform demonstration.

"The multi-UAV platform coordinates these three UAVs as they run the SAR
algorithm, scanning the designated area ... and searching for people ...
the UAV status information ... is shown in blue boxes ... The output from
the selected SESAME algorithms ... is presented in the red box."

This driver runs the platform demonstration end-to-end and returns every
panel of the figure: the area map with three scan tracks and person
markers, the per-UAV status boxes, and the SESAME output panel (the
mission decider verdict plus per-UAV guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decider import MissionDecider, MissionDecision
from repro.core.uav_network import UavConSertNetwork
from repro.experiments.common import build_three_uav_world
from repro.platform.database import DatabaseManager
from repro.platform.gui import render_fleet_status, render_mission_panel
from repro.platform.map_view import MapView
from repro.platform.recorder import FlightRecorder
from repro.platform.task_manager import TaskManager
from repro.platform.uav_manager import UavManager
from repro.sar.mission import MissionMetrics, SarMission
from repro.safedrones.monitor import SafeDronesMonitor


@dataclass(frozen=True)
class Fig4Result:
    """Every panel of the Fig. 4 demonstration."""

    map_panel: str
    status_panel: str
    sesame_panel: str
    metrics: MissionMetrics
    decision: MissionDecision

    def render(self) -> str:
        """The full figure as one text block."""
        return "\n\n".join(
            [
                self.map_panel,
                self.status_panel,
                self.sesame_panel,
                (
                    f"persons found: {self.metrics.persons_found}/"
                    f"{self.metrics.persons_total}  "
                    f"coverage: {100 * self.metrics.coverage_fraction:.0f}%  "
                    f"mission time: {self.metrics.duration_s or 0:.0f} s"
                ),
            ]
        )


def run_fig4_platform_demo(
    seed: int = 42,
    n_persons: int = 8,
    max_time_s: float = 1500.0,
    engine: str = "scalar",
) -> Fig4Result:
    """Run the three-UAV platform demonstration to completion."""
    scenario = build_three_uav_world(seed=seed, n_persons=n_persons, engine=engine)
    world = scenario.world

    manager = UavManager(bus=world.bus, database=DatabaseManager())
    recorder = FlightRecorder(bus=world.bus)
    decider = MissionDecider()
    monitors = {}
    networks = {}
    for uav in world.uavs.values():
        manager.connect(uav)
        recorder.watch(uav.spec.uav_id)
        network = UavConSertNetwork(uav_id=uav.spec.uav_id)
        network.set_reliability_level("high")
        decider.add_uav(network)
        networks[uav.spec.uav_id] = network
        monitors[uav.spec.uav_id] = SafeDronesMonitor(uav_id=uav.spec.uav_id)

    TaskManager(uav_manager=manager).execute(
        "sar_coverage", {"area_size_m": world.area_size_m, "altitude_m": 20.0}
    )
    mission = SarMission(world=world, altitude_m=20.0)
    mission.metrics.started_at = world.time
    while not mission.mission_complete and world.time < max_time_s:
        mission.step()
        for uav_id, uav in world.uavs.items():
            assessment = monitors[uav_id].update(
                world.time, uav.battery.soc, uav.battery.temp_c
            )
            networks[uav_id].set_reliability_level(assessment.level.value)

    decision = decider.decide()
    view = MapView()
    return Fig4Result(
        map_panel=view.render(world, tracks=recorder.records and {
            uav_id: [(r.east, r.north, r.up) for r in records]
            for uav_id, records in recorder.records.items()
        }),
        status_panel=render_fleet_status(manager.fleet_status()),
        sesame_panel=render_mission_panel(decision),
        metrics=mission.metrics,
        decision=decision,
    )
