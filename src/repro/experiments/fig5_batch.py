"""Sample-axis batched Fig. 5 Monte-Carlo runner.

The scalar Monte-Carlo path (:mod:`repro.experiments.monte_carlo`) runs
one full :func:`repro.experiments.fig5_battery.run_fig5_battery_experiment`
per grid point: three worlds (nominal, SESAME, naive) of three UAVs each,
with a per-step scipy ``expm`` inside the SafeDrones monitor — by far the
slowest registered campaign. This module runs *N samples as one stacked
simulation*: every sample's ``uav1`` clone becomes one row of a single
vectorized world, the per-row policy state machines mirror
``_run_policy`` statement for statement, and the SafeDrones monitors
collapse into one :class:`repro.core.batch.BatchSafeDrones` bank (one
stacked ``expm`` per step for the whole sample axis).

Bit-exactness: a sample's trajectory depends only on its own spawned RNG
streams (``uav_rng_streams`` child 0 is a pure function of the seed —
fleet membership never perturbs it), the shared ``dt``/frame/area, and
its own fault script. Rows therefore cannot contaminate each other, and
each row reproduces the scalar run to the bit —
``tests/test_assurance_equivalence.py`` pins the campaign fingerprint of
the batched path to the scalar golden.

Used via ``run_campaign(..., batch=True)`` / ``python -m repro campaign
monte-carlo --batch``: the harness hands every pending (config, seed)
pair to :func:`monte_carlo_batch` and records the per-sample results
exactly as the per-sample path would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchSafeDrones
from repro.experiments import fig5_battery as fig5
from repro.experiments.common import uav_rng_streams
from repro.geo import EnuFrame, GeoPoint
from repro.sar.coverage import boustrophedon_path
from repro.uav.battery import Battery, BatteryFault
from repro.uav.uav import FlightMode, Uav, UavSpec
from repro.uav.world import World


@dataclass
class _PolicyState:
    """Per-row mirror of ``fig5_battery.ScenarioTrace`` + loop locals."""

    productive_time_s: float = 0.0
    abort_time: float | None = None
    mission_complete_time: float | None = None
    available_again_time: float | None = None
    threshold_crossing_time: float | None = None
    swap_started: float | None = None
    resumed: bool = False
    remaining: list = field(default_factory=list)
    done: bool = False


def _build_stacked_world(seeds: list[int]) -> World:
    """One vectorized world whose row *k* is sample *k*'s ``uav1`` clone.

    Mirrors ``build_three_uav_world(seed=seed_k, n_persons=0)`` as seen
    by ``uav1``: same frame, area, dt, base position, and — critically —
    the same spawned RNG stream (`SeedSequence(seed).spawn` child 0 is
    independent of how many siblings are spawned). The world's own
    generator is never consumed with zero persons, so sharing one world
    across samples is unobservable.
    """
    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1456, 33.4299, 0.0)),
        rng=np.random.default_rng(0),
        area_size_m=(400.0, 300.0),
        dt=0.5,
        engine="vectorized",
    )
    for k, seed in enumerate(seeds):
        uav = Uav(
            spec=UavSpec(uav_id=f"s{k}", base_position=(30.0, -20.0, 0.0)),
            frame=world.frame,
            bus=world.bus,
            rng=uav_rng_streams(seed, 1)[0],
        )
        world.add_uav(uav)
        uav.dynamics.max_speed_mps = 7.6
    return world


def _mission_path() -> list[tuple[float, float, float]]:
    return boustrophedon_path(fig5.MISSION_STRIP, fig5.MISSION_ALTITUDE_M)


def _measure_nominal_stacked(seeds: list[int]) -> list[float]:
    """Per-row clean-run mission duration (``_measure_nominal_mission_s``)."""
    world = _build_stacked_world(seeds)
    uavs = list(world.uavs.values())
    path = _mission_path()
    for uav in uavs:
        uav.start_mission(path)
    nominal = [0.0] * len(uavs)
    active = set(range(len(uavs)))
    while active:
        for k in sorted(active):
            if not (
                uavs[k].mode is FlightMode.MISSION and world.time < 2000.0
            ):
                nominal[k] = world.time
                active.discard(k)
        if not active:
            break
        world.step()
    return nominal


def _run_policy_stacked(
    seeds: list[int],
    fault_times: list[float],
    soc_after: list[float],
    use_sesame: bool,
) -> list[_PolicyState]:
    """All samples' ``_run_policy`` runs, stepped as one stacked world.

    The loop body is the scalar policy body verbatim, executed per active
    row each step; the SafeDrones monitors are one batched bank (scalar
    construction: ``SafeDronesMonitor(pof_abort_threshold=0.9)`` with no
    ``motors_failed`` feed). Rows that reach their scalar break condition
    go inactive — the world keeps stepping for the stragglers, which the
    finished rows' recorded state no longer observes.
    """
    n = len(seeds)
    world = _build_stacked_world(seeds)
    fleet = world._fleet
    arrays = fleet.arrays
    uavs = list(world.uavs.values())
    path = _mission_path()
    for k, uav in enumerate(uavs):
        # _make_faulted_uav, with per-row scenario constants.
        spec = uav.battery.spec
        pre_fault_drain = (
            spec.cruise_draw_w * fault_times[k] / 3600.0 / spec.capacity_wh
        )
        uav.battery.soc = min(1.0, fig5.SOC_BEFORE_FAULT + pre_fault_drain)
        uav.battery.inject_fault(
            BatteryFault(at_time=fault_times[k], soc_drop_to=soc_after[k])
        )
        uav.start_mission(path)

    monitors = BatchSafeDrones(
        n,
        [uav.spec.rotor_count for uav in uavs],
        pof_abort_threshold=fig5.POF_THRESHOLD,
    )
    temp_std = np.array(
        [uav.sensors.temperature.noise_std_c for uav in uavs], dtype=float
    )
    states = [_PolicyState() for _ in range(n)]
    active = list(range(n))
    dt = world.dt
    swap_ready_s = fig5.BATTERY_SWAP_S + fig5.RELAUNCH_CHECK_S

    while active and world.time < 2500.0:
        world.step()
        now = world.time
        soc = arrays.soc[:n].copy()
        zt = fleet.ch_temp.take_all()[:n, 0]
        temp = arrays.temp_c[:n] + temp_std * zt
        total = monitors.update(now, soc, temp)

        soc_l = soc.tolist()
        temp_l = temp.tolist()
        pof_l = total.tolist()
        fault_detected = monitors.battery_fault_detected
        abort_recommended = monitors.abort_recommended
        still_active = []
        for k in active:
            uav = uavs[k]
            state = states[k]
            pof = pof_l[k]
            if uav.mode is FlightMode.MISSION:
                state.productive_time_s += dt
            if (
                state.threshold_crossing_time is None
                and pof >= fig5.POF_THRESHOLD
            ):
                state.threshold_crossing_time = now

            if use_sesame:
                if abort_recommended[k] and uav.mode is FlightMode.MISSION:
                    state.abort_time = now
                    uav.command_mode(FlightMode.EMERGENCY_LAND)
            else:
                if (
                    state.abort_time is None
                    and fault_detected[k]
                    and uav.mode is FlightMode.MISSION
                ):
                    state.abort_time = now
                    state.remaining = uav.plan.waypoints[uav.plan.index:]
                    uav.command_mode(FlightMode.RETURN_TO_BASE)
                if (
                    state.abort_time is not None
                    and not state.resumed
                    and uav.mode is FlightMode.LANDED
                    and state.swap_started is None
                ):
                    state.swap_started = now
                if (
                    state.swap_started is not None
                    and not state.resumed
                    and now - state.swap_started >= swap_ready_s
                ):
                    uav.battery = Battery(spec=uav.spec.battery_spec)
                    state.resumed = True
                    uav.start_mission(state.remaining)

            if uav.plan.complete and state.mission_complete_time is None:
                state.mission_complete_time = now
                uav.command_mode(FlightMode.EMERGENCY_LAND)

            mission_over = state.mission_complete_time is not None or (
                use_sesame and state.abort_time is not None
            )
            if (
                mission_over
                and uav.mode is FlightMode.LANDED
                and state.available_again_time is None
            ):
                swap = fig5.BATTERY_SWAP_S if uav.battery.faulted else 0.0
                state.available_again_time = now + swap
            if state.available_again_time is not None and (
                state.threshold_crossing_time is not None
                or now >= state.available_again_time + 60.0
            ):
                state.done = True
            else:
                still_active.append(k)
        active = still_active
        # Unused per-step locals kept to match scalar reads exactly.
        del soc_l, temp_l
    return states


def _availability(state: _PolicyState, nominal: float) -> float:
    """``run_fig5_battery_experiment``'s availability, per row."""
    if state.available_again_time is None:
        return 0.0
    productive = min(nominal, state.productive_time_s)
    return min(1.0, productive / state.available_again_time)


def monte_carlo_batch(configs: list[dict], seeds: list[int], timer) -> list[dict]:
    """The entire pending grid as one stacked simulation per policy.

    Returns per-sample result dicts bit-identical to
    :func:`repro.experiments.monte_carlo.monte_carlo_sample` — the
    campaign fingerprint of a batched run must equal the scalar golden.
    """
    run_seeds = [
        int(config.get("seed", seed)) for config, seed in zip(configs, seeds)
    ]
    fault_times = [float(config["fault_time_s"]) for config in configs]
    soc_after = [float(config["soc_after_fault"]) for config in configs]
    with timer.phase("simulate"):
        nominal = _measure_nominal_stacked(run_seeds)
        with_states = _run_policy_stacked(
            run_seeds, fault_times, soc_after, use_sesame=True
        )
        without_states = _run_policy_stacked(
            run_seeds, fault_times, soc_after, use_sesame=False
        )
    results = []
    for k, config in enumerate(configs):
        with_state = with_states[k]
        results.append(
            {
                "seed": run_seeds[k],
                "fault_time_s": fault_times[k],
                "soc_after_fault": soc_after[k],
                "availability_with": _availability(with_state, nominal[k]),
                "availability_without": _availability(
                    without_states[k], nominal[k]
                ),
                "completed_one_pass": (
                    with_state.abort_time is None
                    and with_state.mission_complete_time is not None
                ),
            }
        )
    return results
