"""Experiment drivers reproducing every figure/result in the paper's Sec. V.

One module per experiment; each exposes a ``run_*`` function returning a
structured result dataclass, shared by the examples, the benchmark
harness, and EXPERIMENTS.md. See DESIGN.md's per-experiment index.
"""

from repro.experiments.fig5_battery import Fig5Result, run_fig5_battery_experiment
from repro.experiments.sar_accuracy import SarAccuracyResult, run_sar_accuracy_experiment
from repro.experiments.fig6_spoofing import Fig6Result, run_fig6_spoofing_experiment
from repro.experiments.fig7_collab_landing import (
    Fig7Result,
    run_fig7_collaborative_landing,
)
from repro.experiments.conserts_network import (
    ConsertScenarioResult,
    run_conserts_scenario_matrix,
)
from repro.experiments.monte_carlo import MonteCarloResult, run_monte_carlo_fig5
from repro.experiments.fig4_platform import Fig4Result, run_fig4_platform_demo
from repro.experiments.comm_availability import (
    CommAvailabilityResult,
    CommSweepPoint,
    run_comm_availability_experiment,
)
from repro.experiments.fleet_scale import (
    FleetScalePoint,
    FleetScaleResult,
    run_fleet_scale_experiment,
)

__all__ = [
    "Fig5Result",
    "run_fig5_battery_experiment",
    "SarAccuracyResult",
    "run_sar_accuracy_experiment",
    "Fig6Result",
    "run_fig6_spoofing_experiment",
    "Fig7Result",
    "run_fig7_collaborative_landing",
    "ConsertScenarioResult",
    "run_conserts_scenario_matrix",
    "MonteCarloResult",
    "run_monte_carlo_fig5",
    "Fig4Result",
    "run_fig4_platform_demo",
    "CommAvailabilityResult",
    "CommSweepPoint",
    "run_comm_availability_experiment",
    "FleetScalePoint",
    "FleetScaleResult",
    "run_fleet_scale_experiment",
]
