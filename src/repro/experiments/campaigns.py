"""Campaign registry aggregator: import this to register every campaign.

Each campaign experiment registers itself as an import side effect of
its defining module (which is also how pool workers rediscover it); this
module just pulls them all in so the CLI — and anything else that wants
the full catalogue — has a single import to make.
"""

from __future__ import annotations

import repro.experiments.comm_availability  # noqa: F401  (registers "comm")
import repro.experiments.fleet_scale  # noqa: F401  (registers "fleet-scale")
import repro.experiments.monte_carlo  # noqa: F401  (registers "monte-carlo")
import repro.harness.chaos  # noqa: F401  (registers "chaos")
import repro.harness.fuzz.campaign  # noqa: F401  (registers "fuzz")
import repro.harness.synthetic  # noqa: F401  (registers "synthetic")
import repro.plan.experiment  # noqa: F401  (registers "planner-ablation")
import repro.swarm.experiment  # noqa: F401  (registers "swarm-sizing")

from repro.harness.campaign import get_experiment, list_experiments

__all__ = ["experiment_catalog", "get_experiment", "list_experiments"]


def experiment_catalog() -> list[dict]:
    """JSON-able listing of every registered experiment and its presets.

    The discovery surface clients build ``POST /jobs`` payloads from:
    served verbatim at ``GET /experiments`` and printed by
    ``python -m repro campaign --list``.
    """
    return [
        {
            "name": experiment.name,
            "describe": experiment.describe,
            "version": experiment.version,
            "presets": list(experiment.presets),
            "batchable": experiment.batch_fn is not None,
        }
        for experiment in list_experiments()
    ]
