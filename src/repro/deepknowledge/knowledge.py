"""Transfer-knowledge neuron selection, coverage, and runtime uncertainty.

DeepKnowledge operates in two phases (paper Sec. III-A3):

Design time
    Present the trained network with in-domain data and a shifted
    counterpart; rank neurons by how *stable* their activation
    distribution is across the shift (Hellinger distance between binned
    activation histograms). The most stable neurons are the
    transfer-knowledge (TK) neurons — the carriers of generalisable
    abstractions. A coverage score over the TK neurons' activation bins
    quantifies how thoroughly a test set exercises the model's
    generalisation behaviour.

Runtime
    For each incoming activation trace, measure what fraction of TK-neuron
    activations fall outside the activation ranges seen at design time;
    that out-of-range fraction is the uncertainty metric attached to the
    prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.deepknowledge.network import FeedForwardNetwork


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Hellinger distance between two discrete distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have equal support")
    p = p / max(p.sum(), 1e-12)
    q = q / max(q.sum(), 1e-12)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p) - np.sqrt(q)) ** 2)))


@dataclass(frozen=True)
class TransferKnowledgeNeuron:
    """One selected TK neuron with its design-time activation statistics."""

    index: int
    stability: float  # 1 - Hellinger distance across the domain shift
    bin_edges: np.ndarray
    low: float
    high: float
    mean: float
    std: float


@dataclass(frozen=True)
class CoverageReport:
    """Design-time coverage of TK activation bins by a test set."""

    covered_bins: int
    total_bins: int

    @property
    def score(self) -> float:
        """Fraction of TK (neuron, bin) combinations exercised."""
        if self.total_bins == 0:
            return 0.0
        return self.covered_bins / self.total_bins


@dataclass
class DeepKnowledgeAnalyzer:
    """Whitebox analyzer bound to one trained network.

    Parameters
    ----------
    tk_fraction:
        Fraction of hidden neurons retained as transfer-knowledge neurons.
    n_bins:
        Histogram bins per neuron for stability and coverage analysis.
    range_quantiles:
        Design-time activation quantiles defining "in-range" at runtime.
    """

    network: FeedForwardNetwork
    tk_fraction: float = 0.25
    n_bins: int = 10
    range_quantiles: tuple[float, float] = (0.01, 0.99)
    tk_neurons: list[TransferKnowledgeNeuron] = field(default_factory=list)

    # --------------------------------------------------------- design time
    def fit(self, in_domain: np.ndarray, shifted: np.ndarray) -> list[TransferKnowledgeNeuron]:
        """Select TK neurons from in-domain vs shifted activation traces."""
        if not 0.0 < self.tk_fraction <= 1.0:
            raise ValueError("tk_fraction must be in (0, 1]")
        trace_in = self.network.activation_trace(in_domain)
        trace_shift = self.network.activation_trace(shifted)
        n_neurons = trace_in.shape[1]
        stabilities = np.zeros(n_neurons)
        edges_per_neuron: list[np.ndarray] = []
        for j in range(n_neurons):
            lo = min(trace_in[:, j].min(), trace_shift[:, j].min())
            hi = max(trace_in[:, j].max(), trace_shift[:, j].max())
            if hi - lo < 1e-12:
                hi = lo + 1e-12
            edges = np.linspace(lo, hi, self.n_bins + 1)
            hist_in, _ = np.histogram(trace_in[:, j], bins=edges)
            hist_shift, _ = np.histogram(trace_shift[:, j], bins=edges)
            stabilities[j] = 1.0 - hellinger_distance(hist_in, hist_shift)
            edges_per_neuron.append(edges)
        # Dead or near-constant neurons are trivially "stable" but carry no
        # knowledge; exclude them from selection (unless nothing else is
        # available).
        live = trace_in.std(axis=0) > 1e-9
        ranked = sorted(
            range(n_neurons),
            key=lambda j: (bool(live[j]), stabilities[j]),
            reverse=True,
        )
        k = max(1, int(round(self.tk_fraction * n_neurons)))
        selected = ranked[:k]
        self.tk_neurons = []
        for j in sorted(int(i) for i in selected):
            lo_q, hi_q = np.quantile(trace_in[:, j], self.range_quantiles)
            self.tk_neurons.append(
                TransferKnowledgeNeuron(
                    index=j,
                    stability=float(stabilities[j]),
                    bin_edges=edges_per_neuron[j],
                    low=float(lo_q),
                    high=float(hi_q),
                    mean=float(trace_in[:, j].mean()),
                    std=float(trace_in[:, j].std() + 1e-9),
                )
            )
        return self.tk_neurons

    @property
    def fitted(self) -> bool:
        """Whether TK neurons have been selected."""
        return bool(self.tk_neurons)

    def coverage(self, test_inputs: np.ndarray) -> CoverageReport:
        """TK-bin coverage score of a test set (design-time metric)."""
        self._require_fit()
        trace = self.network.activation_trace(test_inputs)
        covered = 0
        total = 0
        for neuron in self.tk_neurons:
            hist, _ = np.histogram(trace[:, neuron.index], bins=neuron.bin_edges)
            covered += int(np.count_nonzero(hist))
            total += self.n_bins
        return CoverageReport(covered_bins=covered, total_bins=total)

    def combination_coverage(
        self, test_inputs: np.ndarray, max_pairs: int = 20
    ) -> CoverageReport:
        """Pairwise joint-bin coverage over TK neurons.

        Stricter than per-neuron coverage: a test set can light every
        individual bin yet never exercise *combinations* of abstractions.
        Counts observed (bin_i, bin_j) joint cells over the first
        ``max_pairs`` adjacent TK-neuron pairs.
        """
        self._require_fit()
        if len(self.tk_neurons) < 2:
            raise ValueError("need at least two TK neurons for pair coverage")
        trace = self.network.activation_trace(test_inputs)
        covered = 0
        total = 0
        pairs = list(zip(self.tk_neurons, self.tk_neurons[1:]))[:max_pairs]
        for first, second in pairs:
            bins_i = np.clip(
                np.digitize(trace[:, first.index], first.bin_edges) - 1,
                0,
                self.n_bins - 1,
            )
            bins_j = np.clip(
                np.digitize(trace[:, second.index], second.bin_edges) - 1,
                0,
                self.n_bins - 1,
            )
            covered += len(set(zip(bins_i.tolist(), bins_j.tolist())))
            total += self.n_bins * self.n_bins
        return CoverageReport(covered_bins=covered, total_bins=total)

    # ------------------------------------------------------------- runtime
    def uncertainty(self, inputs: np.ndarray) -> float:
        """Runtime uncertainty in [0, 1] for a batch of inputs.

        Two complementary activation-trace signals, combined by max:

        * the fraction of TK-neuron activations outside the design-time
          quantile range (inputs driving the generalising neurons into
          regions never validated), and
        * the mean per-neuron batch-mean shift in training standard
          deviations (catches collapse-to-zero under ReLU, where every
          activation is technically "in range" but the distribution has
          clearly moved).
        """
        self._require_fit()
        trace = self.network.activation_trace(inputs)
        out_of_range = 0
        total = 0
        shifts = []
        for neuron in self.tk_neurons:
            col = trace[:, neuron.index]
            out_of_range += int(np.sum((col < neuron.low) | (col > neuron.high)))
            total += col.size
            z = abs(float(col.mean()) - neuron.mean) / neuron.std
            shifts.append(min(1.0, z / 2.0))
        if total == 0:
            return 0.0
        oor_fraction = out_of_range / total
        return max(oor_fraction, float(np.mean(shifts)))

    def _require_fit(self) -> None:
        if not self.fitted:
            raise RuntimeError("call fit() before using the analyzer")
