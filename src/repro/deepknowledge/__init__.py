"""DeepKnowledge: generalisation-driven DNN testing and runtime uncertainty.

DeepKnowledge (paper Sec. III-A3) is a whitebox technique that "assesses
the internal neuron behaviours of the given ML model": at design time it
identifies *transfer-knowledge* neurons — the neurons whose learned
abstractions generalise across domain shift — and computes a coverage
score over their activation ranges; at runtime it "analy[ses] image
activation traces in the DNN and estimat[es] an uncertainty metric for
prediction accuracy".

The paper applies it to tiny YOLOv4 person detection; here the network
under analysis is a from-scratch NumPy MLP (see DESIGN.md substitutions),
which exhibits the same activation-trace behaviour the method consumes.
"""

from repro.deepknowledge.network import FeedForwardNetwork, TrainConfig
from repro.deepknowledge.knowledge import (
    CoverageReport,
    DeepKnowledgeAnalyzer,
    TransferKnowledgeNeuron,
)

__all__ = [
    "FeedForwardNetwork",
    "TrainConfig",
    "CoverageReport",
    "DeepKnowledgeAnalyzer",
    "TransferKnowledgeNeuron",
]
