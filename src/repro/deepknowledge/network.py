"""A from-scratch NumPy feed-forward classifier with activation access.

Stands in for the tiny YOLOv4 person detector the paper runs on the
Jetson: DeepKnowledge and SafeML only need (a) a trained network, (b) its
per-layer activation traces, and (c) its predictions — all of which this
MLP provides. Training is plain mini-batch SGD with ReLU hidden layers
and a softmax cross-entropy head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for :meth:`FeedForwardNetwork.train`."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 0.05
    l2: float = 1e-4


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@dataclass
class FeedForwardNetwork:
    """ReLU MLP classifier with inspectable hidden activations.

    ``layer_sizes`` includes input and output sizes, e.g. ``[8, 32, 16, 2]``
    for an 8-feature binary classifier with two hidden layers.
    """

    layer_sizes: list[int]
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(11))
    weights: list[np.ndarray] = field(default_factory=list)
    biases: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2:
            raise ValueError("need at least input and output layers")
        if not self.weights:
            for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
                scale = np.sqrt(2.0 / fan_in)
                self.weights.append(self.rng.normal(0.0, scale, size=(fan_in, fan_out)))
                self.biases.append(np.zeros(fan_out))

    @property
    def n_hidden_layers(self) -> int:
        """Number of hidden (ReLU) layers."""
        return len(self.layer_sizes) - 2

    # -------------------------------------------------------------- forward
    def forward(self, x: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Full forward pass.

        Returns ``(hidden_activations, probabilities)`` where
        ``hidden_activations[k]`` is the post-ReLU output of hidden layer k,
        shape (n_samples, layer_sizes[k+1]).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        activations: list[np.ndarray] = []
        h = x
        for k in range(self.n_hidden_layers):
            h = np.maximum(0.0, h @ self.weights[k] + self.biases[k])
            activations.append(h)
        logits = h @ self.weights[-1] + self.biases[-1]
        return activations, _softmax(logits)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, shape (n_samples, n_classes)."""
        return self.forward(x)[1]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.predict_proba(x), axis=1)

    def activation_trace(self, x: np.ndarray) -> np.ndarray:
        """Concatenated hidden activations per sample — the DNN trace.

        Shape (n_samples, total_hidden_units); this is the object
        DeepKnowledge analyses.
        """
        activations, _ = self.forward(x)
        return np.concatenate(activations, axis=1)

    # --------------------------------------------------------------- train
    def train(
        self, x: np.ndarray, y: np.ndarray, config: TrainConfig | None = None
    ) -> list[float]:
        """Mini-batch SGD on softmax cross-entropy; returns per-epoch loss."""
        config = config or TrainConfig()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=int).ravel()
        n_classes = self.layer_sizes[-1]
        if y.min() < 0 or y.max() >= n_classes:
            raise ValueError("labels out of range for the output layer")
        one_hot = np.eye(n_classes)[y]
        losses = []
        n = x.shape[0]
        for _ in range(config.epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, config.batch_size):
                idx = order[start : start + config.batch_size]
                xb, yb = x[idx], one_hot[idx]
                # Forward, keeping pre-activations for backprop.
                hs = [xb]
                h = xb
                for k in range(self.n_hidden_layers):
                    h = np.maximum(0.0, h @ self.weights[k] + self.biases[k])
                    hs.append(h)
                logits = h @ self.weights[-1] + self.biases[-1]
                probs = _softmax(logits)
                epoch_loss += -np.sum(yb * np.log(probs + 1e-12))
                # Backward.
                grad = (probs - yb) / len(idx)
                for k in range(len(self.weights) - 1, -1, -1):
                    gw = hs[k].T @ grad + config.l2 * self.weights[k]
                    gb = grad.sum(axis=0)
                    if k > 0:
                        grad = (grad @ self.weights[k].T) * (hs[k] > 0.0)
                    self.weights[k] -= config.learning_rate * gw
                    self.biases[k] -= config.learning_rate * gb
            losses.append(epoch_loss / n)
        return losses

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct hard predictions."""
        return float(np.mean(self.predict(x) == np.asarray(y).ravel()))
