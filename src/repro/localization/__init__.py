"""Collaborative Localization (paper Sec. III-C).

"CL allows UAVs to share data for detection, tracking, and positioning,
providing alternative navigation for affected UAVs. Nearby UAVs ...
detect and calculate distances to affected UAVs in real-time using
tinyYOLOv4 and monocular depth estimation. The final position is refined
through trigonometric calculations and the Haversine formula."

Pipeline implemented here:

1. :mod:`repro.localization.detection` — collaborators visually detect the
   affected UAV (field-of-view, range-dependent detection probability).
2. :mod:`repro.localization.depth` — monocular range estimation with
   range-proportional noise (pinhole model).
3. :mod:`repro.localization.collaborative` — each sighting converts to a
   position hypothesis via bearing/elevation trigonometry and the
   haversine-family geodesy in :mod:`repro.geo`; hypotheses fuse by
   inverse-variance weighting.
4. :mod:`repro.localization.fusion` — a constant-velocity Kalman filter
   tracks the affected UAV across sightings.
5. :mod:`repro.localization.landing` — guided safe-landing controller
   feeding CL position estimates back to the GPS-denied UAV (Fig. 7).
"""

from repro.localization.depth import MonocularDepthEstimator
from repro.localization.detection import DroneDetection, DroneDetector
from repro.localization.collaborative import (
    CollaborativeLocalizer,
    PositionEstimate,
    Sighting,
)
from repro.localization.fusion import ConstantVelocityKalman
from repro.localization.landing import GuidedLandingController, LandingReport
from repro.localization.comm import (
    CommLocalizationService,
    CommLocalizer,
    MultilaterationFix,
    RangeMeasurement,
    RfRangingModel,
)

__all__ = [
    "MonocularDepthEstimator",
    "DroneDetection",
    "DroneDetector",
    "CollaborativeLocalizer",
    "PositionEstimate",
    "Sighting",
    "ConstantVelocityKalman",
    "GuidedLandingController",
    "LandingReport",
    "CommLocalizationService",
    "CommLocalizer",
    "MultilaterationFix",
    "RangeMeasurement",
    "RfRangingModel",
]
