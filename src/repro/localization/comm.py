"""Communication-based localization: RF ranging multilateration.

The Fig. 1 network includes a "Communication-based Localization ConSert"
that "monitors the internal signal and connection states to other nearby
UAVs". This module implements the positioning technique behind it:
inter-UAV RF range measurements (time-of-flight style, with
distance-proportional noise) fused by nonlinear least squares
multilateration. It is the navigation source backing the "Collaborative
Navigation with accuracy <0.75 m" guarantee when vision is unavailable
(night operations, camera loss).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import least_squares


@dataclass(frozen=True)
class RangeMeasurement:
    """One RF range from an anchor UAV to the target."""

    anchor_id: str
    anchor_enu: tuple[float, float, float]
    range_m: float
    sigma_m: float
    stamp: float


@dataclass
class RfRangingModel:
    """Simulated inter-UAV RF ranging (UWB/TOF style).

    Noise grows with distance (multipath, clock dilution); ranges beyond
    ``max_range_m`` fail (link budget).
    """

    rng: np.random.Generator
    base_sigma_m: float = 0.3
    relative_sigma: float = 0.01
    max_range_m: float = 300.0

    def measure(
        self,
        anchor_id: str,
        anchor_enu: tuple[float, float, float],
        target_enu: tuple[float, float, float],
        now: float,
    ) -> RangeMeasurement | None:
        """One ranging exchange; None when the link is out of budget."""
        true_range = math.dist(anchor_enu, target_enu)
        if true_range > self.max_range_m or true_range < 1e-9:
            return None
        sigma = math.hypot(self.base_sigma_m, self.relative_sigma * true_range)
        measured = max(0.1, true_range + float(self.rng.normal(0.0, sigma)))
        return RangeMeasurement(
            anchor_id=anchor_id,
            anchor_enu=anchor_enu,
            range_m=measured,
            sigma_m=sigma,
            stamp=now,
        )


@dataclass(frozen=True)
class MultilaterationFix:
    """Output of one multilateration solve."""

    enu: tuple[float, float, float]
    residual_rms_m: float
    n_anchors: int
    converged: bool


@dataclass
class CommLocalizer:
    """Nonlinear least-squares multilateration over range measurements.

    Needs at least 3 anchors for a 2-D+altitude-prior solve or 4 for a
    full 3-D solve; with 3 anchors the altitude is softly constrained to
    the provided prior (UAVs know their barometric altitude well).
    """

    altitude_prior_sigma_m: float = 1.5
    min_anchors: int = 3

    def solve(
        self,
        measurements: list[RangeMeasurement],
        initial_guess: tuple[float, float, float],
        altitude_prior: float | None = None,
    ) -> MultilaterationFix | None:
        """Estimate the target position; None with too few anchors."""
        anchors = {m.anchor_id: m for m in measurements}
        measurements = list(anchors.values())  # one per anchor (latest wins)
        if len(measurements) < self.min_anchors:
            return None

        def residuals(x: np.ndarray) -> np.ndarray:
            out = [
                (math.dist(x, m.anchor_enu) - m.range_m) / m.sigma_m
                for m in measurements
            ]
            if altitude_prior is not None:
                out.append((x[2] - altitude_prior) / self.altitude_prior_sigma_m)
            return np.array(out)

        # Multi-start: the range-only problem has mirror local minima
        # (above/below the anchor plane); try several starts and keep the
        # best fit.
        centroid = np.mean([m.anchor_enu for m in measurements], axis=0)
        guess_z = altitude_prior if altitude_prior is not None else initial_guess[2]
        starts = [
            np.asarray(initial_guess, float),
            np.array([initial_guess[0], initial_guess[1], guess_z]),
            np.array([centroid[0], centroid[1], guess_z]),
            np.array([centroid[0], centroid[1], guess_z - 20.0]),
        ]
        result = None
        best_cost = math.inf
        for start in starts:
            try:
                candidate = least_squares(residuals, start)
            except (ValueError, np.linalg.LinAlgError):
                # Degenerate geometry (e.g. coincident anchors) can make a
                # start fail outright; the remaining starts may still fit.
                continue
            if candidate.cost < best_cost:
                best_cost = candidate.cost
                result = candidate
        if result is None:
            # Every start failed: report a non-converged fix at the guess
            # rather than raising mid-mission.
            return MultilaterationFix(
                enu=tuple(float(v) for v in initial_guess),
                residual_rms_m=math.inf,
                n_anchors=len(measurements),
                converged=False,
            )
        weighted = residuals(result.x)
        # Exclude the prior term from the reported measurement residual.
        n_meas = len(measurements)
        rms = float(
            np.sqrt(np.mean((weighted[:n_meas] * [m.sigma_m for m in measurements]) ** 2))
        )
        return MultilaterationFix(
            enu=tuple(float(v) for v in result.x),
            residual_rms_m=rms,
            n_anchors=n_meas,
            converged=bool(result.success),
        )


@dataclass
class CommLocalizationService:
    """Continuous comm-localization of one target from live anchors.

    Feed anchor positions each epoch; the service ranges to the target,
    keeps a sliding measurement window, and solves when enough anchors
    responded. ``link_ok`` reflects the connection-state monitoring the
    comm-localization ConSert consumes.
    """

    target_id: str
    ranging: RfRangingModel
    window_s: float = 1.5
    measurements: list[RangeMeasurement] = field(default_factory=list)
    last_fix: MultilaterationFix | None = None
    link_up: bool = True

    def update(
        self,
        now: float,
        anchors: dict[str, tuple[float, float, float]],
        target_enu: tuple[float, float, float],
        altitude_prior: float | None = None,
    ) -> MultilaterationFix | None:
        """Range to all anchors, then attempt a solve.

        While the transport reports the link down no new ranging
        exchanges happen (the radio is the ranging instrument); the solve
        then runs on whatever is left inside the sliding window.
        """
        if self.link_up:
            for anchor_id, anchor_enu in anchors.items():
                measurement = self.ranging.measure(
                    anchor_id, anchor_enu, target_enu, now
                )
                if measurement is not None:
                    self.measurements.append(measurement)
        cutoff = now - self.window_s
        self.measurements = [m for m in self.measurements if m.stamp >= cutoff]
        guess = self.last_fix.enu if self.last_fix is not None else target_enu
        solver = CommLocalizer()
        fix = solver.solve(self.measurements, guess, altitude_prior)
        if fix is not None:
            self.last_fix = fix
        return fix

    def set_link_state(self, up: bool) -> None:
        """Feed the transport-level link verdict (e.g. from a
        :class:`~repro.middleware.reliable.ReliableChannel` timeout or a
        :class:`~repro.core.adapters.PeerTelemetryMonitor`). While the
        link is down, ``link_ok`` is False no matter how many recent
        measurements are still inside the sliding window."""
        self.link_up = up

    @property
    def link_ok(self) -> bool:
        """Whether the ConSert guarantee is backed by live connectivity.

        Requires both enough distinct live anchors in the window *and* a
        transport layer that still reports the links up — measurement
        counts alone can lag a blackout by a full window.
        """
        if not self.link_up:
            return False
        return len({m.anchor_id for m in self.measurements}) >= 3
