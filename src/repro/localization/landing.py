"""Guided safe landing of a GPS-denied UAV via collaborative localization.

Implements the paper's Fig. 7 behaviour: "the spoofed UAV (shown in blue)
and the assisting UAV (shown in red) ... collaborate to coordinate the
safe landing, in a high precision location, of the UAV under attack ...
the spoofed UAV is operating without any GPS signal."

The controller feeds the fused CL position into the affected UAV's
external-navigation input and issues guided setpoints that steer it over
the landing point and descend it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.localization.collaborative import PositionEstimate
from repro.localization.fusion import ConstantVelocityKalman
from repro.uav.uav import FlightMode, Uav


@dataclass(frozen=True)
class LandingReport:
    """Outcome of a collaborative guided landing."""

    landed: bool
    final_error_m: float  # ground distance from the designated landing point
    duration_s: float
    mean_cl_sigma_m: float
    n_estimates: int


@dataclass
class GuidedLandingController:
    """Drives an affected UAV to a landing point using CL estimates."""

    uav: Uav
    landing_point: tuple[float, float]  # ENU east/north
    approach_altitude_m: float = 12.0
    descent_rate_mps: float = 1.5
    capture_radius_m: float = 1.5
    tracker: ConstantVelocityKalman = field(default_factory=ConstantVelocityKalman)
    started_at: float | None = None
    sigma_samples: list[float] = field(default_factory=list)
    _phase: str = "approach"

    def engage(self, now: float) -> None:
        """Switch the UAV to external navigation and take control."""
        self.started_at = now
        self.uav.use_external_nav = True
        self.uav.command_mode(FlightMode.GUIDED)

    def feed_estimate(self, estimate: PositionEstimate) -> None:
        """Supply one fused CL position estimate for the affected UAV."""
        self.tracker.update(estimate.enu, estimate.sigma_m, estimate.stamp)
        self.sigma_samples.append(estimate.sigma_m)
        self.uav.external_nav_position = self.tracker.position

    def step(self, now: float) -> None:
        """Issue the guided setpoint for the current landing phase."""
        if self.started_at is None:
            raise RuntimeError("engage() first")
        if self.uav.mode is FlightMode.LANDED:
            return
        if not self.tracker.initialized:
            # No estimate yet: hold position.
            self.uav.command_mode(FlightMode.HOLD)
            return
        self.uav.command_mode(FlightMode.GUIDED)
        believed = self.tracker.position
        east, north = self.landing_point
        ground_err = math.hypot(believed[0] - east, believed[1] - north)
        if self._phase == "approach":
            self.uav.command_guided_setpoint((east, north, self.approach_altitude_m))
            if ground_err <= self.capture_radius_m:
                self._phase = "descend"
        if self._phase == "descend":
            target_alt = max(0.0, believed[2] - self.descent_rate_mps)
            self.uav.command_guided_setpoint((east, north, target_alt))

    @property
    def complete(self) -> bool:
        """Whether the UAV has touched down."""
        return self.uav.mode is FlightMode.LANDED

    def report(self, now: float) -> LandingReport:
        """Final landing accuracy against ground truth."""
        true_pos = self.uav.dynamics.position
        error = math.hypot(
            true_pos[0] - self.landing_point[0], true_pos[1] - self.landing_point[1]
        )
        duration = now - (self.started_at if self.started_at is not None else now)
        mean_sigma = (
            sum(self.sigma_samples) / len(self.sigma_samples)
            if self.sigma_samples
            else float("nan")
        )
        return LandingReport(
            landed=self.complete,
            final_error_m=error,
            duration_s=duration,
            mean_cl_sigma_m=mean_sigma,
            n_estimates=len(self.sigma_samples),
        )
