"""Collaborative position estimation from multi-UAV sightings.

Each collaborator sighting (bearing, elevation, monocular range) converts
to a position hypothesis for the affected UAV by spherical-to-ENU
trigonometry; the geodetic form of the same computation uses
:func:`repro.geo.destination_point` — the haversine-family projection the
paper cites. Hypotheses from all collaborators fuse by inverse-variance
weighting, and uncertainty shrinks as more collaborators contribute (the
basis for the "Collaborative Navigation with accuracy <0.75 m" guarantee
in the Fig. 1 ConSert).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geo import EnuFrame, GeoPoint, destination_point
from repro.localization.detection import DroneDetection


@dataclass(frozen=True)
class Sighting:
    """A detection annotated with the observer's own position."""

    detection: DroneDetection
    observer_enu: tuple[float, float, float]


@dataclass(frozen=True)
class PositionEstimate:
    """Fused position estimate for the affected UAV."""

    enu: tuple[float, float, float]
    sigma_m: float
    n_sightings: int
    stamp: float

    @property
    def meets_collaborative_accuracy(self) -> bool:
        """Whether the ConSert's <0.75 m collaborative-accuracy demand holds."""
        return self.sigma_m < 0.75


def sighting_to_position(sighting: Sighting) -> tuple[tuple[float, float, float], float]:
    """Convert one sighting to an ENU position hypothesis and its sigma.

    The dominant error is the monocular range; angular errors contribute
    range * sin(sigma_angle), folded into the hypothesis sigma.
    """
    det = sighting.detection
    bearing = math.radians(det.bearing_deg)
    elevation = math.radians(det.elevation_deg)
    horizontal = det.range_m * math.cos(elevation)
    east = sighting.observer_enu[0] + horizontal * math.sin(bearing)
    north = sighting.observer_enu[1] + horizontal * math.cos(bearing)
    up = sighting.observer_enu[2] + det.range_m * math.sin(elevation)
    angular_sigma = det.range_m * math.sin(math.radians(1.5))
    sigma = math.hypot(det.range_sigma_m, angular_sigma)
    return (east, north, up), sigma


def sighting_to_geopoint(sighting: Sighting, frame: EnuFrame) -> GeoPoint:
    """Geodetic form of the hypothesis using the haversine projection."""
    det = sighting.detection
    observer_geo = frame.to_geo(*sighting.observer_enu)
    horizontal = det.range_m * math.cos(math.radians(det.elevation_deg))
    point = destination_point(observer_geo, det.bearing_deg, horizontal)
    up = sighting.observer_enu[2] + det.range_m * math.sin(math.radians(det.elevation_deg))
    return point.with_alt(frame.origin.alt + up)


@dataclass
class CollaborativeLocalizer:
    """Fuses sightings of one affected UAV into a position estimate.

    Sightings older than ``max_age_s`` are discarded each estimate —
    collaborators re-sight the target continuously, so staleness tracks
    the target's motion.
    """

    target_id: str
    max_age_s: float = 2.0
    sightings: list[Sighting] = field(default_factory=list)
    estimates: list[PositionEstimate] = field(default_factory=list)

    def add_sighting(self, sighting: Sighting) -> None:
        """Record a sighting of the target from any collaborator."""
        if sighting.detection.target_id != self.target_id:
            raise ValueError(
                f"sighting of {sighting.detection.target_id!r}, "
                f"localizer tracks {self.target_id!r}"
            )
        self.sightings.append(sighting)

    def estimate(self, now: float) -> PositionEstimate | None:
        """Inverse-variance fusion of all fresh sightings; None if empty."""
        fresh = [
            s for s in self.sightings if now - s.detection.stamp <= self.max_age_s
        ]
        self.sightings = fresh
        if not fresh:
            return None
        weights = []
        hypotheses = []
        for sighting in fresh:
            position, sigma = sighting_to_position(sighting)
            hypotheses.append(position)
            weights.append(1.0 / max(sigma, 1e-6) ** 2)
        total_w = sum(weights)
        fused = tuple(
            sum(w * h[i] for w, h in zip(weights, hypotheses)) / total_w
            for i in range(3)
        )
        fused_sigma = math.sqrt(1.0 / total_w)
        estimate = PositionEstimate(
            enu=fused, sigma_m=fused_sigma, n_sightings=len(fresh), stamp=now
        )
        self.estimates.append(estimate)
        return estimate

    @property
    def latest(self) -> PositionEstimate | None:
        """The most recent fused estimate."""
        return self.estimates[-1] if self.estimates else None
