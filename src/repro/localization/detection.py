"""Visual detection of nearby UAVs by collaborator aircraft.

Substitute for the tinyYOLOv4 drone detector: given the observer and
target poses, produce a detection with bearing/elevation measured from the
camera geometry (with angular noise) and a monocular range estimate, or
miss entirely with a range- and camera-health-dependent probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.localization.depth import MonocularDepthEstimator


@dataclass(frozen=True)
class DroneDetection:
    """One sighting of a target UAV from an observer UAV."""

    observer_id: str
    target_id: str
    stamp: float
    bearing_deg: float  # azimuth from north, observer -> target
    elevation_deg: float  # positive up
    range_m: float  # monocular estimate
    range_sigma_m: float
    confidence: float


@dataclass
class DroneDetector:
    """Range/health-dependent detector with angular measurement noise."""

    rng: np.random.Generator
    depth: MonocularDepthEstimator = None  # type: ignore[assignment]
    bearing_sigma_deg: float = 1.2
    elevation_sigma_deg: float = 1.0
    detect_range_m: float = 120.0
    base_detect_prob: float = 0.97

    def __post_init__(self) -> None:
        if self.depth is None:
            self.depth = MonocularDepthEstimator(
                rng=self.rng, max_range_m=self.detect_range_m
            )

    def detection_probability(self, true_range_m: float, camera_health: float = 1.0) -> float:
        """Probability of detecting a target at the given range."""
        if true_range_m > self.detect_range_m:
            return 0.0
        falloff = 1.0 - (true_range_m / self.detect_range_m) ** 2
        return max(0.0, self.base_detect_prob * falloff * camera_health)

    def observe(
        self,
        observer_id: str,
        target_id: str,
        observer_enu: tuple[float, float, float],
        target_enu: tuple[float, float, float],
        now: float,
        camera_health: float = 1.0,
    ) -> DroneDetection | None:
        """Attempt one sighting; None on a miss."""
        delta = tuple(t - o for t, o in zip(target_enu, observer_enu))
        true_range = math.sqrt(sum(d * d for d in delta))
        if true_range < 1e-6:
            return None
        p_detect = self.detection_probability(true_range, camera_health)
        if float(self.rng.random()) > p_detect:
            return None
        bearing = math.degrees(math.atan2(delta[0], delta[1])) % 360.0
        horizontal = math.hypot(delta[0], delta[1])
        elevation = math.degrees(math.atan2(delta[2], max(horizontal, 1e-9)))
        range_est, sigma = self.depth.estimate(true_range)
        return DroneDetection(
            observer_id=observer_id,
            target_id=target_id,
            stamp=now,
            bearing_deg=bearing + float(self.rng.normal(0.0, self.bearing_sigma_deg)),
            elevation_deg=elevation
            + float(self.rng.normal(0.0, self.elevation_sigma_deg)),
            range_m=range_est,
            range_sigma_m=sigma,
            confidence=p_detect,
        )
