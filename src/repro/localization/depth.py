"""Monocular depth (range) estimation for drone-to-drone sightings.

Substitute for the MiDaS-style monocular depth network on the Jetson: a
pinhole-geometry range estimator whose error is multiplicative in range —
the dominant error characteristic of real monocular depth (apparent-size
scaling), so the collaborative fusion downstream faces the same error
structure the paper's system does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MonocularDepthEstimator:
    """Range estimator with range-proportional noise and a floor.

    ``relative_sigma`` is the 1-sigma multiplicative error (e.g. 0.06 =
    6% of range); ``floor_sigma_m`` bounds the error at close range where
    pixel quantisation dominates. ``max_range_m`` is the working envelope
    of the detector — beyond it estimates are refused.
    """

    rng: np.random.Generator
    relative_sigma: float = 0.06
    floor_sigma_m: float = 0.3
    max_range_m: float = 120.0

    def estimate(self, true_range_m: float) -> tuple[float, float]:
        """Return ``(range_estimate_m, sigma_m)`` for one sighting.

        Raises ``ValueError`` outside the working envelope; the caller
        (the drone detector) filters by range first.
        """
        if true_range_m <= 0.0:
            raise ValueError("range must be positive")
        if true_range_m > self.max_range_m:
            raise ValueError(
                f"range {true_range_m:.1f} m beyond envelope {self.max_range_m} m"
            )
        sigma = max(self.floor_sigma_m, self.relative_sigma * true_range_m)
        estimate = true_range_m + float(self.rng.normal(0.0, sigma))
        return max(0.1, estimate), sigma
