"""Constant-velocity Kalman tracking of the affected UAV.

Sits between the instantaneous collaborative estimates and the landing
controller (the "Fusion" node of the paper's Fig. 3 ROS configuration):
smooths sighting noise and bridges short detection gaps with the velocity
prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ConstantVelocityKalman:
    """6-state (position, velocity) Kalman filter with position measurements."""

    process_noise: float = 0.8
    initial_velocity_var: float = 4.0
    state: np.ndarray | None = None  # [e, n, u, ve, vn, vu]
    covariance: np.ndarray | None = None
    last_time: float | None = None

    def initialize(self, position: tuple[float, float, float], sigma_m: float, now: float) -> None:
        """Start the track from a first position estimate."""
        self.state = np.array([*position, 0.0, 0.0, 0.0], dtype=float)
        self.covariance = np.diag(
            [sigma_m**2] * 3 + [self.initial_velocity_var] * 3
        )
        self.last_time = now

    @property
    def initialized(self) -> bool:
        """Whether the track has been started."""
        return self.state is not None

    def predict(self, now: float) -> np.ndarray:
        """Propagate to ``now``; returns the predicted full state."""
        if not self.initialized:
            raise RuntimeError("initialize() first")
        dt = now - self.last_time
        if dt < 0.0:
            raise ValueError("time went backwards")
        self.last_time = now
        f = np.eye(6)
        f[0, 3] = f[1, 4] = f[2, 5] = dt
        q = np.zeros((6, 6))
        q_pos = 0.25 * dt**4 * self.process_noise
        q_cross = 0.5 * dt**3 * self.process_noise
        q_vel = dt**2 * self.process_noise
        for i in range(3):
            q[i, i] = q_pos
            q[i, i + 3] = q[i + 3, i] = q_cross
            q[i + 3, i + 3] = q_vel
        self.state = f @ self.state
        self.covariance = f @ self.covariance @ f.T + q
        return self.state.copy()

    def update(
        self, position: tuple[float, float, float], sigma_m: float, now: float
    ) -> np.ndarray:
        """Predict to ``now`` then fuse a position measurement."""
        if not self.initialized:
            self.initialize(position, sigma_m, now)
            return self.state.copy()
        self.predict(now)
        h = np.zeros((3, 6))
        h[0, 0] = h[1, 1] = h[2, 2] = 1.0
        r = np.eye(3) * sigma_m**2
        innovation = np.asarray(position) - h @ self.state
        s = h @ self.covariance @ h.T + r
        k = self.covariance @ h.T @ np.linalg.inv(s)
        self.state = self.state + k @ innovation
        self.covariance = (np.eye(6) - k @ h) @ self.covariance
        return self.state.copy()

    @property
    def position(self) -> tuple[float, float, float]:
        """Current position estimate."""
        if not self.initialized:
            raise RuntimeError("initialize() first")
        return tuple(float(x) for x in self.state[:3])

    @property
    def position_sigma_m(self) -> float:
        """RMS position standard deviation from the covariance trace."""
        if not self.initialized:
            raise RuntimeError("initialize() first")
        return float(np.sqrt(np.trace(self.covariance[:3, :3]) / 3.0))
