"""Synthetic campaign experiment: exercises the harness end to end.

A self-contained experiment with no simulation dependencies, used by the
harness's own tests and benchmarks (and handy as a CLI smoke check). Each
sample draws from its assigned RNG stream — so serial/parallel
equivalence is meaningfully tested, not trivially true — and can
optionally sleep to emulate a wall-time-bound sample, which is what the
pool-overlap speedup benchmark measures.
"""

from __future__ import annotations

import time

import numpy as np

from repro.harness.campaign import CampaignExperiment, register_experiment
from repro.harness.timing import PhaseTimer


def synthetic_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """Draw ``n`` values from the sample's stream; optionally sleep."""
    sleep_s = float(config.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        with timer.phase("sleep"):
            time.sleep(sleep_s)
    with timer.phase("draw"):
        rng = np.random.default_rng(seed)
        values = rng.normal(loc=float(config.get("loc", 0.0)), size=int(config["n"]))
    return {
        "mean": float(np.mean(values)),
        "std": float(np.std(values)),
        "first": float(values[0]),
    }


def synthetic_grid(preset: str) -> list[dict]:
    """``smoke``: 8 quick samples; ``default``: 64; ``sleepy``: 64 × 50 ms."""
    if preset == "smoke":
        return [{"n": 256, "loc": float(i)} for i in range(8)]
    if preset == "default":
        return [{"n": 4096, "loc": float(i % 7)} for i in range(64)]
    if preset == "sleepy":
        return [{"n": 64, "loc": 0.0, "sleep_s": 0.05} for _ in range(64)]
    raise ValueError(f"unknown synthetic grid preset {preset!r}")


SYNTHETIC = register_experiment(
    CampaignExperiment(
        name="synthetic",
        sample_fn=synthetic_sample,
        grids=synthetic_grid,
        describe="harness self-test: seeded draws, optional sleep",
        presets=("smoke", "default", "sleepy"),
    )
)
