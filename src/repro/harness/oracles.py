"""Property oracles: invariants every simulation run must satisfy.

The fleet-engine property suite (``tests/test_fleet_properties.py``) and
the differential suite (``tests/test_fleet_equivalence.py``) encode what
a correct simulation looks like: battery charge never rises, no UAV
moves faster than its speed limit allows, a landed UAV stays put, and
the scalar and vectorized engines agree to the bit. This module extracts
those predicates into one importable implementation shared by the tests
and the fuzzing campaign (:mod:`repro.harness.fuzz`), wraps them as
stateful :class:`Oracle` checkers, and provides
:func:`run_scenario_oracles` — the dual-engine harness that runs any
scenario config under the full oracle suite:

``soc_monotonic``
    State of charge is non-increasing for every UAV at every step
    (there is no charger in the simulation; faults only drop it).
``teleport_bound``
    Per-step displacement never exceeds ``v_max * dt`` (plus float
    slack) — the "no teleportation" kinematic bound.
``landed_drift``
    A UAV that touched down stays exactly where it landed.
``engine_lockstep``
    The scalar reference and the vectorized engine agree exactly on
    position, velocity, SoC, temperature, and flight mode at every step
    (the PR-4 bit-identical contract, enforced on arbitrary inputs).
``guarantee_sanity``
    Each UAV's ConSert/EDDI guarantee trace is well-formed: timestamps
    never decrease, every entry is a known guarantee, the response log
    records exactly the transitions (no phantom or missed responses),
    and both engines produce identical guarantee traces.
``assurance_lockstep``
    The scalar assurance plane (per-UAV EDDI stacks + MissionDecider)
    and the batched plane (:mod:`repro.core.batch`) agree exactly —
    every cycle's guarantees, ConSert offers, runtime evidence, and
    mission verdict, plus the full traces at the end of the run (the
    assurance-plane analogue of ``engine_lockstep``).
``planned_path_clearance``
    In a scenario with an ``"obstacles"`` block, every waypoint plan a
    UAV flies (initial missions and every in-flight ``replace``) is
    collision-free leg by leg against the *raw* voxel grid — the
    planner's inflation margin is its own safety buffer, not an excuse.
``no_unhandled_exception``
    The run completes without the simulator raising.
``swarm_tasking``
    The leader–follower task ledger (:mod:`repro.swarm`) is coherent:
    no task is ever owned by two followers at once (assignment intervals
    per task and per follower never overlap), every serviced task has
    exactly one confirmed assignment with non-negative,
    detection-ordered timestamps, every detected PoI ends serviced or
    explicitly orphaned, and the leaders' confirmation counters agree
    with the ledger. Checked by :func:`run_swarm_oracles`, the swarm
    analogue of :func:`run_scenario_oracles` used by the fuzz campaign's
    swarm scenarios.

The runner also honours a scenario-level ``"chaos"`` block — a scripted
simulator *bug* (teleport, SoC jump, or raised exception) used to prove
the oracles catch violations and to exercise the failure shrinker; see
:mod:`repro.harness.fuzz`.
"""

from __future__ import annotations

import math
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.batch import build_assurance
from repro.core.uav_network import UavGuarantee
from repro.safedrones.monitor import ReliabilityLevel
from repro.scenario import Scenario, load_scenario
from repro.uav.uav import FlightMode
from repro.uav.world import World

#: Slack for the SoC monotonicity check (one ULP of accumulated error).
SOC_RISE_TOL = 1e-15
#: Relative/absolute slack on the kinematic displacement bound.
TELEPORT_REL_TOL = 1e-12
TELEPORT_ABS_TOL = 1e-12
#: Horizon used when neither the caller nor the config pins one.
DEFAULT_HORIZON_S = 60.0
#: Default simulated seconds between EDDI assurance cycles.
DEFAULT_EDDI_PERIOD_S = 2.0


# -------------------------------------------------------------- predicates
def soc_step_ok(prev_soc: float, soc: float, tol: float = SOC_RISE_TOL) -> bool:
    """Whether one SoC step respects monotonic non-increase."""
    return soc <= prev_soc + tol


def teleport_bound_m(v_max: float, dt: float, drift_mps: float = 0.0) -> float:
    """The per-step displacement bound (with float slack) for one UAV.

    ``drift_mps`` is the magnitude of environment-imposed drift (the
    unrejected wind the world adds on top of commanded velocity, see
    ``Environment.apply_wind_drift``); zero in calm air.
    """
    return (v_max + drift_mps) * dt * (1.0 + TELEPORT_REL_TOL) + TELEPORT_ABS_TOL


def teleport_step_ok(
    prev_pos: tuple[float, float, float],
    pos: tuple[float, float, float],
    v_max: float,
    dt: float,
    drift_mps: float = 0.0,
) -> bool:
    """Whether one position step respects the kinematic speed bound."""
    return math.dist(prev_pos, pos) <= teleport_bound_m(v_max, dt, drift_mps)


def landed_step_ok(
    landed_pos: tuple[float, float, float], pos: tuple[float, float, float]
) -> bool:
    """Whether a landed UAV is still exactly at its touchdown point."""
    return pos == landed_pos


#: UavGuarantee declaration order is severity order: 0 = best offer
#: (continue with extra tasks), 4 = worst (emergency land).
GUARANTEE_RANK = {guarantee: i for i, guarantee in enumerate(UavGuarantee)}
#: Same for the SafeDrones reliability vocabulary: HIGH=0, MEDIUM=1, LOW=2.
RELIABILITY_RANK = {level: i for i, level in enumerate(ReliabilityLevel)}
#: Per-measure upper bound of the SafeML distances over ECDFs in [0, 1].
#: KS is a sup of |F_a - F_b| (≤ 1); Kuiper sums two sups (≤ 2); the
#: integrated/weighted measures are unbounded in data units but must stay
#: finite and non-negative.
DISTANCE_UPPER_BOUND = {"kolmogorov_smirnov": 1.0, "kuiper": 2.0}


def guarantee_rank(guarantee: UavGuarantee) -> int:
    """Severity rank of a top-level guarantee (0 = best, 4 = worst)."""
    return GUARANTEE_RANK[guarantee]


def demotion_monotone_ok(prev: UavGuarantee, cur: UavGuarantee) -> bool:
    """Whether a guarantee change respects decay monotonicity.

    Under *pure evidence decay* (bits only flip good -> bad, nothing
    recovers) the offered guarantee can only hold or worsen — the ConSert
    trees are monotone boolean programs of positive evidence.
    """
    return GUARANTEE_RANK[cur] >= GUARANTEE_RANK[prev]


def demotion_step_ok(prev: ReliabilityLevel, cur: ReliabilityLevel) -> bool:
    """Whether a reliability demotion moved at most one level.

    The level is a threshold function of a continuously-evolving failure
    probability (HIGH below 0.2, MEDIUM below 0.6), so as long as the
    per-cycle PoF increment is small the monitor must pass through
    MEDIUM on the way from HIGH to LOW — skipping a level means the PoF
    jumped the whole [0.2, 0.6) band in one cycle.
    """
    return RELIABILITY_RANK[cur] - RELIABILITY_RANK[prev] <= 1


def distance_in_bounds(measure: str, value: float) -> bool:
    """Whether one SafeML distance value is in its legal range."""
    return (
        math.isfinite(value)
        and value >= 0.0
        and value <= DISTANCE_UPPER_BOUND.get(measure, math.inf)
    )


# ---------------------------------------------------------------- plumbing
@dataclass(frozen=True)
class Violation:
    """One oracle violation, JSON-able for manifests and repro files."""

    oracle: str
    time: float | None
    uav: str | None
    message: str

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "time": self.time,
            "uav": self.uav,
            "message": self.message,
        }


class Oracle:
    """Base class: accumulates violations, capped to bound report size."""

    name = "oracle"

    def __init__(self, max_violations: int = 10) -> None:
        self.violations: list[Violation] = []
        self.suppressed = 0
        self._cap = max_violations

    def record(
        self, time: float | None, uav: str | None, message: str
    ) -> None:
        if len(self.violations) >= self._cap:
            self.suppressed += 1
            return
        self.violations.append(Violation(self.name, time, uav, message))

    def observe(self, world: World, now: float) -> None:
        """Check one completed step (override)."""

    def finish(self) -> None:
        """Run end-of-scenario checks (override)."""


class SocMonotonicOracle(Oracle):
    """Battery state of charge never rises."""

    name = "soc_monotonic"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._prev: dict[str, float] = {}

    def observe(self, world: World, now: float) -> None:
        for uav_id, uav in world.uavs.items():
            soc = uav.battery.soc
            prev = self._prev.get(uav_id)
            if prev is not None and not soc_step_ok(prev, soc):
                self.record(
                    now, uav_id, f"SoC rose {prev!r} -> {soc!r} in one step"
                )
            self._prev[uav_id] = soc


class TeleportBoundOracle(Oracle):
    """Per-step displacement bounded by ``v_max * dt``."""

    name = "teleport_bound"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._prev: dict[str, tuple[float, float, float]] = {}

    def observe(self, world: World, now: float) -> None:
        for uav_id, uav in world.uavs.items():
            pos = uav.dynamics.position
            prev = self._prev.get(uav_id)
            # drift_velocity holds exactly the wind drift the world added
            # to this UAV's position during the step just completed.
            drift = math.hypot(*uav.dynamics.drift_velocity)
            if prev is not None and not teleport_step_ok(
                prev, pos, uav.dynamics.max_speed_mps, world.dt, drift
            ):
                moved = math.dist(prev, pos)
                bound = teleport_bound_m(
                    uav.dynamics.max_speed_mps, world.dt, drift
                )
                self.record(
                    now, uav_id,
                    f"teleported {moved:.6f} m in one step "
                    f"(bound {bound:.6f} m incl. {drift:.3f} m/s wind drift)",
                )
            self._prev[uav_id] = pos


class LandedDriftOracle(Oracle):
    """A landed UAV stays exactly at its touchdown point."""

    name = "landed_drift"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._landed_at: dict[str, tuple[float, float, float]] = {}

    def observe(self, world: World, now: float) -> None:
        for uav_id, uav in world.uavs.items():
            pos = uav.dynamics.position
            landed = self._landed_at.get(uav_id)
            if landed is not None:
                if not landed_step_ok(landed, pos):
                    self.record(
                        now, uav_id,
                        f"drifted after landing: {landed!r} -> {pos!r}",
                    )
                    self._landed_at[uav_id] = pos  # report drift once per hop
            elif uav.mode is FlightMode.LANDED:
                self._landed_at[uav_id] = pos


class PlannedPathClearanceOracle(Oracle):
    """Every flown waypoint plan clears the scenario's obstacle field.

    Re-checks a UAV whenever its plan's waypoint *list object* changes
    (``WaypointPlan.replace`` always installs a fresh list), so both the
    initial mission and every in-flight re-plan are verified. Legs are
    checked against the raw grid — the planner searched the inflated one,
    so any contact here means the inflation margin was fully consumed.
    """

    name = "planned_path_clearance"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        # uav_id -> the waypoint list object already verified. Held by
        # reference (not id()) so a freed list's recycled id can never
        # mask a plan change.
        self._checked: dict[str, list] = {}

    def observe(self, world: World, now: float) -> None:
        field = getattr(world, "obstacles", None)
        if field is None:
            return
        for uav_id, uav in world.uavs.items():
            waypoints = uav.plan.waypoints
            if self._checked.get(uav_id) is waypoints:
                continue
            self._checked[uav_id] = waypoints
            if not waypoints:
                continue
            legs = [tuple(uav.dynamics.position)] + [
                tuple(wp) for wp in waypoints
            ]
            for a, b in zip(legs, legs[1:]):
                if not field.grid.segment_free(a, b):
                    self.record(
                        now, uav_id,
                        f"planned leg {tuple(round(v, 1) for v in a)} -> "
                        f"{tuple(round(v, 1) for v in b)} crosses an obstacle",
                    )


class EngineLockstepOracle(Oracle):
    """Scalar and vectorized engines agree exactly, state for state."""

    name = "engine_lockstep"

    def compare(self, scalar: World, vector: World, now: float) -> None:
        if set(scalar.uavs) != set(vector.uavs):
            self.record(
                now, None,
                f"fleet membership differs: {sorted(scalar.uavs)} vs "
                f"{sorted(vector.uavs)}",
            )
            return
        for uav_id, uav in scalar.uavs.items():
            peer = vector.uavs[uav_id]
            for label, a, b in (
                ("position", uav.dynamics.position, peer.dynamics.position),
                ("velocity", uav.dynamics.velocity, peer.dynamics.velocity),
                ("soc", uav.battery.soc, peer.battery.soc),
                ("temp_c", uav.battery.temp_c, peer.battery.temp_c),
                ("mode", uav.mode, peer.mode),
            ):
                if a != b:
                    self.record(
                        now, uav_id,
                        f"{label} diverged: scalar={a!r} vectorized={b!r}",
                    )


class GuaranteeSanityOracle(Oracle):
    """ConSert guarantee traces are well-formed and engine-independent."""

    name = "guarantee_sanity"

    def check(self, scalar_plane, vector_plane) -> None:
        for uav_id in scalar_plane.uav_ids:
            trace = scalar_plane.guarantee_trace(uav_id)
            last_t = None
            for t, guarantee in trace:
                if last_t is not None and t < last_t:
                    self.record(
                        t, uav_id,
                        f"guarantee trace time went backwards "
                        f"({last_t} -> {t})",
                    )
                last_t = t
                if not isinstance(guarantee, UavGuarantee):
                    self.record(
                        t, uav_id, f"unknown guarantee {guarantee!r}"
                    )
            transitions = sum(
                1 for prev, cur in zip(trace, trace[1:]) if prev[1] is not cur[1]
            ) + (1 if trace else 0)
            response_log = scalar_plane.response_log(uav_id)
            if len(response_log) != transitions:
                self.record(
                    None, uav_id,
                    f"response log has {len(response_log)} entries for "
                    f"{transitions} guarantee transitions",
                )
            previous = None
            for response in response_log:
                if response.previous is not previous:
                    self.record(
                        response.stamp, uav_id,
                        "response chain broken: expected previous="
                        f"{previous!r}, got {response.previous!r}",
                    )
                if response.guarantee is response.previous:
                    self.record(
                        response.stamp, uav_id,
                        f"self-transition response {response.guarantee!r}",
                    )
                previous = response.guarantee
            mine = [(t, g.value) for t, g in trace]
            theirs = [
                (t, g.value) for t, g in vector_plane.guarantee_trace(uav_id)
            ]
            if mine != theirs:
                self.record(
                    None, uav_id,
                    "guarantee traces diverge between engines "
                    f"({len(mine)} vs {len(theirs)} entries)",
                )


class AssuranceLockstepOracle(Oracle):
    """Scalar and batched assurance planes agree exactly, cycle for cycle."""

    name = "assurance_lockstep"

    def compare(self, scalar_plane, batched_plane, now: float) -> None:
        """Check one completed assurance cycle on both planes."""
        if scalar_plane.uav_ids != batched_plane.uav_ids:
            self.record(
                now, None,
                f"plane membership differs: {scalar_plane.uav_ids} vs "
                f"{batched_plane.uav_ids}",
            )
            return
        for uav_id in scalar_plane.uav_ids:
            a = scalar_plane.current_guarantee(uav_id)
            b = batched_plane.current_guarantee(uav_id)
            if a is not b:
                self.record(
                    now, uav_id,
                    f"guarantee diverged: scalar={a!r} batched={b!r}",
                )
            offers_a = scalar_plane.consert_offers(uav_id)
            offers_b = batched_plane.consert_offers(uav_id)
            if offers_a != offers_b:
                self.record(
                    now, uav_id,
                    f"ConSert offers diverged: {offers_a!r} vs {offers_b!r}",
                )
            evidence_a = scalar_plane.evidence(uav_id)
            evidence_b = batched_plane.evidence(uav_id)
            if evidence_a != evidence_b:
                self.record(
                    now, uav_id,
                    f"runtime evidence diverged: {evidence_a!r} vs "
                    f"{evidence_b!r}",
                )
        da = scalar_plane.decide()
        db = batched_plane.decide()
        if (
            da.verdict is not db.verdict
            or da.uav_guarantees != db.uav_guarantees
            or da.capable_uavs != db.capable_uavs
            or da.takeover_uavs != db.takeover_uavs
            or da.dropped_uavs != db.dropped_uavs
        ):
            self.record(
                now, None,
                f"mission decision diverged: scalar={da!r} batched={db!r}",
            )

    def finish_planes(self, scalar_plane, batched_plane) -> None:
        """End-of-run check: full traces and response logs must match."""
        for uav_id in scalar_plane.uav_ids:
            if scalar_plane.guarantee_trace(uav_id) != (
                batched_plane.guarantee_trace(uav_id)
            ):
                self.record(
                    None, uav_id, "guarantee traces diverged over the run"
                )
            log_a = [
                (r.stamp, r.guarantee, r.previous)
                for r in scalar_plane.response_log(uav_id)
            ]
            log_b = [
                (r.stamp, r.guarantee, r.previous)
                for r in batched_plane.response_log(uav_id)
            ]
            if log_a != log_b:
                self.record(
                    None, uav_id, "EDDI response logs diverged over the run"
                )


# ----------------------------------------------------------------- reports
@dataclass
class OracleReport:
    """Verdict of one oracle-suite run, JSON-able for manifests."""

    checked: list[str]
    violations: list[Violation]
    suppressed: int
    steps: int
    horizon_s: float

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def violated_oracles(self) -> list[str]:
        """Names of the oracles that fired, first-violation order."""
        seen: list[str] = []
        for violation in self.violations:
            if violation.oracle not in seen:
                seen.append(violation.oracle)
        return seen

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "checked": list(self.checked),
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": self.suppressed,
            "steps": self.steps,
            "horizon_s": self.horizon_s,
        }


# ------------------------------------------------------------------- chaos
class _ChaosScript:
    """Scripted simulator bug from a scenario's ``"chaos"`` block.

    Applied identically to both engines (so ``engine_lockstep`` stays
    meaningful): ``teleport`` displaces the target by ``magnitude``
    metres in one step, ``soc_jump`` raises its SoC by ``magnitude``,
    ``exception`` raises from inside the step loop. ``armed_file``, when
    set, arms the bug only while that file exists — the "broken engine,
    then someone fixes it" switch, kept on disk so the scenario JSON
    (and with it every cache key and fingerprint) is identical before
    and after the fix.
    """

    def __init__(self, spec: dict) -> None:
        self.mode = spec.get("mode")
        if self.mode not in ("teleport", "soc_jump", "exception"):
            raise ValueError(f"chaos.mode: unknown mode {self.mode!r}")
        self.uav = spec.get("uav", "uav1")
        self.at = float(spec.get("at", 0.0))
        self.magnitude = float(
            spec.get("magnitude", 300.0 if self.mode == "teleport" else 0.25)
        )
        self.armed_file = spec.get("armed_file")
        self.fired = False

    def armed(self) -> bool:
        return self.armed_file is None or Path(self.armed_file).exists()

    def maybe_fire(self, worlds: tuple[World, ...], now: float) -> None:
        if self.fired or now < self.at or not self.armed():
            return
        self.fired = True
        if self.mode == "exception":
            raise RuntimeError(
                f"chaos: injected exception at t={now} (uav {self.uav})"
            )
        for world in worlds:
            uav = world.uavs.get(self.uav)
            if uav is None:
                continue
            if self.mode == "teleport":
                e, n, u = uav.dynamics.position
                uav.dynamics.position = (e + self.magnitude, n, u)
            elif self.mode == "soc_jump":
                uav.battery.soc = min(1.0, uav.battery.soc + self.magnitude)


# ------------------------------------------------------------------ runner
def scenario_horizon_s(config: dict, horizon_s: float | None = None) -> float:
    """The simulated horizon for a scenario: argument > config > default."""
    if horizon_s is not None:
        return float(horizon_s)
    return float(config.get("horizon_s", DEFAULT_HORIZON_S))


def run_scenario_oracles(
    config: dict,
    horizon_s: float | None = None,
    eddi_period_s: float = DEFAULT_EDDI_PERIOD_S,
    max_violations: int = 10,
) -> OracleReport:
    """Run ``config`` under the full oracle suite; return the verdict.

    The scenario is loaded twice — scalar reference and vectorized
    engine — and stepped in lockstep to ``horizon_s`` (argument, else
    the config's ``"horizon_s"``, else :data:`DEFAULT_HORIZON_S`).
    The scalar world carries the reference assurance plane (per-UAV
    Fig. 1 EDDI stacks) and the vectorized world carries the batched
    plane (:mod:`repro.core.batch`); both cycle every ``eddi_period_s``
    simulated seconds, feeding the ``guarantee_sanity`` and
    ``assurance_lockstep`` oracles. Any exception the simulator raises
    is the ``no_unhandled_exception`` verdict, not a crash of the
    harness. Fully deterministic: same config, same report.
    """
    scalar: Scenario = load_scenario(config, engine="scalar")
    vector: Scenario = load_scenario(config, engine="vectorized")
    horizon = scenario_horizon_s(config, horizon_s)
    dt = scalar.world.dt
    steps = max(1, int(round(horizon / dt)))
    eddi_every = max(1, int(round(eddi_period_s / dt)))

    scalar_plane = build_assurance(scalar.world)
    vector_plane = build_assurance(vector.world)

    state_oracles: list[Oracle] = [
        SocMonotonicOracle(max_violations=max_violations),
        TeleportBoundOracle(max_violations=max_violations),
        LandedDriftOracle(max_violations=max_violations),
        PlannedPathClearanceOracle(max_violations=max_violations),
    ]
    lockstep = EngineLockstepOracle(max_violations=max_violations)
    guarantee = GuaranteeSanityOracle(max_violations=max_violations)
    assurance = AssuranceLockstepOracle(max_violations=max_violations)
    exception = Oracle(max_violations=max_violations)
    exception.name = "no_unhandled_exception"

    chaos = (
        _ChaosScript(config["chaos"])
        if isinstance(config.get("chaos"), dict)
        else None
    )

    completed = 0
    try:
        # Prime the per-UAV baselines at t=0 so the first step is checked.
        for oracle in state_oracles:
            oracle.observe(vector.world, 0.0)
        for _ in range(steps):
            now = scalar.step()
            vector.step()
            if chaos is not None:
                chaos.maybe_fire((scalar.world, vector.world), now)
            for oracle in state_oracles:
                oracle.observe(vector.world, now)
            lockstep.compare(scalar.world, vector.world, now)
            completed += 1
            if completed % eddi_every == 0:
                scalar_plane.step(now)
                vector_plane.step(now)
                assurance.compare(scalar_plane, vector_plane, now)
    except Exception as exc:
        frame = traceback.extract_tb(exc.__traceback__)[-1]
        exception.record(
            scalar.world.time, None,
            f"{type(exc).__name__}: {exc} "
            f"(at {Path(frame.filename).name}:{frame.lineno})",
        )
    guarantee.check(scalar_plane, vector_plane)
    assurance.finish_planes(scalar_plane, vector_plane)

    all_oracles = [*state_oracles, lockstep, guarantee, assurance, exception]
    violations: list[Violation] = []
    for oracle in all_oracles:
        violations.extend(oracle.violations)
    return OracleReport(
        checked=[oracle.name for oracle in all_oracles],
        violations=violations,
        suppressed=sum(oracle.suppressed for oracle in all_oracles),
        steps=completed,
        horizon_s=horizon,
    )


# ---------------------------------------------------------- swarm tasking
#: Assignment outcomes the swarm protocol is allowed to book.
SWARM_OUTCOMES = frozenset(
    {"confirmed", "timeout", "follower_lost", "rehome", "horizon"}
)


def intervals_overlap(
    a: tuple[float, float | None], b: tuple[float, float | None]
) -> bool:
    """Whether two half-open ownership intervals ``[start, end)`` overlap.

    ``None`` means still open. Touching at the boundary is legal: a task
    released and re-assigned within one protocol tick closes the old
    interval at exactly the new one's start.
    """
    a_start, a_end = a
    b_start, b_end = b
    if b_start < a_start:
        a_start, a_end, b_start, b_end = b_start, b_end, a_start, a_end
    return a_end is None or b_start < a_end


class SwarmTaskingOracle(Oracle):
    """Task-ledger coherence for the leader–follower protocol."""

    name = "swarm_tasking"

    def check_ledger(self, ledger, counters: dict | None = None) -> None:
        """Check a finished (finalized) :class:`~repro.swarm.protocol.SwarmLedger`."""
        from repro.swarm.protocol import TaskState

        per_follower: dict[str, list[tuple[str, float, float | None]]] = {}
        confirms_booked = 0
        for poi_id in sorted(ledger.tasks):
            task = ledger.tasks[poi_id]
            spans = [(a.t_assign, a.t_closed) for a in task.assignments]
            for a in task.assignments:
                if a.outcome is not None and a.outcome not in SWARM_OUTCOMES:
                    self.record(
                        a.t_assign, a.follower,
                        f"{poi_id}: unknown assignment outcome {a.outcome!r}",
                    )
                per_follower.setdefault(a.follower, []).append(
                    (poi_id, a.t_assign, a.t_closed)
                )
            for prev, cur in zip(spans, spans[1:]):
                if intervals_overlap(prev, cur):
                    self.record(
                        cur[0], task.owner,
                        f"{poi_id}: overlapping assignments {prev} / {cur} "
                        "— owned by two followers at once",
                    )
            if any(
                a.t_assign < task.t_detected for a in task.assignments
            ):
                self.record(
                    task.t_detected, None,
                    f"{poi_id}: assigned before it was detected",
                )
            confirmed = [a for a in task.assignments if a.outcome == "confirmed"]
            confirms_booked += len(confirmed)
            if task.state == TaskState.SERVICED:
                if len(confirmed) != 1:
                    self.record(
                        task.t_serviced, None,
                        f"{poi_id}: serviced with {len(confirmed)} confirmed "
                        "assignments (want exactly 1)",
                    )
                if task.t_serviced is None:
                    self.record(
                        None, None, f"{poi_id}: serviced without t_serviced"
                    )
                elif task.t_serviced < task.t_detected:
                    self.record(
                        task.t_serviced, None,
                        f"{poi_id}: negative service latency "
                        f"({task.t_serviced} < {task.t_detected})",
                    )
                elif confirmed and task.t_serviced < confirmed[0].t_assign:
                    self.record(
                        task.t_serviced, confirmed[0].follower,
                        f"{poi_id}: serviced at {task.t_serviced} before its "
                        f"confirmed assignment at {confirmed[0].t_assign}",
                    )
            elif task.state == TaskState.ORPHANED:
                if confirmed:
                    self.record(
                        None, None,
                        f"{poi_id}: orphaned despite a confirmed assignment",
                    )
                if not task.orphan_reason:
                    self.record(
                        None, None, f"{poi_id}: orphaned without a reason"
                    )
            else:
                self.record(
                    None, None,
                    f"{poi_id}: detected PoI left {task.state!r} — neither "
                    "serviced nor explicitly orphaned",
                )
        for fid in sorted(per_follower):
            spans = sorted(per_follower[fid], key=lambda s: (s[1], s[0]))
            for prev, cur in zip(spans, spans[1:]):
                if intervals_overlap(prev[1:], cur[1:]):
                    self.record(
                        cur[1], fid,
                        f"follower owns {prev[0]} and {cur[0]} at once "
                        f"({prev[1:]} / {cur[1:]})",
                    )
        if counters is not None and counters.get("confirms") != confirms_booked:
            self.record(
                None, None,
                f"leaders counted {counters.get('confirms')} confirms but the "
                f"ledger books {confirms_booked}",
            )


def run_swarm_oracles(
    config: dict,
    seed: int = 0,
    max_violations: int = 10,
) -> OracleReport:
    """Run a swarm scenario config under the tasking oracle.

    The swarm analogue of :func:`run_scenario_oracles`: any exception
    from the simulation lands in ``no_unhandled_exception`` instead of
    crashing the harness, and the report is fully deterministic for a
    given (config, seed).
    """
    from repro.swarm.sim import run_swarm

    tasking = SwarmTaskingOracle(max_violations=max_violations)
    exception = Oracle(max_violations=max_violations)
    exception.name = "no_unhandled_exception"

    steps = 0
    horizon = float(config.get("horizon_s", DEFAULT_HORIZON_S))
    try:
        run = run_swarm(dict(config), seed=seed)
        horizon = run.metrics["horizon_s"]
        steps = int(round(horizon / float(run.config["dt"])))
        tasking.check_ledger(run.ledger, counters=run.metrics["leader"])
    except Exception as exc:
        frame = traceback.extract_tb(exc.__traceback__)[-1]
        exception.record(
            None, None,
            f"{type(exc).__name__}: {exc} "
            f"(at {Path(frame.filename).name}:{frame.lineno})",
        )

    violations = [*tasking.violations, *exception.violations]
    return OracleReport(
        checked=[tasking.name, exception.name],
        violations=violations,
        suppressed=tasking.suppressed + exception.suppressed,
        steps=steps,
        horizon_s=horizon,
    )
