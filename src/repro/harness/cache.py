"""On-disk result cache for campaign samples.

A sample's cache key is a stable hash of (experiment name, canonical
config JSON, sample seed, code fingerprint). The code fingerprint covers
the source file that defines the sample function plus the experiment's
declared version, so editing the experiment (or bumping its version to
signal a semantic change elsewhere) invalidates exactly that
experiment's entries; re-running an unchanged campaign skips every
completed point.

Layout::

    <cache_dir>/<experiment>/<key>.json   # one completed sample

Each file holds the full sample record (config, seed, result, status,
timings), so a cache hit restores the manifest entry verbatim except for
the ``cached`` flag. Files that fail to parse or that miss a required
record field (foreign files, partial writes, records from an older
schema) are evicted and treated as misses — with an obs counter/event so
silent re-runs are visible — rather than crashing the campaign.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs import OBS, event

# Bump to invalidate every experiment's cache at once (harness semantics
# change, e.g. a different seed-derivation scheme).
HARNESS_CACHE_VERSION = "1"

#: Fields every usable cached sample record must carry. Records written
#: before a field became required (older schema) are treated as misses.
RECORD_REQUIRED_FIELDS = (
    "index",
    "seed",
    "config",
    "result",
    "status",
    "attempts",
    "wall_time_s",
    "worker",
    "cached",
    "timings",
)


def is_complete_record(record: Any) -> bool:
    """Whether ``record`` carries every required sample-record field."""
    return isinstance(record, dict) and all(
        name in record for name in RECORD_REQUIRED_FIELDS
    )


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """Stable short hex digest of any JSON-serializable object."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()[:24]


def code_fingerprint(sample_fn: Any, version: str = "1") -> str:
    """Hash of the sample function's defining source file + version.

    Falls back to the function's qualified name when the source is
    unavailable (frozen/interactive definitions) — the cache then only
    invalidates via explicit version bumps.
    """
    hasher = hashlib.sha256()
    hasher.update(HARNESS_CACHE_VERSION.encode())
    hasher.update(version.encode())
    try:
        source_file = inspect.getsourcefile(sample_fn)
        with open(source_file, "rb") as handle:  # type: ignore[arg-type]
            hasher.update(handle.read())
    except (OSError, TypeError):
        hasher.update(f"{sample_fn.__module__}.{sample_fn.__qualname__}".encode())
    return hasher.hexdigest()[:24]


def sample_key(experiment: str, config: dict, seed: int, code: str) -> str:
    """The cache key of one (experiment, config, seed, code) point."""
    return stable_hash(
        {"experiment": experiment, "config": config, "seed": seed, "code": code}
    )


# ------------------------------------------------------- tenant sharding
#: Tenant ids double as cache shard directory names, so they are locked
#: to a filesystem-safe alphabet; the leading character must be
#: alphanumeric, which (with the path-separator exclusion) rules out
#: ``.``/``..`` traversal outright.
TENANT_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Shard used when a caller never names a tenant (CLI runs, tests).
DEFAULT_TENANT = "public"


def validate_tenant_id(tenant: Any) -> str | None:
    """Why ``tenant`` cannot name a cache shard, or ``None`` if it can."""
    if not isinstance(tenant, str):
        return f"expected a string, got {type(tenant).__name__}"
    if not TENANT_ID_PATTERN.match(tenant):
        return (
            "must be 1-64 characters of [A-Za-z0-9._-] starting with a "
            f"letter or digit, got {tenant!r}"
        )
    return None


def tenant_cache_dir(cache_root: str | Path, tenant: str = DEFAULT_TENANT) -> Path:
    """The per-tenant result-cache shard under ``cache_root``.

    Each tenant gets a private subtree, so one tenant's cache hits can
    never satisfy (or leak into) another tenant's campaigns even when
    both submit the identical (experiment, config, seed, code) point —
    the isolation boundary the campaign service's multi-tenancy is
    stated over.
    """
    problem = validate_tenant_id(tenant)
    if problem is not None:
        raise ValueError(f"invalid tenant id: {problem}")
    return Path(cache_root) / tenant


@dataclass
class ResultCache:
    """Directory-backed store of completed sample records."""

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / experiment / f"{key}.json"

    def _evict(self, path: Path, experiment: str, reason: str) -> None:
        """Drop an unusable cache file; make the silent re-run visible."""
        try:
            path.unlink()
        except OSError:
            pass
        if OBS.enabled:
            OBS.metrics.inc(
                "cache_evictions_total", experiment=experiment, reason=reason
            )
        event(
            "warning", "harness.cache", "cache_evicted",
            experiment=experiment, reason=reason, entry=path.name,
        )

    def get(self, experiment: str, key: str) -> dict | None:
        """The cached record for ``key``, or None on miss.

        Corrupt files and records missing a required field (written by an
        older schema, or not sample records at all) are evicted and
        reported as misses instead of crashing the campaign.
        """
        path = self._path(experiment, key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(path, experiment, "corrupt")
            return None
        if not is_complete_record(record):
            self._evict(path, experiment, "schema")
            return None
        return record

    def put(self, experiment: str, key: str, record: dict) -> None:
        """Durably persist ``record`` (write-to-temp + fsync + rename).

        The fsync before the rename matters: without it a crash (or
        SIGKILL) shortly after ``put`` returns can leave the *renamed*
        file truncated — the pathological case where the corrupt-record
        eviction path silently discards completed work on resume. With
        it, the rename only ever publishes fully-written bytes.
        """
        path = self._path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def count(self, experiment: str) -> int:
        """Number of valid cached sample records for ``experiment``.

        Foreign, partial, or schema-incomplete ``*.json`` files in the
        experiment directory are not counted (and left untouched).
        """
        directory = self.root / experiment
        if not directory.is_dir():
            return 0
        valid = 0
        for path in directory.iterdir():
            if path.suffix != ".json":
                continue
            try:
                with open(path, encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if is_complete_record(record):
                valid += 1
        return valid
