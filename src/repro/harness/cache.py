"""On-disk result cache for campaign samples.

A sample's cache key is a stable hash of (experiment name, canonical
config JSON, sample seed, code fingerprint). The code fingerprint covers
the source file that defines the sample function plus the experiment's
declared version, so editing the experiment (or bumping its version to
signal a semantic change elsewhere) invalidates exactly that
experiment's entries; re-running an unchanged campaign skips every
completed point.

Layout::

    <cache_dir>/<experiment>/<key>.json   # one completed sample

Each file holds the full sample record (config, seed, result, timings),
so a cache hit restores the manifest entry verbatim except for the
``cached`` flag.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

# Bump to invalidate every experiment's cache at once (harness semantics
# change, e.g. a different seed-derivation scheme).
HARNESS_CACHE_VERSION = "1"


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """Stable short hex digest of any JSON-serializable object."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()[:24]


def code_fingerprint(sample_fn: Any, version: str = "1") -> str:
    """Hash of the sample function's defining source file + version.

    Falls back to the function's qualified name when the source is
    unavailable (frozen/interactive definitions) — the cache then only
    invalidates via explicit version bumps.
    """
    hasher = hashlib.sha256()
    hasher.update(HARNESS_CACHE_VERSION.encode())
    hasher.update(version.encode())
    try:
        source_file = inspect.getsourcefile(sample_fn)
        with open(source_file, "rb") as handle:  # type: ignore[arg-type]
            hasher.update(handle.read())
    except (OSError, TypeError):
        hasher.update(f"{sample_fn.__module__}.{sample_fn.__qualname__}".encode())
    return hasher.hexdigest()[:24]


def sample_key(experiment: str, config: dict, seed: int, code: str) -> str:
    """The cache key of one (experiment, config, seed, code) point."""
    return stable_hash(
        {"experiment": experiment, "config": config, "seed": seed, "code": code}
    )


@dataclass
class ResultCache:
    """Directory-backed store of completed sample records."""

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / experiment / f"{key}.json"

    def get(self, experiment: str, key: str) -> dict | None:
        """The cached record for ``key``, or None on miss/corruption."""
        path = self._path(experiment, key)
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, experiment: str, key: str, record: dict) -> None:
        """Atomically persist ``record`` (write-to-temp + rename)."""
        path = self._path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def count(self, experiment: str) -> int:
        """Number of cached samples for ``experiment``."""
        directory = self._path(experiment, "x").parent
        if not directory.is_dir():
            return 0
        return sum(1 for p in directory.iterdir() if p.suffix == ".json")
